#!/usr/bin/env python3
"""Repo-invariant linter: structural rules grep and clang-tidy can't state.

Checks (each violation is reported as file:line and fails the run):

  1. forwardInto / *Into hot-path bodies in the attention, runtime, and
     model layers perform no heap allocation: no `new`, `malloc`,
     `make_shared` / `make_unique`, and no container growth
     (`push_back` / `emplace_back`) inside the function body. The
     steady-state zero-allocation contract is *tested* by
     tests/test_alloc.cpp; this rule keeps the obvious violations from
     ever compiling into those paths.
  2. GEMM backend internals stay inside the Gemm dispatcher: the
     backend entry points (gemmScalar, gemmAvx2, gemmInt8Scalar,
     gemmInt8Avx2, epilogueApplyRow) are referenced only from
     src/tensor/gemm* translation units. Everything else must funnel
     through Gemm::multiply, which is what keeps dispatch, banding,
     and the epilogue contract in one place. (2b) The panel-packing
     helpers (packAPanel, packBPanel, packAPanelInt8, packBPanelInt8)
     are referenced only from gemm_pack.{h,cpp}, the AVX2 backend TUs,
     and packed_weights.{h,cpp} — one packing implementation, shared
     by the per-call path and the prepack path, is what makes
     prepacked panels byte-identical to per-call pack output.
  3. Every VITALITY_* environment knob read via getenv() in src/, and
     every VITALITY_* CMake option, is documented in README.md — and
     (3b) every such env knob is also resolved by
     RuntimeOptions::fromEnv, so the serving layer's per-model pinned
     options never lag the knob set.
  4. AVX2 translation units are paired with a scalar fallback: every
     src/**/X_avx2.cpp has a sibling X.cpp, and AVX2 intrinsics
     (outside comments) appear only in *_avx2.cpp files or in headers
     that declare themselves AVX2-only (avx2_math.h).
  5. Include layering: base(0) < tensor(1) < {sparse, attention}(2) <
     runtime(3) < model(4). A file includes only its own level or
     below (sparse and attention share a level and may include each
     other). tests/ and bench/ are exempt.
  6. Header-guard convention: src/<dir>/<name>.h (and tests/*.h) use
     #ifndef VITALITY_<DIR>_<NAME>_H.

Run from anywhere: paths resolve relative to the repo root.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LAYER = {"base": 0, "tensor": 1, "sparse": 2, "attention": 2,
         "runtime": 3, "model": 4, "serve": 5}

ALLOC_TOKENS = re.compile(
    r"\bnew\b|\bmalloc\s*\(|make_shared\s*[<(]|make_unique\s*<|"
    r"push_back\s*\(|emplace_back\s*\(")

BACKEND_IDENTS = re.compile(
    r"\b(gemmScalar|gemmAvx2|gemmInt8Scalar|gemmInt8Avx2|"
    r"epilogueApplyRow)\b")

PACK_IDENTS = re.compile(
    r"\b(packAPanel|packBPanel|packAPanelInt8|packBPanelInt8)\b")

PACK_FILES = {"gemm_pack.h", "gemm_pack.cpp", "gemm_avx2.cpp",
              "gemm_int8_avx2.cpp", "packed_weights.h",
              "packed_weights.cpp"}

violations = []


def report(path, line, message):
    violations.append(f"{os.path.relpath(path, REPO)}:{line}: {message}")


def strip_comments(text):
    """Blank out // and /* */ comments and string/char literals,
    preserving line structure so offsets map back to line numbers."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        if state is None:
            if text.startswith("//", i):
                state = "line"
                out.append("  ")
                i += 2
                continue
            if text.startswith("/*", i):
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if text.startswith("*/", i):
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a literal
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n", '"', "'") else " ")
        i += 1
    return "".join(out)


def src_files(ext):
    for root, _, names in os.walk(os.path.join(REPO, "src")):
        for name in sorted(names):
            if name.endswith(ext):
                yield os.path.join(root, name)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --- Rule 1: allocation tokens in *Into hot-path bodies -----------------

HOT_DIRS = ("attention", "runtime", "model")
# Matches the start of an Into-method definition at a line beginning
# (the repo style puts the return type on its own line, so the method
# name starts a line).
INTO_DEF = re.compile(r"^[A-Za-z_][\w:]*::(\w*Into)\s*\(", re.M)


def check_hot_path_allocations():
    for path in src_files(".cpp"):
        subdir = os.path.relpath(path, os.path.join(REPO, "src"))
        if subdir.split(os.sep)[0] not in HOT_DIRS:
            continue
        text = strip_comments(open(path).read())
        for m in INTO_DEF.finditer(text):
            brace = text.find("{", m.end())
            if brace < 0:
                continue
            depth, i = 1, brace + 1
            while i < len(text) and depth:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                i += 1
            body = text[brace:i]
            for alloc in ALLOC_TOKENS.finditer(body):
                report(path, line_of(text, brace + alloc.start()),
                       f"heap allocation ({alloc.group(0).strip('(').strip()}) "
                       f"in hot path {m.group(1)}()")


# --- Rule 2: GEMM backend identifiers stay in gemm TUs ------------------

def check_backend_containment():
    for path in src_files(".cpp"):
        if os.path.basename(path).startswith("gemm"):
            continue
        text = strip_comments(open(path).read())
        for m in BACKEND_IDENTS.finditer(text):
            report(path, line_of(text, m.start()),
                   f"GEMM backend internal {m.group(0)} referenced outside "
                   "src/tensor/gemm*; use Gemm::multiply")
    for path in src_files(".h"):
        base = os.path.basename(path)
        if base.startswith("gemm") or base == "avx2_math.h":
            continue
        text = strip_comments(open(path).read())
        for m in BACKEND_IDENTS.finditer(text):
            report(path, line_of(text, m.start()),
                   f"GEMM backend internal {m.group(0)} referenced outside "
                   "src/tensor/gemm*; use Gemm::multiply")


# --- Rule 2b: panel-packing helpers stay in the pack/prepack TUs --------

def check_pack_containment():
    for ext in (".cpp", ".h"):
        for path in src_files(ext):
            if os.path.basename(path) in PACK_FILES:
                continue
            text = strip_comments(open(path).read())
            for m in PACK_IDENTS.finditer(text):
                report(path, line_of(text, m.start()),
                       f"panel-packing helper {m.group(0)} referenced "
                       "outside gemm_pack/packed_weights/the AVX2 "
                       "backend TUs")


# --- Rule 3: every VITALITY_* knob is documented in README --------------

def check_knobs_documented():
    readme = open(os.path.join(REPO, "README.md")).read()
    knobs = {}  # name -> (path, line)
    for path in src_files(".cpp"):
        text = open(path).read()
        for m in re.finditer(r'getenv\("(VITALITY_[A-Z0-9_]+)"\)', text):
            knobs.setdefault(m.group(1), (path, line_of(text, m.start())))
    cmake_path = os.path.join(REPO, "CMakeLists.txt")
    cmake = open(cmake_path).read()
    for m in re.finditer(r"option\((VITALITY_[A-Z0-9_]+)", cmake):
        knobs.setdefault(m.group(1), (cmake_path, line_of(cmake, m.start())))
    for name, (path, line) in sorted(knobs.items()):
        if name not in readme:
            report(path, line, f"knob {name} is not documented in README.md")


# --- Rule 3b: every VITALITY_* knob rides RuntimeOptions ----------------

def check_knobs_in_runtime_options():
    """Every VITALITY_* environment knob read anywhere in src/ must
    also be resolved by RuntimeOptions::fromEnv (runtime_options.cpp):
    RuntimeOptions is the one-struct surface the serving layer pins
    per model, and a knob that exists only as a scattered getenv read
    silently falls out of that surface."""
    ro_path = os.path.join(REPO, "src", "runtime", "runtime_options.cpp")
    text = open(ro_path).read()
    m = re.search(r"RuntimeOptions::fromEnv\s*\(\s*\)\s*\{", text)
    if not m:
        report(ro_path, 1, "RuntimeOptions::fromEnv not found")
        return
    depth, i = 1, m.end()
    while i < len(text) and depth:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    body = text[m.end():i]
    for path in src_files(".cpp"):
        src = open(path).read()
        for k in re.finditer(r'getenv\("(VITALITY_[A-Z0-9_]+)"\)', src):
            if k.group(1) not in body:
                report(path, line_of(src, k.start()),
                       f"knob {k.group(1)} is not resolved by "
                       "RuntimeOptions::fromEnv")


# --- Rule 4: AVX2 TU pairing and intrinsic containment ------------------

AVX2_HEADERS = {"avx2_math.h"}


def check_avx2_pairing():
    for path in src_files(".cpp"):
        base = os.path.basename(path)
        text = strip_comments(open(path).read())
        m = re.search(r"_mm\d+_\w+", text)
        if base.endswith("_avx2.cpp"):
            sibling = path.replace("_avx2.cpp", ".cpp")
            if not os.path.exists(sibling):
                report(path, 1,
                       f"{base} has no scalar sibling "
                       f"{os.path.basename(sibling)}")
        elif m:
            report(path, line_of(text, m.start()),
                   "AVX2 intrinsics outside an *_avx2.cpp translation unit")
    for path in src_files(".h"):
        base = os.path.basename(path)
        if base in AVX2_HEADERS:
            continue
        text = strip_comments(open(path).read())
        m = re.search(r"_mm\d+_\w+", text)
        if m:
            report(path, line_of(text, m.start()),
                   "AVX2 intrinsics in a header not declared AVX2-only")


# --- Rule 5: include layering -------------------------------------------

INCLUDE = re.compile(r'^\s*#\s*include\s+"(\w+)/[\w./]+"', re.M)


def check_layering():
    for ext in (".h", ".cpp"):
        for path in src_files(ext):
            subdir = os.path.relpath(
                path, os.path.join(REPO, "src")).split(os.sep)[0]
            own = LAYER.get(subdir)
            if own is None:
                report(path, 1, f"unknown layer directory '{subdir}'")
                continue
            text = open(path).read()
            for m in INCLUDE.finditer(text):
                dep = LAYER.get(m.group(1))
                if dep is None:
                    continue  # not a layer-qualified include
                if dep > own:
                    report(path, line_of(text, m.start()),
                           f"layer '{subdir}' (level {own}) includes "
                           f"'{m.group(1)}' (level {dep}); dependencies "
                           "must point downward")


# --- Rule 6: header-guard convention ------------------------------------

def check_header_guards():
    roots = [("src", os.path.join(REPO, "src")),
             ("tests", os.path.join(REPO, "tests"))]
    for label, root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if not name.endswith(".h"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                guard = "VITALITY_" + (
                    (label.upper() + "_") if label != "src" else ""
                ) + re.sub(r"[/.]", "_", rel).upper()
                text = open(path).read()
                if f"#ifndef {guard}" not in text or \
                        f"#define {guard}" not in text:
                    report(path, 1, f"missing include guard {guard}")


def main():
    check_hot_path_allocations()
    check_backend_containment()
    check_pack_containment()
    check_knobs_documented()
    check_knobs_in_runtime_options()
    check_avx2_pairing()
    check_layering()
    check_header_guards()
    if violations:
        for v in violations:
            print(v)
        print(f"lint_invariants: {len(violations)} violation(s)")
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
