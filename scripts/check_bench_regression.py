#!/usr/bin/env python3
"""Bench-regression gate for SHA-keyed benchmark trajectories.

Compares the newest run entry against prior *comparable* entries and
fails (exit 1) if any gated metric regressed by more than the threshold
(default +20%) at any (model, kernel, shape) present in both. Kernel
rows (bench_attention) gate median wall-clock per batch size (ragged
rows additionally gate tokens_per_s, inverted); serve rows
(bench_serve) gate the p50/p95/p99 client-observed latency and
sustained images_per_s / tokens_per_s per batching policy (max_batch,
max_wait_us) and token-keep policy (keep_ratio) — see keyed_results()
for why the policies are part of the key. Two entries are comparable when their full execution
configuration matches — gemm_backend, pool_threads, gemm_threads (the
intra-GEMM row-band width), and epilogue mode: a scalar run is expected
to be slower than an avx2 run, a single-thread run slower than a
pool-parallel one, and wall-clock from a machine with a different core
count is hardware signal, not code signal — flagging any of those
would just train people to ignore the gate. (Legacy entries predating
a field carry None for it and therefore only compare against each
other.)

The newest entry is gated pairwise against
  - the most recent comparable prior entry (run-over-run regressions),
  - and the oldest comparable entry in the file (slow creep that stays
    under the threshold per run but compounds across the window).

With --fold-latest-from SRC, the newest entry of SRC is first appended
to the target trajectory, which is trimmed to --keep entries and
written back. CI uses this to maintain a runner-local baseline carried
between runs via the actions cache; the baseline is only persisted when
the gate passes, so a flagged regression cannot grandfather itself into
the next run's baseline.

Metric: wall_ms_median, falling back to wall_ms_mean for legacy entries
that predate the median column.

Usage: check_bench_regression.py [trajectory.json] [--threshold 1.20]
           [--fold-latest-from SRC] [--keep 10]

With BENCH_GATE_SKIP=<reason> in the environment the gate prints
"SKIPPED (<reason>)" and exits 0 without reading anything — used by
sanitizer CI legs, where instrumented wall-clock is not a signal, so
the skip is an explicit log line instead of a silently absent step.
"""

import argparse
import json
import os
import sys


def load_trajectory(path):
    with open(path) as fh:
        data = json.load(fh)
    return data if isinstance(data, list) else [data]


# The execution-configuration fields an entry is keyed by: wall-clock
# is only a code signal between runs whose configuration matches.
# sparse_mode (VITALITY_SPARSE, "csr" or "dense") joined in PR 5: a
# dense-masked run is expected to be slower than a compressed one at
# the same (model, kernel, batch) shape, so the two only compare
# against themselves. quant_mode (VITALITY_QUANT, "off" or "int8")
# joined in PR 6 for the same reason in the other direction: an int8
# dense path is expected to be faster than fp32, and comparing across
# the two would either mask fp32 regressions or flag the mode switch.
CONFIG_FIELDS = ("gemm_backend", "pool_threads", "gemm_threads",
                 "epilogue", "sparse_mode", "quant_mode")


def comparable(old, new):
    return all(old.get(f) == new.get(f) for f in CONFIG_FIELDS)


# Serve-row latency percentiles: each is gated independently (a p99
# blowup with a flat p50 is a queueing regression worth catching).
SERVE_PERCENTILES = ("p50_ms", "p95_ms", "p99_ms")

# Throughput metrics degrade DOWNWARD: the gate inverts the ratio so
# "lower than before" flags, the opposite of the latency metrics.
INVERTED_METRICS = ("images_per_s", "tokens_per_s")


def keep_suffix(r):
    """Execution-mode shape-key suffix. Token-keep (PR 9): a keep=0.5
    run prunes most of its work away and would mask regressions in (or
    be flagged against) an unpruned run at the same shape, so the keep
    ratio — and the ragged-vs-uniform execution mode, which differ in
    dispatch even at keep=1.0 — are part of the key. Compiled plans
    (PR 10) extend the suffix with prepack ("on"/"off": a prepacked
    run skips the per-call pack loop, so the eager baseline and the
    planned run sit on different cost curves) and layers (the per-layer
    kernel schedule text: a hybrid taylor/softmax plan runs a different
    program than a uniform one). Legacy rows predating the fields carry
    no suffix and only compare against each other."""
    parts = []
    if r.get("ragged"):
        parts.append("ragged")
    keep = r.get("keep_ratio")
    if keep is not None and keep >= 0:
        parts.append(f"keep={keep:g}")
    prepack = r.get("prepack")
    if prepack is not None:
        parts.append(f"prepack={prepack}")
    layers = r.get("layers")
    if layers:
        parts.append(f"layers={layers}")
    return ("," + ",".join(parts)) if parts else ""


def keyed_results(entry):
    """Map (model, kernel, shape, metric) -> value.

    Kernel rows (bench_attention) carry median wall-clock — keyed on
    the batch size plus the keep/ragged suffix — and, for ragged rows,
    tokens_per_s (gated inverted: lower is worse). Serve rows
    (bench_serve, kernel "Serve(<name>)", recognized by their p50_ms
    column) carry a client-observed latency distribution plus sustained
    throughput; each percentile, images_per_s, and tokens_per_s is its
    own gated metric, keyed on the batching policy (max_batch,
    max_wait_us) and the model's token-keep policy — the policy is part
    of the shape the way batch is for kernel rows: a 2 ms-window run
    sits on a different latency/throughput point than a no-batching
    run, and a keep=0.5 model on a different one than an unpruned
    model; comparing across either would flag the policy, not the code.
    """
    out = {}
    for r in entry.get("results", []):
        model, kernel = r.get("model"), r.get("kernel")
        if model is None or kernel is None:
            continue
        if r.get("p50_ms") is not None:
            shape = (f"mb={r.get('max_batch')},"
                     f"wait={r.get('max_wait_us')}us" + keep_suffix(r))
            for metric in SERVE_PERCENTILES + INVERTED_METRICS:
                if r.get(metric) is not None:
                    out[(model, kernel, shape, metric)] = float(r[metric])
        else:
            shape = f"B={r.get('batch')}" + keep_suffix(r)
            wall = r.get("wall_ms_median", r.get("wall_ms_mean"))
            if r.get("batch") is not None and wall is not None:
                out[(model, kernel, shape, "wall_ms")] = float(wall)
            tok = r.get("tokens_per_s")
            if r.get("batch") is not None and tok is not None and tok >= 0:
                out[(model, kernel, shape, "tokens_per_s")] = float(tok)
    return out


def regression_ratio(key, old_value, new_value):
    """Degradation ratio, >1 means worse. Latency metrics degrade
    upward (new/old); throughput metrics degrade downward (old/new)."""
    metric = key[3]
    num, den = ((old_value, new_value) if metric in INVERTED_METRICS
                else (new_value, old_value))
    return num / den if den else 1.0


def compare(old, new, threshold, label):
    """Print the per-shape ratio table; return the regressed keys."""
    old_results = keyed_results(old)
    new_results = keyed_results(new)
    shared = sorted(set(old_results) & set(new_results))
    if not shared:
        print(f"bench-regression [{label}]: no shared "
              f"(model, kernel, shape) metrics; nothing to compare")
        return []

    print(f"bench-regression [{label}]: {old.get('sha', '?')[:12]} -> "
          f"{new.get('sha', '?')[:12]} (backend "
          f"{new.get('gemm_backend')!r}, threshold {threshold:.2f}x)")
    failures = []
    for key in shared:
        model, kernel, shape, metric = key
        ratio = regression_ratio(key, old_results[key], new_results[key])
        flag = ""
        if ratio > threshold:
            failures.append(key)
            flag = "  <-- REGRESSION"
        print(f"  {model:<12} {kernel:<16} {shape:<16} {metric:<12} "
              f"{old_results[key]:9.3f} -> {new_results[key]:9.3f} "
              f"({ratio:5.2f}x){flag}")
    return failures


def main():
    # Sanitizer and checked CI legs measure instrumented binaries, so
    # wall-clock gating there is noise; they set BENCH_GATE_SKIP to a
    # reason string, and the skip is printed rather than silent — a
    # log line proves the step ran and says why it gated nothing.
    skip = os.environ.get("BENCH_GATE_SKIP")
    if skip:
        print(f"bench-regression: SKIPPED ({skip})")
        return 0

    ap = argparse.ArgumentParser()
    ap.add_argument("trajectory", nargs="?", default="BENCH_attention.json")
    ap.add_argument("--threshold", type=float, default=1.20,
                    help="fail when new/old exceeds this ratio")
    ap.add_argument("--fold-latest-from", metavar="SRC",
                    help="append SRC's newest entry to the trajectory "
                         "(creating it if missing) before gating")
    ap.add_argument("--keep", type=int, default=10,
                    help="entries retained when folding (default 10)")
    args = ap.parse_args()

    if args.fold_latest_from:
        src = load_trajectory(args.fold_latest_from)
        if not src:
            print(f"bench-regression: {args.fold_latest_from} holds no "
                  f"entries; did the bench step run?")
            return 1
        data = (load_trajectory(args.trajectory)
                if os.path.exists(args.trajectory) else [])
        data.append(src[-1])
        data = data[-args.keep:]
        with open(args.trajectory, "w") as fh:
            json.dump(data, fh, indent=1)
        print(f"bench-regression: folded newest entry of "
              f"{args.fold_latest_from} into {args.trajectory} "
              f"({len(data)} entries retained)")
    else:
        data = load_trajectory(args.trajectory)

    if len(data) < 2:
        print("bench-regression: fewer than two trajectory entries; "
              "nothing to compare")
        return 0

    new = data[-1]
    priors = [e for e in data[:-1] if comparable(e, new)]
    if not priors:
        config = ", ".join(f"{f}={new.get(f)!r}" for f in CONFIG_FIELDS)
        print(f"bench-regression: no prior entry matches ({config}); "
              f"entries are from a different configuration or machine, "
              f"skipping")
        return 0

    failures = compare(priors[-1], new, args.threshold, "vs previous")
    if priors[0] is not priors[-1]:
        failures += compare(priors[0], new, args.threshold,
                            "vs oldest in window")

    if failures:
        print(f"bench-regression: {len(failures)} comparison(s) regressed "
              f"more than {(args.threshold - 1) * 100:.0f}%")
        return 1
    print("bench-regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
