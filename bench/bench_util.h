/**
 * @file
 * Shared machinery for the bench executables: wall-clock sampling,
 * small-sample statistics, run provenance (git SHA with a -dirty
 * marker, ISO-8601 UTC timestamps), and the append-only trajectory
 * file format every bench writes (a JSON array of run entries,
 * write-then-rename so an interrupted run never truncates history;
 * a legacy single-object snapshot is wrapped into the array on first
 * append). Factored out of bench_attention so bench_serve emits
 * entries with identical provenance and the regression gate can treat
 * both trajectories uniformly.
 *
 * Header-only: each bench is a single TU, so out-of-line definitions
 * would buy nothing.
 */

#ifndef VITALITY_BENCH_BENCH_UTIL_H
#define VITALITY_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.h"

namespace vitality {
namespace benchutil {

inline double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

/** Median of a (small) sample; v is reordered. */
inline double
median(std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const size_t mid = v.size() / 2;
    return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

/**
 * Exact quantile by nearest-rank over a sorted copy-free sample;
 * v is reordered (nth_element). q in [0, 1]; q=0.5 is the lower
 * median. Small-sample friendly: every returned value is an actual
 * observation, so p99 of 200 requests is the 2nd-worst request, not
 * an interpolation between two.
 */
inline double
quantile(std::vector<double> &v, double q)
{
    if (v.empty())
        return 0.0;
    const double pos = q * static_cast<double>(v.size() - 1);
    size_t idx = static_cast<size_t>(pos + 0.5); // nearest rank
    if (idx >= v.size())
        idx = v.size() - 1;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(idx),
                     v.end());
    return v[idx];
}

inline std::string
gitSha()
{
    // BENCH_GIT_SHA first: it is the explicit override, and on
    // pull_request events CI points it at the PR head commit while
    // GITHUB_SHA names the synthetic merge ref nobody can check out
    // later.
    for (const char *var : {"BENCH_GIT_SHA", "GITHUB_SHA"}) {
        const char *env = std::getenv(var);
        if (env && *env)
            return env;
    }
    if (FILE *p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
        char buf[64] = {0};
        const bool got = std::fgets(buf, sizeof(buf), p) != nullptr;
        pclose(p);
        if (got) {
            std::string sha(buf);
            while (!sha.empty() &&
                   (sha.back() == '\n' || sha.back() == '\r'))
                sha.pop_back();
            if (!sha.empty()) {
                // Mark uncommitted-tree runs so a trajectory entry is
                // never misattributed to a commit that cannot have
                // produced it.
                if (std::system("git diff-index --quiet HEAD -- "
                                ">/dev/null 2>&1") != 0)
                    sha += "-dirty";
                return sha;
            }
        }
    }
    return "unknown";
}

inline std::string
isoUtc(std::time_t t)
{
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&t));
    return buf;
}

inline std::string
rtrim(std::string s)
{
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    return s;
}

/**
 * Append entry to the trajectory array at path. Missing / empty file
 * starts a fresh array; a legacy single-object snapshot is wrapped.
 */
inline void
appendToTrajectory(const std::string &path, const std::string &entry)
{
    std::string existing;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream slurp;
            slurp << in.rdbuf();
            existing = rtrim(slurp.str());
        }
    }

    std::string merged;
    if (existing.empty()) {
        merged = "[\n" + entry + "\n]\n";
    } else if (existing.back() == ']') {
        existing.pop_back();
        existing = rtrim(existing);
        if (!existing.empty() && existing.back() == '[')
            merged = existing + "\n" + entry + "\n]\n"; // empty array
        else
            merged = existing + ",\n" + entry + "\n]\n";
    } else if (existing.back() == '}') {
        // Legacy single-snapshot format: wrap it as the first entry.
        merged = "[\n" + existing + ",\n" + entry + "\n]\n";
    } else {
        warn("bench: %s is not a JSON array or object; "
             "starting a fresh trajectory",
             path.c_str());
        merged = "[\n" + entry + "\n]\n";
    }

    // Write-then-rename so an interrupted run can never leave the
    // trajectory truncated mid-JSON (which would drop the accumulated
    // history on the next append).
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("bench: cannot write %s", tmp.c_str());
        out << merged;
        if (!out.flush())
            fatal("bench: write to %s failed", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("bench: cannot rename %s to %s", tmp.c_str(),
              path.c_str());
}

} // namespace benchutil
} // namespace vitality

#endif // VITALITY_BENCH_BENCH_UTIL_H
