/**
 * @file
 * Micro-benchmark: Taylor vs softmax vs unified multi-head attention at
 * the DeiT-Tiny/Small/Base shapes (n = 197 tokens, d_h = 64 per head).
 *
 * For each (model, kernel) pair the bench runs the pooled multi-head
 * forward over packed inputs, reports mean wall-clock per invocation and
 * the analytic per-invocation OpCounts, and emits a JSON array so the
 * results can be tracked as BENCH_*.json trajectories across PRs.
 *
 * Usage: bench_attention [reps] [output.json]
 *   reps          repetitions per pair after one warmup (default 3)
 *   output.json   also write the JSON there (stdout always gets it)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attention/zoo.h"
#include "base/logging.h"
#include "base/rng.h"
#include "model/vit_config.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/matrix.h"

using namespace vitality;

namespace {

double
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               clock::now().time_since_epoch())
        .count();
}

struct Result
{
    std::string model;
    std::string kernel;
    size_t tokens, heads, headDim;
    int reps;
    double wallMsMean;
    OpCounts counts; // per multi-head invocation (all heads, one layer)
};

std::string
toJson(const std::vector<Result> &results, size_t pool_threads)
{
    std::ostringstream os;
    os << "{\n  \"bench\": \"multi_head_attention\",\n";
    os << "  \"pool_threads\": " << pool_threads << ",\n";
    os << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        os << "    {\"model\": \"" << r.model << "\", \"kernel\": \""
           << r.kernel << "\", \"tokens\": " << r.tokens
           << ", \"heads\": " << r.heads
           << ", \"head_dim\": " << r.headDim << ", \"reps\": " << r.reps
           << ", \"wall_ms_mean\": " << r.wallMsMean
           << ", \"gflops\": "
           << static_cast<double>(r.counts.flops()) * 1e-9
           << ", \"ops\": {\"mul\": " << r.counts.mul
           << ", \"add\": " << r.counts.add
           << ", \"div\": " << r.counts.div
           << ", \"exp\": " << r.counts.exp << "}}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    if (reps <= 0)
        fatal("bench_attention: reps must be positive");

    const std::vector<VitConfig> models = {
        VitConfig::deitTiny(), VitConfig::deitSmall(),
        VitConfig::deitBase()};
    const std::vector<AttentionType> kernels = {
        AttentionType::Taylor, AttentionType::Softmax,
        AttentionType::Unified};

    ThreadPool pool;
    std::vector<Result> results;
    for (const VitConfig &cfg : models) {
        Rng rng(0xbe9c ^ cfg.dModel);
        const Matrix q =
            Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);
        const Matrix k =
            Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);
        const Matrix v = Matrix::randn(cfg.tokens, cfg.dModel, rng);

        for (AttentionType type : kernels) {
            AttentionKernelPtr kernel = makeAttention(type);
            MultiHeadAttention mha(kernel, cfg.heads);

            Matrix out;
            mha.forwardInto(pool, q, k, v, out); // warmup + allocation

            const double t0 = nowMs();
            for (int r = 0; r < reps; ++r)
                mha.forwardInto(pool, q, k, v, out);
            const double per_rep = (nowMs() - t0) / reps;

            Result res;
            res.model = cfg.name;
            res.kernel = kernel->name();
            res.tokens = cfg.tokens;
            res.heads = cfg.heads;
            res.headDim = cfg.headDim();
            res.reps = reps;
            res.wallMsMean = per_rep;
            res.counts = mha.opCounts(cfg.tokens, cfg.dModel);
            results.push_back(res);

            inform("%-10s %-14s %8.3f ms  %.4f GFLOPs", cfg.name.c_str(),
                   kernel->name().c_str(), per_rep,
                   static_cast<double>(res.counts.flops()) * 1e-9);
        }
    }

    const std::string json = toJson(results, pool.size());
    std::printf("%s", json.c_str());
    if (argc > 2) {
        std::ofstream file(argv[2]);
        if (!file)
            fatal("bench_attention: cannot write %s", argv[2]);
        file << json;
        inform("wrote %s", argv[2]);
    }
    return 0;
}
