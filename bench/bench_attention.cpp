/**
 * @file
 * Micro-benchmark: batched multi-head attention (Taylor vs softmax vs
 * unified) at the DeiT-Tiny/Small/Base shapes, batch sizes {1, 4, 16},
 * plus single-image end-to-end VitEncoder rows ("Encoder(<kernel>)",
 * batch 1) that run the full 12-layer stack — the fused-epilogue dense
 * projections/MLP and the intra-GEMM row-band fan-out that the
 * MHA-only rows never exercise — and ragged-path encoder rows
 * ("RaggedEncoder(Taylor)") sweeping the token-keep ratio over
 * {1.0, 0.7, 0.5, 0.35}. Ragged rows carry "ragged": true, their
 * "keep_ratio", and "tokens_per_s" (input token rows per second, the
 * throughput that stays comparable across keep ratios); the regression
 * checker keys rows on keep_ratio/ragged so pruned and unpruned runs
 * never gate against each other.
 *
 * Compiled-plan rows ("PlannedEncoder(Taylor)", batch 1) measure the
 * same single-image forward on two seed-identical encoders with laps
 * interleaved — eager ("prepack": "off") against a compiled uniform
 * plan ("prepack": "on"), paired so shared-host drift cancels out of
 * the comparison — plus a third encoder under the paper-style hybrid
 * schedule taylor:0-5,softmax:6-11 (keyed by its "layers" text). The
 * regression checker keys on prepack/layers the same way it keys on
 * keep_ratio, so the eager baseline, the prepacked plan, and the
 * hybrid never gate against each other.
 *
 * For each (model, kernel, batch) triple the bench runs the pooled
 * batched multi-head forward over packed inputs and reports mean and
 * median wall-clock per batch, per-image throughput, achieved GFLOP/s
 * (analytic per-image FLOPs x batch / median wall), and the analytic
 * per-image OpCounts. The sparse-branch kernels appear at both the
 * paper's training threshold (T = 0.5) and Sanger's default (0.02),
 * and their rows carry the *measured* mask density (mean over the
 * heads of image 0; -1 for kernels without a sparse branch and for
 * the encoder rows, whose 12 layers each see different activations) —
 * the number the sparse-branch cost actually scales with under
 * VITALITY_SPARSE=csr. The entry also records the execution
 * configuration that produced it — gemm_backend ("avx2" or "scalar",
 * override with VITALITY_GEMM), pool_threads (worker count),
 * gemm_threads (the intra-GEMM row-band width the main thread would
 * fan out, after the VITALITY_THREADS cap), epilogue ("fused",
 * "unfused", or "fast"; VITALITY_EPILOGUE), sparse_mode ("csr" or
 * "dense", VITALITY_SPARSE), and quant_mode ("off" or "int8",
 * VITALITY_QUANT) — so the regression checker only compares runs
 * from matching configurations. Results are appended as
 * one timestamped, git-SHA-keyed entry to a trajectory JSON (an array
 * of runs), so BENCH_attention.json accumulates history across PRs
 * instead of being overwritten. A legacy single-snapshot file (the
 * pre-trajectory format, one JSON object) is wrapped into the array on
 * first append.
 *
 * Usage: bench_attention [reps] [trajectory.json] [preset]
 *   reps             repetitions per triple after one warmup (default 3)
 *   trajectory.json  append the run entry there (stdout always gets it;
 *                    pass "-" to skip the file)
 *   preset           case-insensitive substring filter on the model
 *                    name (e.g. "base" sweeps only DeiT-Base), so CI
 *                    can exercise one shape without tripling wall time
 *
 * The git SHA is taken from $BENCH_GIT_SHA (the explicit override — CI
 * sets it to the pull request's head SHA, because $GITHUB_SHA points at
 * the synthetic merge commit on pull_request events), then $GITHUB_SHA,
 * then `git rev-parse HEAD`, else "unknown".
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>
#include <string>
#include <vector>

#include "attention/unified_attention.h"
#include "attention/zoo.h"
#include "base/logging.h"
#include "base/rng.h"
#include "bench_util.h"
#include "model/encoder_plan.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "sparse/csr.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ragged_batch.h"

using namespace vitality;
using benchutil::appendToTrajectory;
using benchutil::gitSha;
using benchutil::isoUtc;
using benchutil::median;
using benchutil::nowMs;

namespace {

struct Result
{
    std::string model;
    std::string kernel;
    size_t tokens, heads, headDim, batch;
    int reps;
    double wallMsMean;   // per batch invocation
    double wallMsMedian; // per batch invocation, median of reps
    double imagesPerSec; // batch / median wall seconds
    double gflopsPerSec; // analytic flops x batch / median wall
    double maskDensity;  // measured sparse-branch density; -1 = n/a
    bool ragged = false; // ran through the variable-token path
    double keepRatio = -1.0;    // token-keep ratio; -1 = no pruning sweep
    double tokensPerSec = -1.0; // input token rows / s; -1 = n/a
    int prepack = -1;    // planned rows: 1 = compiled plan, 0 = eager
    std::string layers;  // planned kernel schedule; empty = uniform
    OpCounts counts;     // per image (all heads, one layer)
};

/**
 * Measured sparse-branch mask density for a packed input: the mean of
 * the per-head densities of image 0, from the same predictor pass the
 * timed forwards run. -1 for kernels without a sparse branch.
 */
double
measuredDensity(const AttentionKernel &kernel, size_t heads,
                const Matrix &q, const Matrix &k, const Matrix &v)
{
    const auto *sanger =
        dynamic_cast<const SangerSparseAttention *>(&kernel);
    const auto *unified = dynamic_cast<const UnifiedAttention *>(&kernel);
    if (!sanger && !unified)
        return -1.0;
    const size_t dh = q.cols() / heads;
    double sum = 0.0;
    for (size_t h = 0; h < heads; ++h) {
        const Matrix qh = q.colRange(h * dh, (h + 1) * dh);
        const Matrix kh = k.colRange(h * dh, (h + 1) * dh);
        const Matrix vh = v.colRange(h * dh, (h + 1) * dh);
        if (sanger) {
            SparseMask mask(0, 0);
            sanger->forwardWithMask(qh, kh, vh, &mask);
            sum += mask.density();
        } else {
            sum += unified->forwardDetailed(qh, kh, vh)
                       .sparseBranchDensity;
        }
    }
    return sum / static_cast<double>(heads);
}

/** One run entry: everything about this invocation, as a JSON object. */
std::string
entryJson(const std::vector<Result> &results, size_t pool_threads)
{
    const std::time_t now = std::time(nullptr);
    std::ostringstream os;
    os << "{\n  \"bench\": \"multi_head_attention\",\n";
    os << "  \"sha\": \"" << gitSha() << "\",\n";
    os << "  \"timestamp\": \"" << isoUtc(now) << "\",\n";
    os << "  \"unix_time\": " << static_cast<long long>(now) << ",\n";
    os << "  \"pool_threads\": " << pool_threads << ",\n";
    os << "  \"gemm_threads\": " << Gemm::parallelWidth() << ",\n";
    os << "  \"epilogue\": \""
       << Gemm::epilogueModeName(Gemm::epilogueMode()) << "\",\n";
    os << "  \"sparse_mode\": \"" << sparseExecName(sparseExecMode())
       << "\",\n";
    os << "  \"quant_mode\": \""
       << Gemm::quantModeName(Gemm::quantMode()) << "\",\n";
    os << "  \"gemm_backend\": \"" << Gemm::activeName() << "\",\n";
    os << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const Result &r = results[i];
        os << "    {\"model\": \"" << r.model << "\", \"kernel\": \""
           << r.kernel << "\", \"tokens\": " << r.tokens
           << ", \"heads\": " << r.heads
           << ", \"head_dim\": " << r.headDim
           << ", \"batch\": " << r.batch << ", \"reps\": " << r.reps
           << ", \"wall_ms_mean\": " << r.wallMsMean
           << ", \"wall_ms_median\": " << r.wallMsMedian
           << ", \"images_per_s\": " << r.imagesPerSec
           << ", \"gflops_per_s\": " << r.gflopsPerSec
           << ", \"mask_density\": " << r.maskDensity
           << ", \"ragged\": " << (r.ragged ? "true" : "false")
           << ", \"keep_ratio\": " << r.keepRatio
           << ", \"tokens_per_s\": " << r.tokensPerSec;
        // Plan columns only on planned-encoder rows: absent fields
        // keep legacy rows byte-identical, and the regression gate
        // keys on them only where they exist.
        if (r.prepack >= 0)
            os << ", \"prepack\": \"" << (r.prepack ? "on" : "off")
               << "\"";
        if (!r.layers.empty())
            os << ", \"layers\": \"" << r.layers << "\"";
        os << ", \"gflops_per_image\": "
           << static_cast<double>(r.counts.flops()) * 1e-9
           << ", \"ops_per_image\": {\"mul\": " << r.counts.mul
           << ", \"add\": " << r.counts.add
           << ", \"div\": " << r.counts.div
           << ", \"exp\": " << r.counts.exp << "}}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
    if (reps <= 0)
        fatal("bench_attention: reps must be positive");

    std::vector<VitConfig> models = {VitConfig::deitTiny(),
                                     VitConfig::deitSmall(),
                                     VitConfig::deitBase()};
    if (argc > 3) {
        // Case-insensitive substring preset filter ("base" keeps only
        // DeiT-Base), so CI can target one shape.
        const auto lowered = [](std::string s) {
            for (char &c : s)
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            return s;
        };
        const std::string wanted = lowered(argv[3]);
        std::vector<VitConfig> kept;
        for (VitConfig &cfg : models) {
            if (lowered(cfg.name).find(wanted) != std::string::npos)
                kept.push_back(std::move(cfg));
        }
        if (kept.empty()) {
            fatal("bench_attention: preset '%s' matches no model "
                  "(have: DeiT-Tiny, DeiT-Small, DeiT-Base)",
                  argv[3]);
        }
        models = std::move(kept);
    }
    // Encoder rows sweep the three end-to-end kernels; the MHA rows
    // additionally cover the sparse-branch kernels at the paper's
    // training threshold (0.5) and Sanger's default (0.02), so the
    // trajectory tracks the compressed strong branch at both density
    // regimes. Unified's default IS 0.5, keeping the historical
    // "Unified(T=0.5)" row key.
    const std::vector<AttentionType> encoderKernels = {
        AttentionType::Taylor, AttentionType::Softmax,
        AttentionType::Unified};
    const std::vector<AttentionKernelPtr> kernels = {
        makeAttention(AttentionType::Taylor),
        makeAttention(AttentionType::Softmax),
        makeAttention(AttentionType::Unified, 0.5f),
        makeAttention(AttentionType::Unified, 0.02f),
        makeAttention(AttentionType::SangerSparse, 0.5f),
        makeAttention(AttentionType::SangerSparse, 0.02f)};
    const std::vector<size_t> batchSizes = {1, 4, 16};
    const size_t maxBatch =
        *std::max_element(batchSizes.begin(), batchSizes.end());

    ThreadPool pool;
    inform("gemm backend: %s, pool threads: %zu, gemm threads: %zu, "
           "epilogue: %s, sparse: %s, quant: %s (override with "
           "VITALITY_GEMM / VITALITY_THREADS / VITALITY_EPILOGUE / "
           "VITALITY_SPARSE / VITALITY_QUANT)",
           Gemm::activeName(), pool.size(), Gemm::parallelWidth(),
           Gemm::epilogueModeName(Gemm::epilogueMode()),
           sparseExecName(sparseExecMode()),
           Gemm::quantModeName(Gemm::quantMode()));
    std::vector<Result> results;
    for (const VitConfig &cfg : models) {
        Rng rng(0xbe9c ^ cfg.dModel);
        std::vector<Matrix> qs, ks, vs;
        for (size_t b = 0; b < maxBatch; ++b) {
            // Unit-stddev Q/K: similarity logits then have sd ~1, which
            // gives peaked-enough attention that the two sparse
            // thresholds land in distinct density regimes (~3% at
            // T=0.02 vs rescue-only ~1/n at T=0.5, the shape trained
            // DeiT attention maps show in Fig. 14); at sd 0.5 the
            // predicted softmax is nearly uniform and every threshold
            // degenerates to the same rescue-only mask.
            qs.push_back(
                Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f));
            ks.push_back(
                Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f));
            vs.push_back(Matrix::randn(cfg.tokens, cfg.dModel, rng));
        }

        // The inputs depend only on (model, batch); build each sliced
        // view once instead of re-copying it per kernel.
        struct BatchInputs
        {
            size_t batch;
            Batch q, k, v;
        };
        std::vector<BatchInputs> inputs;
        for (size_t batch : batchSizes) {
            inputs.push_back(
                {batch,
                 Batch::fromMatrices(std::vector<Matrix>(
                     qs.begin(), qs.begin() + batch)),
                 Batch::fromMatrices(std::vector<Matrix>(
                     ks.begin(), ks.begin() + batch)),
                 Batch::fromMatrices(std::vector<Matrix>(
                     vs.begin(), vs.begin() + batch))});
        }

        // Single-image end-to-end encoder rows: the 12-layer dense path
        // (fused-epilogue QKV/output/MLP GEMMs, pool row bands) plus
        // attention — the stages the MHA-only rows never touch. Keyed
        // as kernel "Encoder(<name>)" at batch 1, so the regression
        // gate tracks the dense path separately.
        for (AttentionType type : encoderKernels) {
            VitEncoder encoder(cfg, makeAttention(type), 0x5eed);
            Matrix out;
            encoder.forwardInto(qs[0], pool, out); // warmup
            std::vector<double> laps(static_cast<size_t>(reps));
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowMs();
                encoder.forwardInto(qs[0], pool, out);
                laps[static_cast<size_t>(r)] = nowMs() - t0;
            }
            double mean_ms = 0.0;
            for (double lap : laps)
                mean_ms += lap;
            mean_ms /= reps;
            const double median_ms = median(laps);

            Result res;
            res.model = cfg.name;
            res.kernel =
                "Encoder(" + attentionTypeName(type) + ")";
            res.tokens = cfg.tokens;
            res.heads = cfg.heads;
            res.headDim = cfg.headDim();
            res.batch = 1;
            res.reps = reps;
            res.wallMsMean = mean_ms;
            res.wallMsMedian = median_ms;
            res.imagesPerSec =
                median_ms > 0.0 ? 1.0 / (median_ms * 1e-3) : 0.0;
            res.maskDensity = -1.0; // per-layer activations differ
            res.counts = encoder.opCounts(); // per image, all layers
            res.gflopsPerSec =
                median_ms > 0.0
                    ? static_cast<double>(res.counts.flops()) /
                          (median_ms * 1e6)
                    : 0.0;
            results.push_back(res);

            inform("%-10s %-14s B=1  %8.3f ms/img   %8.1f img/s"
                   "  %7.2f GFLOP/s",
                   cfg.name.c_str(), res.kernel.c_str(), median_ms,
                   res.imagesPerSec, res.gflopsPerSec);
        }

        // Compiled-plan encoder rows ("PlannedEncoder(Taylor)", batch
        // 1). The prepack pair is PAIRED lap for lap: two encoders
        // from the same seed (bitwise-identical weights and outputs),
        // one eager ("prepack": "off") and one through a compiled
        // uniform plan ("prepack": "on"), alternate within every rep —
        // the effect is a few percent while shared-host drift over a
        // sequential pair of phases can exceed it, and interleaving
        // cancels the drift out of the comparison. The uniform plan
        // pins an engaged-empty schedule so an ambient VITALITY_LAYERS
        // cannot skew the pair. A third encoder runs the paper-style
        // hybrid schedule (linear Taylor early, exact softmax late),
        // keyed by its "layers" text; analytic counts stay the
        // base-kernel program (as on the pruned ragged rows), so the
        // hybrid row's GFLOP/s reads as effective throughput.
        {
            const std::string hybrid = "taylor:0-5,softmax:6-11";
            const auto pushPlanned = [&](const char *label, int prepack,
                                         const std::string &layers,
                                         std::vector<double> laps,
                                         const VitEncoder &enc) {
                double mean_ms = 0.0;
                for (double lap : laps)
                    mean_ms += lap;
                mean_ms /= static_cast<double>(laps.size());
                const double median_ms = median(laps);

                Result res;
                res.model = cfg.name;
                res.kernel = "PlannedEncoder(Taylor)";
                res.tokens = cfg.tokens;
                res.heads = cfg.heads;
                res.headDim = cfg.headDim();
                res.batch = 1;
                res.reps = reps;
                res.wallMsMean = mean_ms;
                res.wallMsMedian = median_ms;
                res.imagesPerSec =
                    median_ms > 0.0 ? 1.0 / (median_ms * 1e-3) : 0.0;
                res.maskDensity = -1.0;
                res.prepack = prepack;
                res.layers = layers;
                res.counts = enc.opCounts();
                res.gflopsPerSec =
                    median_ms > 0.0
                        ? static_cast<double>(res.counts.flops()) /
                              (median_ms * 1e6)
                        : 0.0;
                results.push_back(res);

                inform("%-10s PlannedEnc %-14s %8.3f ms/img   "
                       "%8.1f img/s  %7.2f GFLOP/s",
                       cfg.name.c_str(), label, median_ms,
                       res.imagesPerSec, res.gflopsPerSec);
            };

            VitEncoder eagerEnc(cfg,
                                makeAttention(AttentionType::Taylor),
                                0x5eed);
            VitEncoder plannedEnc(cfg,
                                  makeAttention(AttentionType::Taylor),
                                  0x5eed);
            PlanOptions uniform;
            uniform.layerKernels = std::string(); // pin uniform
            plannedEnc.compilePlan(uniform);
            Matrix out;
            eagerEnc.forwardInto(qs[0], pool, out); // warmup both
            plannedEnc.forwardInto(qs[0], pool, out);
            std::vector<double> offLaps(static_cast<size_t>(reps));
            std::vector<double> onLaps(static_cast<size_t>(reps));
            for (int r = 0; r < reps; ++r) {
                double t0 = nowMs();
                eagerEnc.forwardInto(qs[0], pool, out);
                offLaps[static_cast<size_t>(r)] = nowMs() - t0;
                t0 = nowMs();
                plannedEnc.forwardInto(qs[0], pool, out);
                onLaps[static_cast<size_t>(r)] = nowMs() - t0;
            }
            pushPlanned("prepack=off", 0, "", offLaps, eagerEnc);
            pushPlanned("prepack=on", 1, "", onLaps, plannedEnc);

            VitEncoder hybridEnc(cfg,
                                 makeAttention(AttentionType::Taylor),
                                 0x5eed);
            PlanOptions heteroOpts;
            heteroOpts.layerKernels = hybrid;
            hybridEnc.compilePlan(heteroOpts);
            hybridEnc.forwardInto(qs[0], pool, out); // warmup
            std::vector<double> hybridLaps(static_cast<size_t>(reps));
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowMs();
                hybridEnc.forwardInto(qs[0], pool, out);
                hybridLaps[static_cast<size_t>(r)] = nowMs() - t0;
            }
            pushPlanned("hybrid", 1, hybrid, hybridLaps, hybridEnc);
        }

        // Ragged encoder rows under the token-keep sweep: the same
        // single image through forwardRagged with an explicit staged
        // schedule (VitConfig::withTokenKeep overrides the global
        // knob). keep=1.0 is the ragged-overhead control — bitwise
        // equal to Encoder(Taylor) above — and the pruned rows are the
        // variable-token payoff the trajectory tracks via tokens/s.
        for (const float keep : {1.0f, 0.7f, 0.5f, 0.35f}) {
            VitEncoder encoder(cfg.withTokenKeep(keep),
                               makeAttention(AttentionType::Taylor),
                               0x5eed);
            const Matrix *ptr = &qs[0];
            const RaggedBatch in = RaggedBatch::fromMatrices(&ptr, 1);
            RaggedBatch out;
            encoder.forwardRaggedInto(in, pool, out); // warmup
            std::vector<double> laps(static_cast<size_t>(reps));
            for (int r = 0; r < reps; ++r) {
                const double t0 = nowMs();
                encoder.forwardRaggedInto(in, pool, out);
                laps[static_cast<size_t>(r)] = nowMs() - t0;
            }
            double mean_ms = 0.0;
            for (double lap : laps)
                mean_ms += lap;
            mean_ms /= reps;
            const double median_ms = median(laps);

            Result res;
            res.model = cfg.name;
            res.kernel = "RaggedEncoder(Taylor)";
            res.tokens = cfg.tokens;
            res.heads = cfg.heads;
            res.headDim = cfg.headDim();
            res.batch = 1;
            res.reps = reps;
            res.wallMsMean = mean_ms;
            res.wallMsMedian = median_ms;
            res.imagesPerSec =
                median_ms > 0.0 ? 1.0 / (median_ms * 1e-3) : 0.0;
            res.maskDensity = -1.0;
            res.ragged = true;
            res.keepRatio = keep;
            // Input token rows per second: the throughput that stays
            // comparable across keep ratios (the request size is fixed;
            // pruning only shrinks the work).
            res.tokensPerSec =
                median_ms > 0.0
                    ? static_cast<double>(cfg.tokens) / (median_ms * 1e-3)
                    : 0.0;
            // Analytic counts are for the UNPRUNED program, so the
            // per-second figure under keep < 1 reads as effective
            // throughput (work avoided shows up as extra speed).
            res.counts = encoder.opCounts();
            res.gflopsPerSec =
                median_ms > 0.0
                    ? static_cast<double>(res.counts.flops()) /
                          (median_ms * 1e6)
                    : 0.0;
            results.push_back(res);

            inform("%-10s RaggedEnc keep=%.2f  %8.3f ms/img   "
                   "%8.1f img/s  %9.1f tok/s",
                   cfg.name.c_str(), static_cast<double>(keep),
                   median_ms, res.imagesPerSec, res.tokensPerSec);
        }

        for (const AttentionKernelPtr &kernel : kernels) {
            MultiHeadAttention mha(kernel, cfg.heads);
            const double density = measuredDensity(
                *kernel, cfg.heads, qs[0], ks[0], vs[0]);

            for (const BatchInputs &in : inputs) {
                const size_t batch = in.batch;
                const Batch &q = in.q;
                const Batch &k = in.k;
                const Batch &v = in.v;

                Batch out;
                mha.forwardBatchInto(pool, q, k, v, out); // warmup

                std::vector<double> laps(static_cast<size_t>(reps));
                for (int r = 0; r < reps; ++r) {
                    const double t0 = nowMs();
                    mha.forwardBatchInto(pool, q, k, v, out);
                    laps[static_cast<size_t>(r)] = nowMs() - t0;
                }
                double mean_ms = 0.0;
                for (double lap : laps)
                    mean_ms += lap;
                mean_ms /= reps;
                const double median_ms = median(laps);

                Result res;
                res.model = cfg.name;
                res.kernel = kernel->name();
                res.tokens = cfg.tokens;
                res.heads = cfg.heads;
                res.headDim = cfg.headDim();
                res.batch = batch;
                res.reps = reps;
                res.wallMsMean = mean_ms;
                res.wallMsMedian = median_ms;
                res.imagesPerSec =
                    median_ms > 0.0
                        ? static_cast<double>(batch) / (median_ms * 1e-3)
                        : 0.0;
                res.maskDensity = density;
                res.counts = mha.opCounts(cfg.tokens, cfg.dModel);
                res.gflopsPerSec =
                    median_ms > 0.0
                        ? static_cast<double>(res.counts.flops()) *
                              static_cast<double>(batch) /
                              (median_ms * 1e6)
                        : 0.0;
                results.push_back(res);

                inform("%-10s %-14s B=%-2zu %8.3f ms/batch  %8.1f img/s"
                       "  %7.2f GFLOP/s%s",
                       cfg.name.c_str(), kernel->name().c_str(), batch,
                       median_ms, res.imagesPerSec, res.gflopsPerSec,
                       density >= 0.0
                           ? strfmt("  density=%.4f", density).c_str()
                           : "");
            }
        }
    }

    const std::string entry = entryJson(results, pool.size());
    std::printf("%s\n", entry.c_str());
    if (argc > 2 && std::string(argv[2]) != "-") {
        appendToTrajectory(argv[2], entry);
        inform("appended run to %s", argv[2]);
    }
    return 0;
}
