/**
 * @file
 * Serving-engine benchmark: open-loop synthetic load with MIXED
 * token-count requests through ModelServer/DynamicBatcher, reporting
 * the latency distribution (p50/p95/p99 of client-observed total
 * latency), sustained images/s, and served tokens/s per batching
 * policy and per token-keep policy (keep_ratio 1.0 vs 0.5, pinned on
 * the model via RuntimeOptions.tokenKeep).
 *
 * For each (kernel, policy) sweep the bench first calibrates the
 * single-image forward time of the model, then submits `requests`
 * single-image requests on an open-loop schedule — arrival times are
 * fixed in advance at 70% of the calibrated single-stream capacity,
 * independent of completions, the standard way to expose queueing
 * delay (a closed loop would self-throttle and hide it). Every future
 * is then drained and the exact percentiles are computed over ALL
 * response latencies (no reservoir here — the bench holds every
 * sample). Policies swept: no-batching (maxBatch 1, no wait window)
 * as the baseline, and the default window (maxBatch 8, 2 ms) — the
 * pair that shows what the batcher buys (or costs, on a single-core
 * host) at the same offered load.
 *
 * Rows are appended to a SHA-keyed trajectory (same format and
 * provenance as bench_attention, via bench_util.h) as kernel
 * "Serve(<name>)" with the policy knobs (max_batch, max_wait_us)
 * recorded per row; check_bench_regression.py keys percentile metrics
 * on those knobs so serve rows gate like kernel rows. Each row also
 * records register_ms — the addModel wall-clock, which since
 * registration-time plan compilation covers weight prepacking, eager
 * int8 quantization (when pinned), and the workspace pre-grow; it is
 * informational (paid once per model), not gated. Note the
 * ROADMAP caveat: the dev container is single-core, so latency
 * distributions are only meaningful in CI — locally this bench is a
 * correctness smoke (and is run exactly that way, with a small
 * request count and "-" for the trajectory, under TSan/ASan in CI).
 *
 * Usage: bench_serve [requests] [trajectory.json] [kernel-filter]
 *   requests         requests per sweep (default 200)
 *   trajectory.json  append the run entry there (stdout always gets
 *                    it; pass "-" to skip the file)
 *   kernel-filter    case-insensitive substring on the kernel name
 *                    ("taylor" sweeps only Serve(Taylor))
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attention/zoo.h"
#include "base/logging.h"
#include "base/rng.h"
#include "bench_util.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/thread_pool.h"
#include "serve/model_server.h"
#include "sparse/csr.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"

using namespace vitality;
using benchutil::appendToTrajectory;
using benchutil::gitSha;
using benchutil::isoUtc;
using benchutil::median;
using benchutil::nowMs;
using benchutil::quantile;

namespace {

struct ServeResult
{
    std::string model;
    std::string kernel; // "Serve(<name>)"
    size_t maxBatch, queueCapacity;
    uint64_t maxWaitMicros;
    size_t requests, served, rejected;
    uint64_t batches;
    size_t maxBatchObserved;
    double offeredPerSec; // open-loop arrival rate
    double p50Ms, p95Ms, p99Ms;
    double imagesPerSec;  // served / sweep wall
    double keepRatio;     // token-keep policy of the served model
    double tokensPerSec;  // served input token rows / s (batcher stat)
    uint64_t tokensServed; // input token rows across served requests
    double registerMs;    // addModel wall: registration-time plan compile
};

std::string
lowered(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** One sweep: one server, one model, one policy, open-loop load. */
ServeResult
runSweep(const VitConfig &preset, AttentionType kernel,
         const BatchPolicy &policy, float keep, size_t requests,
         const std::vector<Matrix> &inputs, double calibratedMsPerImg)
{
    ModelServer server;
    ModelConfig mc;
    mc.preset = preset;
    mc.kernel = kernel;
    mc.policy = policy;
    // keep < 1 pins a token-keep policy on the model (RuntimeOptions
    // ride-along); 1.0 leaves the options empty so the unpruned sweep
    // adds no dispatch-gate locking.
    if (keep < 1.0f)
        mc.options.tokenKeep = keep;
    // Registration now compiles the model's execution plan (weight
    // prepacking, eager int8 twins when pinned, workspace pre-grow),
    // so addModel wall-clock IS the compiled-registration cost; it is
    // recorded per row (register_ms) but not gated — it is paid once
    // per model, not per request.
    const double tReg = nowMs();
    const std::string key = server.addModel(mc);
    const double registerMs = nowMs() - tReg;

    // Warm the serving path (first forward sizes every buffer).
    server.submit(key, inputs[0]).get();

    // Open-loop schedule: arrivals at 70% of calibrated single-stream
    // capacity, fixed before the run starts.
    const double interMs = calibratedMsPerImg / 0.7;
    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(requests);
    size_t rejected = 0;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < requests; ++i) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            interMs * static_cast<double>(i)));
        std::this_thread::sleep_until(due);
        try {
            futures.push_back(
                server.submit(key, inputs[i % inputs.size()]));
        } catch (const ServeError &e) {
            if (e.code() != ServeErrorCode::QueueFull)
                throw;
            ++rejected; // open loop: shed and keep the schedule
        }
    }
    std::vector<double> totals;
    totals.reserve(futures.size());
    for (std::future<InferenceResponse> &f : futures)
        totals.push_back(f.get().totalMs);
    const double wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    const BatcherStats stats = server.stats(key);
    server.shutdown();

    ServeResult r;
    r.model = preset.name;
    r.kernel = "Serve(" + kernelName(kernel) + ")";
    r.maxBatch = policy.maxBatch;
    r.maxWaitMicros = policy.maxWaitMicros;
    r.queueCapacity = policy.queueCapacity;
    r.requests = requests;
    r.served = totals.size();
    r.rejected = rejected;
    r.batches = stats.batches;
    r.maxBatchObserved = stats.maxBatchObserved;
    r.offeredPerSec = 1000.0 / interMs;
    r.p50Ms = quantile(totals, 0.50);
    r.p95Ms = quantile(totals, 0.95);
    r.p99Ms = quantile(totals, 0.99);
    r.imagesPerSec = wallMs > 0.0
                         ? static_cast<double>(totals.size()) /
                               (wallMs * 1e-3)
                         : 0.0;
    r.keepRatio = static_cast<double>(keep);
    r.tokensPerSec = stats.tokensPerSec;
    r.tokensServed = stats.tokensServed;
    r.registerMs = registerMs;
    return r;
}

std::string
entryJson(const std::vector<ServeResult> &results, size_t pool_threads)
{
    const std::time_t now = std::time(nullptr);
    std::ostringstream os;
    os << "{\n  \"bench\": \"serve\",\n";
    os << "  \"sha\": \"" << gitSha() << "\",\n";
    os << "  \"timestamp\": \"" << isoUtc(now) << "\",\n";
    os << "  \"unix_time\": " << static_cast<long long>(now) << ",\n";
    os << "  \"pool_threads\": " << pool_threads << ",\n";
    os << "  \"gemm_threads\": " << Gemm::parallelWidth() << ",\n";
    os << "  \"epilogue\": \""
       << Gemm::epilogueModeName(Gemm::epilogueMode()) << "\",\n";
    os << "  \"sparse_mode\": \"" << sparseExecName(sparseExecMode())
       << "\",\n";
    os << "  \"quant_mode\": \""
       << Gemm::quantModeName(Gemm::quantMode()) << "\",\n";
    os << "  \"gemm_backend\": \"" << Gemm::activeName() << "\",\n";
    os << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ServeResult &r = results[i];
        os << "    {\"model\": \"" << r.model << "\", \"kernel\": \""
           << r.kernel << "\", \"batch\": 1"
           << ", \"max_batch\": " << r.maxBatch
           << ", \"max_wait_us\": " << r.maxWaitMicros
           << ", \"queue_capacity\": " << r.queueCapacity
           << ", \"requests\": " << r.requests
           << ", \"served\": " << r.served
           << ", \"rejected\": " << r.rejected
           << ", \"batches\": " << r.batches
           << ", \"max_batch_observed\": " << r.maxBatchObserved
           << ", \"offered_img_per_s\": " << r.offeredPerSec
           << ", \"p50_ms\": " << r.p50Ms
           << ", \"p95_ms\": " << r.p95Ms
           << ", \"p99_ms\": " << r.p99Ms
           << ", \"images_per_s\": " << r.imagesPerSec
           << ", \"keep_ratio\": " << r.keepRatio
           << ", \"tokens_served\": " << r.tokensServed
           << ", \"tokens_per_s\": " << r.tokensPerSec
           << ", \"register_ms\": " << r.registerMs << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t requests =
        argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 200;
    if (requests == 0)
        fatal("bench_serve: requests must be positive");
    const std::string filter = argc > 3 ? lowered(argv[3]) : "";

    const VitConfig preset = VitConfig::deitTiny();
    std::vector<AttentionType> kernels = {AttentionType::Taylor,
                                          AttentionType::Softmax};
    if (!filter.empty()) {
        std::vector<AttentionType> kept;
        for (AttentionType k : kernels)
            if (lowered(kernelName(k)).find(filter) != std::string::npos)
                kept.push_back(k);
        if (kept.empty())
            fatal("bench_serve: kernel filter '%s' matches nothing "
                  "(have: Taylor, Softmax)",
                  argv[3]);
        kernels = std::move(kept);
    }

    // The no-batching baseline vs the default window: same offered
    // load, so the delta is exactly what the batcher buys/costs. A
    // deep queue keeps the open-loop schedule rejection-free at 70%
    // load on multi-core CI; rejections (if any) are recorded.
    std::vector<BatchPolicy> policies(2);
    policies[0].maxBatch = 1;
    policies[0].maxWaitMicros = 0;
    policies[0].queueCapacity = 256;
    policies[1].maxBatch = 8;
    policies[1].maxWaitMicros = 2000;
    policies[1].queueCapacity = 256;

    // Shared request pool: distinct inputs cycled round-robin with
    // MIXED token counts (full frame, 3/4, 1/2, 1/4 crops) — the
    // ragged dispatch packs them into one forward, and tokens/s is
    // the throughput row that stays comparable across the mix.
    Rng rng(0x5e47e ^ preset.dModel);
    const size_t lens[] = {preset.tokens, (3 * preset.tokens) / 4,
                           preset.tokens / 2, preset.tokens / 4};
    std::vector<Matrix> inputs;
    for (size_t i = 0; i < 8; ++i)
        inputs.push_back(Matrix::randn(std::max<size_t>(1, lens[i % 4]),
                                       preset.dModel, rng, 0.0f, 1.0f));

    std::vector<ServeResult> results;
    size_t poolThreads = 0;
    for (AttentionType kernel : kernels) {
        // Calibrate the single-stream service time on a direct
        // encoder (same seed/config as the served model), so the
        // offered load tracks the host instead of a hardcoded rate.
        double calibrated;
        {
            ThreadPool pool;
            poolThreads = pool.size();
            VitEncoder encoder(preset, makeAttention(kernel));
            Matrix out;
            encoder.forwardInto(inputs[0], pool, out); // warmup
            std::vector<double> laps(3);
            for (double &lap : laps) {
                const double t0 = nowMs();
                encoder.forwardInto(inputs[0], pool, out);
                lap = nowMs() - t0;
            }
            calibrated = median(laps);
        }
        inform("%s %s: calibrated %.3f ms/img, offering %.1f img/s",
               preset.name.c_str(), kernelName(kernel).c_str(),
               calibrated, 700.0 / calibrated);

        // The keep-ratio axis: 1.0 (no pruning) vs the paper-style 0.5
        // policy pinned per model, under each batching policy. Rows
        // carry keep_ratio, so the regression gate never compares
        // across policies.
        for (const float keep : {1.0f, 0.5f}) {
            for (const BatchPolicy &policy : policies) {
                const ServeResult r =
                    runSweep(preset, kernel, policy, keep, requests,
                             inputs, calibrated);
                inform("%-10s %-16s keep=%.2f max_batch=%zu wait=%lluus"
                       "  p50=%.2f p95=%.2f p99=%.2f ms  %.1f img/s  "
                       "%.1f tok/s  register=%.2fms  (%zu served, "
                       "%zu rejected, %llu batches, largest %zu)",
                       r.model.c_str(), r.kernel.c_str(), r.keepRatio,
                       r.maxBatch,
                       static_cast<unsigned long long>(r.maxWaitMicros),
                       r.p50Ms, r.p95Ms, r.p99Ms, r.imagesPerSec,
                       r.tokensPerSec, r.registerMs, r.served,
                       r.rejected,
                       static_cast<unsigned long long>(r.batches),
                       r.maxBatchObserved);
                results.push_back(r);
            }
        }
    }

    const std::string entry = entryJson(results, poolThreads);
    std::printf("%s\n", entry.c_str());
    if (argc > 2 && std::string(argv[2]) != "-") {
        appendToTrajectory(argv[2], entry);
        inform("appended run to %s", argv[2]);
    }
    return 0;
}
