#include "attention/unified_attention.h"

#include <cmath>
#include <stdexcept>

#include "attention/softmax_attention.h"
#include "base/logging.h"
#include "attention/taylor_attention.h"
#include "sparse/csr.h"
#include "tensor/ops.h"

namespace vitality {

// --- SangerSparseAttention --------------------------------------------------

SangerSparseAttention::SangerSparseAttention(float threshold, int bits,
                                             double nominal_density)
    : predictor_(threshold, bits), nominalDensity_(nominal_density)
{
}

std::string
SangerSparseAttention::name() const
{
    return strfmt("Sanger(T=%.3g)", predictor_.threshold());
}

Matrix
SangerSparseAttention::forward(const Matrix &q, const Matrix &k,
                               const Matrix &v) const
{
    return forwardWithMask(q, k, v, nullptr);
}

Matrix
SangerSparseAttention::forwardWithMask(const Matrix &q, const Matrix &k,
                                       const Matrix &v,
                                       SparseMask *mask_out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("sanger sparse: shape mismatch");

    SparseMask mask = predictor_.predict(q, k);
    mask.rescueEmptyRows(predictor_.predictedMap(q, k));
    if (mask_out)
        *mask_out = mask;

    const Matrix scores = SoftmaxAttention::similarity(q, k);
    return matmul(maskedSoftmaxRows(scores, mask), v);
}

void
SangerSparseAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                                   const Matrix &k, const Matrix &v,
                                   Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("sanger sparse: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "sanger sparse");

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // The prediction pass fuses the threshold compare (and the empty-row
    // rescue) into its softmax walk, so the n^2 predicted map is never
    // materialized here — only the kept set comes back.
    if (sparseExecMode() == SparseExec::Csr) {
        // Compressed execution: full-precision work happens only at the
        // kept coordinates. The quantized prediction pass stays dense —
        // it is the part Sanger's hardware runs in low precision — but
        // scores, softmax, and score x V are O(nnz d).
        CsrMask &csr = ctx.csr();
        predictor_.predictCsrInto(csr, q, k, ws,
                                  /*rescue_empty_rows=*/true);
        const float inv_sqrt_d =
            1.0f / std::sqrt(static_cast<float>(q.cols()));
        Matrix &vals = ws.acquire(1, csr.nnz());
        sparseScoresInto(vals, csr, q, k, inv_sqrt_d);
        maskedSoftmaxCsrInto(vals, csr);
        spmmInto(out, csr, vals, v);
        return;
    }

    SparseMask &mask = ctx.mask();
    predictor_.predictInto(mask, q, k, ws, /*rescue_empty_rows=*/true);

    Matrix &scores = ws.acquire(q.rows(), k.rows());
    SoftmaxAttention::similarityInto(scores, q, k);
    maskedSoftmaxRowsInto(scores, scores, mask);
    matmulInto(out, scores, v);
}

OpCounts
SangerSparseAttention::opCounts(size_t n, size_t d) const
{
    return opCountsWithDensity(n, d, nominalDensity_);
}

OpCounts
SangerSparseAttention::opCountsWithDensity(size_t n, size_t d,
                                           double density) const
{
    const auto dense_pairs = static_cast<double>(n) * static_cast<double>(n);
    const auto kept = static_cast<uint64_t>(density * dense_pairs);
    OpCounts c;
    // Quantized 4-bit prediction is ~1/4 the cost of a fp16 multiply; the
    // same convention Sanger's own evaluation uses.
    c.mul = static_cast<uint64_t>(dense_pairs * d) / 4;
    // Full-precision scores and SV only on kept connections.
    c.mul += 2ULL * kept * d;
    c.add = static_cast<uint64_t>(dense_pairs * d) / 4 + 2ULL * kept * d +
            kept;
    c.exp = kept;
    c.div = kept;
    return c;
}

std::vector<ProcessorKind>
SangerSparseAttention::processors() const
{
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

// --- UnifiedAttention -------------------------------------------------------

UnifiedAttention::UnifiedAttention(float threshold, int bits,
                                   bool mean_center)
    : predictor_(threshold, bits), meanCenter_(mean_center)
{
}

std::string
UnifiedAttention::name() const
{
    return strfmt("Unified(T=%.3g)", predictor_.threshold());
}

Matrix
UnifiedAttention::forward(const Matrix &q, const Matrix &k,
                          const Matrix &v) const
{
    return forwardDetailed(q, k, v).z;
}

UnifiedAttention::Detailed
UnifiedAttention::forwardDetailed(const Matrix &q, const Matrix &k,
                                  const Matrix &v) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("unified: shape mismatch");

    const Matrix khat =
        meanCenter_ ? TaylorAttention::meanCenterKeys(k) : k;

    Detailed out{Matrix(), Matrix(), Matrix(),
                 SparseMask(q.rows(), k.rows()), 0.0};

    // Low-rank branch: the explicit weak Taylor map (training-time only;
    // inference uses the linear form without ever materializing this).
    out.weakMap = TaylorAttention::weakAttentionMap(q, khat);

    // Sparse branch: Sanger-style masked softmax over the predicted
    // strong connections (mean-centering leaves the softmax unchanged,
    // Property 1, so the scores come from khat to share intermediates
    // with hardware), residual against the weak map at those
    // coordinates only. With an all-ones mask the masked softmax is the
    // full softmax and S_train collapses to it exactly.
    out.mask = predictor_.predict(q, khat);
    const Matrix strong_map =
        maskedSoftmaxRows(SoftmaxAttention::similarity(q, khat), out.mask);
    out.strongPart = applyMask(sub(strong_map, out.weakMap), out.mask);
    out.sparseBranchDensity = out.mask.density();

    out.z = matmul(add(out.weakMap, out.strongPart), v);
    return out;
}

void
UnifiedAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                              const Matrix &k, const Matrix &v,
                              Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("unified: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "unified");

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    const Matrix *khat = &k;
    if (meanCenter_) {
        Matrix &kbar = ws.acquire(1, k.cols());
        colMeanInto(kbar, k);
        Matrix &centered = ws.acquire(k.rows(), k.cols());
        broadcastSubRowInto(centered, k, kbar);
        khat = &centered;
    }

    if (sparseExecMode() == SparseExec::Csr) {
        forwardCsrInto(ctx, q, *khat, v, out);
        return;
    }

    // Dense-masked reference: the explicit weak Taylor map plus the
    // masked softmax of the similarity scores, with the residual
    // S_train = T_weak + M .* (SM(S, M) - T_weak) folded in place.
    Matrix &weak = ws.acquire(q.rows(), k.rows());
    TaylorAttention::weakAttentionMapInto(weak, q, *khat, ws);

    Matrix &strong = ws.acquire(q.rows(), k.rows());
    SoftmaxAttention::similarityInto(strong, q, *khat);

    SparseMask &mask = ctx.mask();
    predictor_.predictInto(mask, q, *khat, ws);
    maskedSoftmaxRowsInto(strong, strong, mask);
    subInto(strong, strong, weak);
    applyMaskInto(strong, strong, mask);
    addInto(strong, weak, strong);

    matmulInto(out, strong, v);
}

void
UnifiedAttention::forwardCsrInto(AttentionContext &ctx, const Matrix &q,
                                 const Matrix &khat, const Matrix &v,
                                 Matrix &out) const
{
    const size_t n = q.rows();
    const size_t d = q.cols();
    const float sqrt_d = std::sqrt(static_cast<float>(d));

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // Weak branch in its associative linear form (Algorithm 1 over the
    // already-centered keys): O(n d^2), never materializes the n x n
    // map. Mathematically identical to weakAttentionMap(q, khat) * V —
    // the associativity regrouping is the whole point of the Taylor
    // linearization — and within float round-off of the dense path.
    Matrix &g = ws.acquire(d, v.cols());
    matmulATInto(g, khat, v);
    Matrix &ksum = ws.acquire(1, d);
    colSumInto(ksum, khat);
    Matrix &vsum = ws.acquire(1, v.cols());
    colSumInto(vsum, v);
    Matrix &td = ws.acquire(n, 1);
    matmulBTInto(td, q, ksum);
    addScalarInto(td, td, static_cast<float>(n) * sqrt_d);
    TaylorAttention::clampDenominator(td);
    matmulInto(out, q, g);
    scaleInto(vsum, vsum, sqrt_d);
    broadcastAddRowInto(out, out, vsum);
    divRowsInto(out, out, td);

    // Strong branch at the kept coordinates only: masked softmax of
    // the similarity scores minus the weak map, both evaluated per
    // kept (r, c) — O(nnz d) total. The weak entry reuses the sparse
    // similarity value: weak(r, c) = (q_r . khat_c + sqrt(d)) / t_D(r).
    // The fused prediction pass returns the kept set directly, never
    // materializing the n^2 predicted map.
    CsrMask &csr = ctx.csr();
    predictor_.predictCsrInto(csr, q, khat, ws);
    if (csr.nnz() == 0)
        return; // Fully pruned: the unified output IS the Taylor output.

    Matrix &sim = ws.acquire(1, csr.nnz());
    sparseScoresInto(sim, csr, q, khat, 1.0f / sqrt_d);
    Matrix &resid = ws.acquire(1, csr.nnz());
    resid.copyFrom(sim);
    maskedSoftmaxCsrInto(resid, csr);

    const uint32_t *rp = csr.rowPtr();
    const float *simv = sim.data();
    float *res = resid.data();
    for (size_t r = 0; r < n; ++r) {
        const float tdr = td(r, 0);
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx)
            res[idx] -= (simv[idx] * sqrt_d + sqrt_d) / tdr;
    }
    spmmInto(out, csr, resid, v, /*accumulate=*/true);
}

OpCounts
UnifiedAttention::opCounts(size_t n, size_t d) const
{
    // The paper drops the sparse branch at inference, so the deployed cost
    // of a ViTALiTy-trained model is exactly the Taylor cost.
    return TaylorAttention().opCounts(n, d);
}

OpCounts
UnifiedAttention::opCountsWithDensity(size_t n, size_t d,
                                      double density) const
{
    OpCounts c = TaylorAttention().opCounts(n, d);
    const auto kept = static_cast<uint64_t>(
        density * static_cast<double>(n) * static_cast<double>(n));
    // Strong branch: masked scores + masked SV, plus the prediction pass.
    c.mul += 2ULL * kept * d + static_cast<uint64_t>(n) * n * d / 4;
    c.add += 2ULL * kept * d + kept;
    c.exp += kept;
    c.div += kept;
    return c;
}

std::vector<ProcessorKind>
UnifiedAttention::processors() const
{
    // Training needs every chunk: Taylor's Acc/Div/Add plus the sparse
    // branch's Exp.
    return {ProcessorKind::Acc, ProcessorKind::Div, ProcessorKind::Add,
            ProcessorKind::Exp};
}

} // namespace vitality
