#include "attention/unified_attention.h"

#include <stdexcept>

#include "attention/softmax_attention.h"
#include "base/logging.h"
#include "attention/taylor_attention.h"
#include "tensor/ops.h"

namespace vitality {

// --- SangerSparseAttention --------------------------------------------------

SangerSparseAttention::SangerSparseAttention(float threshold, int bits,
                                             double nominal_density)
    : predictor_(threshold, bits), nominalDensity_(nominal_density)
{
}

Matrix
SangerSparseAttention::forward(const Matrix &q, const Matrix &k,
                               const Matrix &v) const
{
    return forwardWithMask(q, k, v, nullptr);
}

Matrix
SangerSparseAttention::forwardWithMask(const Matrix &q, const Matrix &k,
                                       const Matrix &v,
                                       SparseMask *mask_out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("sanger sparse: shape mismatch");

    SparseMask mask = predictor_.predict(q, k);
    // Keep every row alive: Sanger guarantees at least the top predicted
    // connection per query survives, otherwise a query would attend to
    // nothing and its output would be zero.
    const Matrix predicted = predictor_.predictedMap(q, k);
    for (size_t r = 0; r < mask.rows(); ++r) {
        if (mask.rowNnz(r) == 0)
            mask.set(r, argmaxRow(predicted, r), true);
    }
    if (mask_out)
        *mask_out = mask;

    const Matrix scores = SoftmaxAttention::similarity(q, k);
    return matmul(maskedSoftmaxRows(scores, mask), v);
}

void
SangerSparseAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                                   const Matrix &k, const Matrix &v,
                                   Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("sanger sparse: shape mismatch");

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // One predicted map serves both the threshold mask and the row rescue
    // (the legacy path computes it twice).
    Matrix &predicted = ws.acquire(q.rows(), k.rows());
    predictor_.predictedMapInto(predicted, q, k, ws);
    SparseMask &mask = ctx.mask();
    mask.assignFromThreshold(predicted, predictor_.threshold());
    for (size_t r = 0; r < mask.rows(); ++r) {
        if (mask.rowNnz(r) == 0)
            mask.set(r, argmaxRow(predicted, r), true);
    }

    Matrix &scores = ws.acquire(q.rows(), k.rows());
    SoftmaxAttention::similarityInto(scores, q, k);
    maskedSoftmaxRowsInto(scores, scores, mask);
    matmulInto(out, scores, v);
}

OpCounts
SangerSparseAttention::opCounts(size_t n, size_t d) const
{
    return opCountsWithDensity(n, d, nominalDensity_);
}

OpCounts
SangerSparseAttention::opCountsWithDensity(size_t n, size_t d,
                                           double density) const
{
    const auto dense_pairs = static_cast<double>(n) * static_cast<double>(n);
    const auto kept = static_cast<uint64_t>(density * dense_pairs);
    OpCounts c;
    // Quantized 4-bit prediction is ~1/4 the cost of a fp16 multiply; the
    // same convention Sanger's own evaluation uses.
    c.mul = static_cast<uint64_t>(dense_pairs * d) / 4;
    // Full-precision scores and SV only on kept connections.
    c.mul += 2ULL * kept * d;
    c.add = static_cast<uint64_t>(dense_pairs * d) / 4 + 2ULL * kept * d +
            kept;
    c.exp = kept;
    c.div = kept;
    return c;
}

std::vector<ProcessorKind>
SangerSparseAttention::processors() const
{
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

// --- UnifiedAttention -------------------------------------------------------

UnifiedAttention::UnifiedAttention(float threshold, int bits,
                                   bool mean_center)
    : predictor_(threshold, bits), meanCenter_(mean_center)
{
}

std::string
UnifiedAttention::name() const
{
    return strfmt("Unified(T=%.3g)", predictor_.threshold());
}

Matrix
UnifiedAttention::forward(const Matrix &q, const Matrix &k,
                          const Matrix &v) const
{
    return forwardDetailed(q, k, v).z;
}

UnifiedAttention::Detailed
UnifiedAttention::forwardDetailed(const Matrix &q, const Matrix &k,
                                  const Matrix &v) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("unified: shape mismatch");

    const Matrix khat =
        meanCenter_ ? TaylorAttention::meanCenterKeys(k) : k;

    Detailed out{Matrix(), Matrix(), Matrix(),
                 SparseMask(q.rows(), k.rows()), 0.0};

    // Low-rank branch: the explicit weak Taylor map (training-time only;
    // inference uses the linear form without ever materializing this).
    out.weakMap = TaylorAttention::weakAttentionMap(q, khat);

    // Full softmax map; mean-centering leaves it unchanged (Property 1)
    // but we compute it from khat to share intermediates with hardware.
    const Matrix full_map = SoftmaxAttention::attentionMap(q, khat);

    // Sparse branch: residual on predicted strong connections only.
    out.mask = predictor_.predict(q, khat);
    out.strongPart = applyMask(sub(full_map, out.weakMap), out.mask);
    out.sparseBranchDensity = out.mask.density();

    out.z = matmul(add(out.weakMap, out.strongPart), v);
    return out;
}

void
UnifiedAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                              const Matrix &k, const Matrix &v,
                              Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("unified: shape mismatch");

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    const Matrix *khat = &k;
    if (meanCenter_) {
        Matrix &kbar = ws.acquire(1, k.cols());
        colMeanInto(kbar, k);
        Matrix &centered = ws.acquire(k.rows(), k.cols());
        broadcastSubRowInto(centered, k, kbar);
        khat = &centered;
    }

    // Low-rank branch: the explicit weak Taylor map.
    Matrix &weak = ws.acquire(q.rows(), k.rows());
    TaylorAttention::weakAttentionMapInto(weak, q, *khat, ws);

    // Full softmax map from the centered keys (Property 1).
    Matrix &full = ws.acquire(q.rows(), k.rows());
    SoftmaxAttention::attentionMapInto(full, q, *khat);

    // Sparse branch: residual on predicted strong connections only, then
    // S_train = T_weak + M .* (S_full - T_weak) folded in place.
    SparseMask &mask = ctx.mask();
    predictor_.predictInto(mask, q, *khat, ws);
    subInto(full, full, weak);
    applyMaskInto(full, full, mask);
    addInto(full, weak, full);

    matmulInto(out, full, v);
}

OpCounts
UnifiedAttention::opCounts(size_t n, size_t d) const
{
    // The paper drops the sparse branch at inference, so the deployed cost
    // of a ViTALiTy-trained model is exactly the Taylor cost.
    return TaylorAttention().opCounts(n, d);
}

OpCounts
UnifiedAttention::opCountsWithDensity(size_t n, size_t d,
                                      double density) const
{
    OpCounts c = TaylorAttention().opCounts(n, d);
    const auto kept = static_cast<uint64_t>(
        density * static_cast<double>(n) * static_cast<double>(n));
    // Strong branch: masked scores + masked SV, plus the prediction pass.
    c.mul += 2ULL * kept * d + static_cast<uint64_t>(n) * n * d / 4;
    c.add += 2ULL * kept * d + kept;
    c.exp += kept;
    c.div += kept;
    return c;
}

std::vector<ProcessorKind>
UnifiedAttention::processors() const
{
    // Training needs every chunk: Taylor's Acc/Div/Add plus the sparse
    // branch's Exp.
    return {ProcessorKind::Acc, ProcessorKind::Div, ProcessorKind::Add,
            ProcessorKind::Exp};
}

} // namespace vitality
