#include "attention/zoo.h"

#include <cctype>
#include <stdexcept>

#include "attention/linear_attentions.h"
#include "attention/softmax_attention.h"
#include "attention/taylor_attention.h"
#include "attention/unified_attention.h"
#include "base/logging.h"

namespace vitality {

AttentionKernelPtr
makeAttention(AttentionType type)
{
    switch (type) {
      case AttentionType::Softmax:
        return std::make_shared<SoftmaxAttention>();
      case AttentionType::Taylor:
        return std::make_shared<TaylorAttention>();
      case AttentionType::SangerSparse:
        return std::make_shared<SangerSparseAttention>();
      case AttentionType::Unified:
        return std::make_shared<UnifiedAttention>();
      case AttentionType::Performer:
        return std::make_shared<PerformerAttention>();
      case AttentionType::LinearTransformer:
        return std::make_shared<LinearTransformerAttention>();
      case AttentionType::Efficient:
        return std::make_shared<EfficientAttention>();
      case AttentionType::Linformer:
        return std::make_shared<LinformerAttention>();
    }
    panic("makeAttention: unknown type %d", static_cast<int>(type));
}

AttentionKernelPtr
makeAttention(AttentionType type, float threshold)
{
    switch (type) {
      case AttentionType::SangerSparse:
        return std::make_shared<SangerSparseAttention>(threshold);
      case AttentionType::Unified:
        return std::make_shared<UnifiedAttention>(threshold);
      default:
        throw std::invalid_argument(
            "makeAttention: kernel '" + kernelName(type) +
            "' takes no sparsity threshold");
    }
}

std::string
kernelName(AttentionType type)
{
    return attentionTypeName(type);
}

std::optional<AttentionType>
kernelFromName(const std::string &name)
{
    auto eqNoCase = [](const std::string &a, const std::string &b) {
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i)
            if (std::tolower(static_cast<unsigned char>(a[i])) !=
                std::tolower(static_cast<unsigned char>(b[i])))
                return false;
        return true;
    };
    for (AttentionType type : allAttentionTypes())
        if (eqNoCase(name, kernelName(type)))
            return type;
    return std::nullopt;
}

std::vector<AttentionType>
allAttentionTypes()
{
    return {
        AttentionType::Softmax,       AttentionType::Taylor,
        AttentionType::SangerSparse,  AttentionType::Unified,
        AttentionType::Performer,     AttentionType::LinearTransformer,
        AttentionType::Efficient,     AttentionType::Linformer,
    };
}

std::vector<AttentionKernelPtr>
makeAttentionZoo()
{
    std::vector<AttentionKernelPtr> zoo;
    for (AttentionType type : allAttentionTypes())
        zoo.push_back(makeAttention(type));
    return zoo;
}

namespace {

/** Parse a whole decimal layer index out of text; throws otherwise. */
size_t
parseLayerIndex(const std::string &text, const std::string &item)
{
    if (text.empty())
        throw std::invalid_argument(
            "layer schedule: missing layer index in '" + item + "'");
    size_t pos = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(text, &pos, 10);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != text.size())
        throw std::invalid_argument(
            "layer schedule: bad layer index '" + text + "' in '" + item +
            "'");
    return static_cast<size_t>(value);
}

} // namespace

std::vector<LayerKernelRange>
parseLayerSchedule(const std::string &text)
{
    std::vector<LayerKernelRange> out;
    if (text.empty())
        return out;
    size_t pos = 0;
    while (true) {
        const size_t comma = text.find(',', pos);
        const std::string item = text.substr(
            pos, (comma == std::string::npos ? text.size() : comma) - pos);
        const size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= item.size()) {
            throw std::invalid_argument(
                "layer schedule: expected kernel:range, got '" + item +
                "' (grammar: \"taylor:0-7,softmax:8-11\")");
        }
        const std::string name = item.substr(0, colon);
        const std::optional<AttentionType> kernel = kernelFromName(name);
        if (!kernel) {
            throw std::invalid_argument(
                "layer schedule: unknown kernel '" + name + "' in '" +
                item + "'");
        }
        const std::string range = item.substr(colon + 1);
        const size_t dash = range.find('-');
        size_t lo = 0, hi = 0;
        if (dash == std::string::npos) {
            lo = hi = parseLayerIndex(range, item);
        } else {
            lo = parseLayerIndex(range.substr(0, dash), item);
            hi = parseLayerIndex(range.substr(dash + 1), item);
        }
        if (lo > hi) {
            throw std::invalid_argument(
                "layer schedule: descending range in '" + item + "'");
        }
        out.push_back({*kernel, lo, hi});
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::vector<AttentionType>
expandLayerSchedule(const std::string &text, size_t layers,
                    AttentionType base)
{
    std::vector<AttentionType> out(layers, base);
    std::vector<bool> covered(layers, false);
    for (const LayerKernelRange &range : parseLayerSchedule(text)) {
        if (range.hi >= layers) {
            throw std::invalid_argument(strfmt(
                "layer schedule: range %zu-%zu exceeds the model's %zu "
                "layers",
                range.lo, range.hi, layers));
        }
        for (size_t l = range.lo; l <= range.hi; ++l) {
            if (covered[l]) {
                throw std::invalid_argument(strfmt(
                    "layer schedule: layer %zu covered by two ranges", l));
            }
            covered[l] = true;
            out[l] = range.kernel;
        }
    }
    return out;
}

} // namespace vitality
