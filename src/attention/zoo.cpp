#include "attention/zoo.h"

#include "attention/linear_attentions.h"
#include "attention/softmax_attention.h"
#include "attention/taylor_attention.h"
#include "attention/unified_attention.h"
#include "base/logging.h"

namespace vitality {

AttentionKernelPtr
makeAttention(AttentionType type)
{
    switch (type) {
      case AttentionType::Softmax:
        return std::make_shared<SoftmaxAttention>();
      case AttentionType::Taylor:
        return std::make_shared<TaylorAttention>();
      case AttentionType::SangerSparse:
        return std::make_shared<SangerSparseAttention>();
      case AttentionType::Unified:
        return std::make_shared<UnifiedAttention>();
      case AttentionType::Performer:
        return std::make_shared<PerformerAttention>();
      case AttentionType::LinearTransformer:
        return std::make_shared<LinearTransformerAttention>();
      case AttentionType::Efficient:
        return std::make_shared<EfficientAttention>();
      case AttentionType::Linformer:
        return std::make_shared<LinformerAttention>();
    }
    panic("makeAttention: unknown type %d", static_cast<int>(type));
}

std::vector<AttentionType>
allAttentionTypes()
{
    return {
        AttentionType::Softmax,       AttentionType::Taylor,
        AttentionType::SangerSparse,  AttentionType::Unified,
        AttentionType::Performer,     AttentionType::LinearTransformer,
        AttentionType::Efficient,     AttentionType::Linformer,
    };
}

std::vector<AttentionKernelPtr>
makeAttentionZoo()
{
    std::vector<AttentionKernelPtr> zoo;
    for (AttentionType type : allAttentionTypes())
        zoo.push_back(makeAttention(type));
    return zoo;
}

} // namespace vitality
