#include "attention/zoo.h"

#include <cctype>
#include <stdexcept>

#include "attention/linear_attentions.h"
#include "attention/softmax_attention.h"
#include "attention/taylor_attention.h"
#include "attention/unified_attention.h"
#include "base/logging.h"

namespace vitality {

AttentionKernelPtr
makeAttention(AttentionType type)
{
    switch (type) {
      case AttentionType::Softmax:
        return std::make_shared<SoftmaxAttention>();
      case AttentionType::Taylor:
        return std::make_shared<TaylorAttention>();
      case AttentionType::SangerSparse:
        return std::make_shared<SangerSparseAttention>();
      case AttentionType::Unified:
        return std::make_shared<UnifiedAttention>();
      case AttentionType::Performer:
        return std::make_shared<PerformerAttention>();
      case AttentionType::LinearTransformer:
        return std::make_shared<LinearTransformerAttention>();
      case AttentionType::Efficient:
        return std::make_shared<EfficientAttention>();
      case AttentionType::Linformer:
        return std::make_shared<LinformerAttention>();
    }
    panic("makeAttention: unknown type %d", static_cast<int>(type));
}

AttentionKernelPtr
makeAttention(AttentionType type, float threshold)
{
    switch (type) {
      case AttentionType::SangerSparse:
        return std::make_shared<SangerSparseAttention>(threshold);
      case AttentionType::Unified:
        return std::make_shared<UnifiedAttention>(threshold);
      default:
        throw std::invalid_argument(
            "makeAttention: kernel '" + kernelName(type) +
            "' takes no sparsity threshold");
    }
}

std::string
kernelName(AttentionType type)
{
    return attentionTypeName(type);
}

std::optional<AttentionType>
kernelFromName(const std::string &name)
{
    auto eqNoCase = [](const std::string &a, const std::string &b) {
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i)
            if (std::tolower(static_cast<unsigned char>(a[i])) !=
                std::tolower(static_cast<unsigned char>(b[i])))
                return false;
        return true;
    };
    for (AttentionType type : allAttentionTypes())
        if (eqNoCase(name, kernelName(type)))
            return type;
    return std::nullopt;
}

std::vector<AttentionType>
allAttentionTypes()
{
    return {
        AttentionType::Softmax,       AttentionType::Taylor,
        AttentionType::SangerSparse,  AttentionType::Unified,
        AttentionType::Performer,     AttentionType::LinearTransformer,
        AttentionType::Efficient,     AttentionType::Linformer,
    };
}

std::vector<AttentionKernelPtr>
makeAttentionZoo()
{
    std::vector<AttentionKernelPtr> zoo;
    for (AttentionType type : allAttentionTypes())
        zoo.push_back(makeAttention(type));
    return zoo;
}

} // namespace vitality
