/**
 * @file
 * Common interface for all attention kernels (the "attention zoo").
 *
 * Every kernel maps per-head (Q, K, V), each n x d, to an n x d score
 * matrix Z, and can report:
 *   - analytic operation counts (multiplies / adds / divides / exps) used
 *     by Table I, Eq. (1)-(3), and Table IV of the paper; and
 *   - the set of pre/post-processor chunks an accelerator needs to run it,
 *     which reproduces Table VI.
 *
 * Kernels are stateless with respect to the input (Performer / Linformer
 * hold fixed random projections seeded at construction), so one instance
 * can be shared across layers and heads.
 */

#ifndef VITALITY_ATTENTION_ATTENTION_H
#define VITALITY_ATTENTION_ATTENTION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/check.h"
#include "sparse/csr.h"
#include "sparse/mask.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"

namespace vitality {

/**
 * Operation counts for one attention invocation.
 *
 * Counts follow the paper's accounting (Section IV-A): multiplications
 * from matrix products, additions from accumulations and element-wise
 * sums, divisions from normalization, and exponentiations from softmax.
 */
struct OpCounts
{
    uint64_t mul = 0;
    uint64_t add = 0;
    uint64_t div = 0;
    uint64_t exp = 0;

    OpCounts &operator+=(const OpCounts &o);
    OpCounts operator+(const OpCounts &o) const;
    /** Scale all counts, e.g. by heads x layers. */
    OpCounts operator*(uint64_t k) const;

    uint64_t total() const { return mul + add + div + exp; }

    /**
     * MAC-style FLOP count used for Table IV: multiplications only, the
     * convention under which the paper's 0.50G / 0.33G figures line up
     * with Table I.
     */
    uint64_t flops() const { return mul; }
};

/**
 * Pre/post-processor chunk kinds an accelerator must provide (Table VI).
 * Acc = column-wise accumulator, Div = divider array, Add = adder array,
 * Exp = exponentiation unit.
 */
enum class ProcessorKind { Acc, Div, Add, Exp };

/** Human-readable name ("Acc.", "Div.", "Add.", "Exp."). */
std::string processorName(ProcessorKind kind);

/** Identifiers for the built-in attention kernels. */
enum class AttentionType
{
    Softmax,           ///< Vanilla quadratic softmax attention (BASELINE).
    Taylor,            ///< ViTALiTy linear Taylor attention (Algorithm 1).
    SangerSparse,      ///< Sanger-style dynamic sparse attention (SPARSE).
    Unified,           ///< Training-time low-rank + sparse (ViTALiTy train).
    Performer,         ///< Positive orthogonal random features.
    LinearTransformer, ///< phi(x) = elu(x) + 1 kernel attention.
    Efficient,         ///< softmax(Q) (softmax(K)^T V).
    Linformer,         ///< Low-rank projection of K / V.
};

/** Name used in tables ("Softmax", "Taylor", ...). */
std::string attentionTypeName(AttentionType type);

/**
 * Per-thread execution state for allocation-free attention.
 *
 * Holds the scratch Workspace every forwardInto() draws intermediates
 * from, plus recycled sparse structures for the kernels with a sparse
 * branch (SangerSparse, Unified): a dense SparseMask for the
 * dense-masked reference path and a CsrMask for the compressed path
 * (VITALITY_SPARSE selects which one a forward populates). The runtime
 * layer owns one context per worker thread; contexts are not
 * thread-safe and must never be shared between concurrent forwards.
 */
class AttentionContext
{
  public:
    AttentionContext() : mask_(0, 0) {}

    AttentionContext(const AttentionContext &) = delete;
    AttentionContext &operator=(const AttentionContext &) = delete;

    Workspace &workspace() { return ws_; }

    /**
     * The cached mask, recycled across forwards. Callers reassign it
     * wholesale (via SparseMask::assignFromThreshold) before reading,
     * so it is handed out as-is — no clearing pass.
     */
    SparseMask &mask() { return mask_; }

    /**
     * The cached CSR structure, recycled the same way (reassigned
     * wholesale via CsrMask::assignFromThreshold / assignFromMask
     * before reading). The nnz-sized value buffers that go with it are
     * drawn from workspace() per forward.
     */
    CsrMask &csr() { return csr_; }

  private:
    Workspace ws_;
    SparseMask mask_;
    CsrMask csr_;
};

/** Abstract attention kernel: per-head (Q, K, V) -> Z. */
class AttentionKernel
{
  public:
    virtual ~AttentionKernel() = default;

    /** Kernel identifier. */
    virtual AttentionType type() const = 0;

    /** Display name for benches/tables. */
    virtual std::string name() const { return attentionTypeName(type()); }

    /**
     * Compute the attention score for one head.
     *
     * @param q Queries, n x d.
     * @param k Keys, n x d.
     * @param v Values, n x d.
     * @return Attention score Z, n x d.
     */
    virtual Matrix forward(const Matrix &q, const Matrix &k,
                           const Matrix &v) const = 0;

    /**
     * Allocation-free forward: writes Z into out (resized to n x d), with
     * every intermediate drawn from ctx's workspace. After the first call
     * with a given shape the steady state performs no heap allocations.
     * out must not be a matrix checked out of ctx's workspace after the
     * kernel's own frame opens — a caller-held slot or plain Matrix is
     * fine. Matches forward() to float round-off: <= 1e-5 max-abs-diff
     * for the dense execution paths (most built-in kernels are bitwise
     * identical there), and <= 1e-4 for the sparse kernels under the
     * default VITALITY_SPARSE=csr, which regroup the same math over
     * the kept coordinates (and run the Unified weak branch in its
     * associative linear form) so they differ from the dense reference
     * by accumulated rounding. Both bounds are asserted in ctest.
     *
     * The default implementation falls back to forward() so external
     * kernels keep working; every built-in kernel overrides it.
     */
    virtual void forwardInto(AttentionContext &ctx, const Matrix &q,
                             const Matrix &k, const Matrix &v,
                             Matrix &out) const;

    /** Analytic per-head op counts for a sequence of n tokens, dim d. */
    virtual OpCounts opCounts(size_t n, size_t d) const = 0;

    /** Processor chunks required on an accelerator (Table VI). */
    virtual std::vector<ProcessorKind> processors() const = 0;
};

using AttentionKernelPtr = std::shared_ptr<AttentionKernel>;

namespace detail {

/**
 * Checked-build entry contract shared by every built-in forwardInto
 * override: finite Q/K/V (a NaN would ride silently through every
 * downstream GEMM) and out distinct from the inputs (each kernel
 * resizes out before its last read of them). Compiles to nothing
 * without -DVITALITY_CHECKED=ON.
 */
inline void
checkForwardInputs(const AttentionContext &ctx, const Matrix &q,
                   const Matrix &k, const Matrix &v, const Matrix &out,
                   const char *kernel)
{
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "%s: out aliases an input", kernel);
    VITALITY_DCHECK(check::allFinite(q.data(), q.size()),
                    "%s: non-finite Q", kernel);
    VITALITY_DCHECK(check::allFinite(k.data(), k.size()),
                    "%s: non-finite K", kernel);
    VITALITY_DCHECK(check::allFinite(v.data(), v.size()),
                    "%s: non-finite V", kernel);
    (void)ctx;
    (void)q;
    (void)k;
    (void)v;
    (void)out;
    (void)kernel;
}

} // namespace detail

} // namespace vitality

#endif // VITALITY_ATTENTION_ATTENTION_H
