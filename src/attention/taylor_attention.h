/**
 * @file
 * ViTALiTy's linear Taylor attention — Algorithm 1 of the paper.
 *
 * The kernel mean-centers the keys (which provably leaves the softmax
 * output unchanged, Property 1), then replaces exp(x) by its first-order
 * Taylor expansion 1 + x, which is accurate because mean-centering pushes
 * the bulk of the query-key similarities into [-1, 1). The resulting
 * "weak" attention is linear: the associative trick Q (K-hat^T V) brings
 * the cost from O(n^2 d) down to O(n d^2), with the d x d global context
 * matrix G = K-hat^T V replacing the n x n attention map.
 *
 * The six steps of Algorithm 1 are exposed individually via the
 * Intermediates struct so that the cycle-level accelerator simulator and
 * the test-suite can cross-check operand counts step by step.
 *
 * A noteworthy mathematical property (asserted in the tests): because the
 * keys are centered over the same token set that is summed, the column sum
 * of the centered keys k-hat-sum is identically zero in exact arithmetic,
 * so the Taylor denominator t_D equals n * sqrt(d) for every row. The
 * hardware still computes it (SA-Diag in Fig. 6) since under quantized or
 * finite-precision execution it is only approximately zero; we keep the
 * computation to stay faithful to Algorithm 1.
 */

#ifndef VITALITY_ATTENTION_TAYLOR_ATTENTION_H
#define VITALITY_ATTENTION_TAYLOR_ATTENTION_H

#include "attention/attention.h"

namespace vitality {

/** ViTALiTy linear Taylor attention (first-order, "weak" branch). */
class TaylorAttention : public AttentionKernel
{
  public:
    /**
     * @param mean_center When false, skips Step 1 (the mean-centering of
     * keys). Used only by the ablation benches; the paper's kernel always
     * centers.
     */
    explicit TaylorAttention(bool mean_center = true);

    AttentionType type() const override { return AttentionType::Taylor; }
    std::string name() const override;

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    /** Algorithm 1 with every intermediate drawn from ctx's workspace. */
    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /**
     * Per-head counts matching the paper's Eq. (1)-(3) denominators:
     * mul = 2 n d^2 + n d, add = 2 n d^2 + 7 n d, div = n d + d, exp = 0.
     */
    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    /** Every intermediate value of Algorithm 1. */
    struct Intermediates
    {
        Matrix kbar;  ///< Step 1a: column (token) mean of keys, 1 x d.
        Matrix khat;  ///< Step 1b: mean-centered keys, n x d.
        Matrix g;     ///< Step 2: global context matrix K-hat^T V, d x d.
        Matrix ksum;  ///< Step 3a: column sum of centered keys, 1 x d.
        Matrix vsum;  ///< Step 3b: column sum of values, 1 x d.
        Matrix td;    ///< Step 4: Taylor denominator, n x 1.
        Matrix tn;    ///< Step 5: Taylor numerator, n x d.
        Matrix z;     ///< Step 6: attention score, n x d.
    };

    /** Run Algorithm 1 capturing all intermediates. */
    Intermediates forwardDetailed(const Matrix &q, const Matrix &k,
                                  const Matrix &v) const;

    /** Step 1 as a standalone helper: K-hat = K - 1_n K-bar. */
    static Matrix meanCenterKeys(const Matrix &k);

    /**
     * Magnitude floor applied to the Taylor denominator t_D before the
     * row division (Step 6). With mean-centering on, t_D ~ n sqrt(d)
     * > 0, but with centering disabled (the ablation) or adversarial
     * queries an entry can reach zero, which would put Inf/NaN into the
     * scores. Entries with |t_D| below the floor are clamped out to
     * +/-kDenomFloor, preserving sign (exact zero and NaN land on
     * +kDenomFloor); everything else — including well-negative
     * denominators — is bitwise unaffected.
     */
    static constexpr float kDenomFloor = 1e-6f;

    /** In-place sign-preserving guard: |t_D(i)| >= kDenomFloor after. */
    static void clampDenominator(Matrix &td);

    /**
     * The explicit n x n first-order Taylor attention map
     * diag^-1(n sqrt(d) 1 + Q khat_sum^T) (sqrt(d) 1 1^T + Q Khat^T).
     * Quadratic; used only for training/analysis, never for inference.
     */
    static Matrix weakAttentionMap(const Matrix &q, const Matrix &khat);

    /** Allocation-free weakAttentionMap with scratch from ws. */
    static void weakAttentionMapInto(Matrix &dst, const Matrix &q,
                                     const Matrix &khat, Workspace &ws);

    bool meanCenter() const { return meanCenter_; }

  private:
    bool meanCenter_;
};

} // namespace vitality

#endif // VITALITY_ATTENTION_TAYLOR_ATTENTION_H
