/**
 * @file
 * Vanilla quadratic softmax attention — the paper's BASELINE.
 *
 * Z = softmax(Q K^T / sqrt(d)) V, computed in three steps matching Fig. 2:
 * the n x n similarity matrix, the row-wise softmax, and the score. Costs
 * are quadratic in the token count n in both time and memory.
 */

#ifndef VITALITY_ATTENTION_SOFTMAX_ATTENTION_H
#define VITALITY_ATTENTION_SOFTMAX_ATTENTION_H

#include "attention/attention.h"

namespace vitality {

/** The vanilla softmax attention kernel. */
class SoftmaxAttention : public AttentionKernel
{
  public:
    AttentionType type() const override { return AttentionType::Softmax; }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /**
     * Per-head counts per the paper's Eq. (1)-(3) numerators:
     * mul = 2 n^2 d (QK^T and SV), add = 2 n^2 d + n^2 (accumulations plus
     * the softmax denominator sums), div = n^2, exp = n^2.
     */
    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    /** The similarity matrix Q K^T / sqrt(d) before softmax, n x n. */
    static Matrix similarity(const Matrix &q, const Matrix &k);

    /** Allocation-free similarity. */
    static void similarityInto(Matrix &dst, const Matrix &q,
                               const Matrix &k);

    /** The softmax attention map S = softmax(similarity), n x n. */
    static Matrix attentionMap(const Matrix &q, const Matrix &k);

    /** Allocation-free attentionMap. */
    static void attentionMapInto(Matrix &dst, const Matrix &q,
                                 const Matrix &k);
};

} // namespace vitality

#endif // VITALITY_ATTENTION_SOFTMAX_ATTENTION_H
