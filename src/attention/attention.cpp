#include "attention/attention.h"

#include "base/logging.h"

namespace vitality {

void
AttentionKernel::forwardInto(AttentionContext &ctx, const Matrix &q,
                             const Matrix &k, const Matrix &v,
                             Matrix &out) const
{
    (void)ctx;
    out = forward(q, k, v);
}

OpCounts &
OpCounts::operator+=(const OpCounts &o)
{
    mul += o.mul;
    add += o.add;
    div += o.div;
    exp += o.exp;
    return *this;
}

OpCounts
OpCounts::operator+(const OpCounts &o) const
{
    OpCounts out = *this;
    out += o;
    return out;
}

OpCounts
OpCounts::operator*(uint64_t k) const
{
    return {mul * k, add * k, div * k, exp * k};
}

std::string
processorName(ProcessorKind kind)
{
    switch (kind) {
      case ProcessorKind::Acc:
        return "Acc.";
      case ProcessorKind::Div:
        return "Div.";
      case ProcessorKind::Add:
        return "Add.";
      case ProcessorKind::Exp:
        return "Exp.";
    }
    panic("unknown ProcessorKind %d", static_cast<int>(kind));
}

std::string
attentionTypeName(AttentionType type)
{
    switch (type) {
      case AttentionType::Softmax:
        return "Softmax";
      case AttentionType::Taylor:
        return "Taylor";
      case AttentionType::SangerSparse:
        return "SangerSparse";
      case AttentionType::Unified:
        return "Unified";
      case AttentionType::Performer:
        return "Performer";
      case AttentionType::LinearTransformer:
        return "LinearTransformer";
      case AttentionType::Efficient:
        return "Efficient";
      case AttentionType::Linformer:
        return "Linformer";
    }
    panic("unknown AttentionType %d", static_cast<int>(type));
}

} // namespace vitality
