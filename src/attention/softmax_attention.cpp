#include "attention/softmax_attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace vitality {

void
SoftmaxAttention::similarityInto(Matrix &dst, const Matrix &q,
                                 const Matrix &k)
{
    if (q.cols() != k.cols())
        throw std::invalid_argument("similarity: Q/K dim mismatch");
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(q.cols()));
    matmulBTInto(dst, q, k);
    scaleInto(dst, dst, inv_sqrt_d);
}

Matrix
SoftmaxAttention::similarity(const Matrix &q, const Matrix &k)
{
    Matrix s;
    similarityInto(s, q, k);
    return s;
}

void
SoftmaxAttention::attentionMapInto(Matrix &dst, const Matrix &q,
                                   const Matrix &k)
{
    similarityInto(dst, q, k);
    softmaxRowsInto(dst, dst);
}

Matrix
SoftmaxAttention::attentionMap(const Matrix &q, const Matrix &k)
{
    Matrix s;
    attentionMapInto(s, q, k);
    return s;
}

Matrix
SoftmaxAttention::forward(const Matrix &q, const Matrix &k,
                          const Matrix &v) const
{
    if (k.rows() != v.rows())
        throw std::invalid_argument("forward: K/V token mismatch");
    return matmul(attentionMap(q, k), v);
}

void
SoftmaxAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                              const Matrix &k, const Matrix &v,
                              Matrix &out) const
{
    if (k.rows() != v.rows())
        throw std::invalid_argument("forward: K/V token mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "softmax");
    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);
    Matrix &s = ws.acquire(q.rows(), k.rows());
    attentionMapInto(s, q, k);
    matmulInto(out, s, v);
}

OpCounts
SoftmaxAttention::opCounts(size_t n, size_t d) const
{
    OpCounts c;
    c.mul = 2ULL * n * n * d;          // QK^T and SV
    c.add = 2ULL * n * n * d + n * n;  // accumulations + softmax denom sums
    c.div = 1ULL * n * n;              // softmax normalization
    c.exp = 1ULL * n * n;              // softmax exponentials
    return c;
}

std::vector<ProcessorKind>
SoftmaxAttention::processors() const
{
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

} // namespace vitality
