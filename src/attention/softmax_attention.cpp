#include "attention/softmax_attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace vitality {

Matrix
SoftmaxAttention::similarity(const Matrix &q, const Matrix &k)
{
    if (q.cols() != k.cols())
        throw std::invalid_argument("similarity: Q/K dim mismatch");
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(q.cols()));
    return scale(matmulBT(q, k), inv_sqrt_d);
}

Matrix
SoftmaxAttention::attentionMap(const Matrix &q, const Matrix &k)
{
    return softmaxRows(similarity(q, k));
}

Matrix
SoftmaxAttention::forward(const Matrix &q, const Matrix &k,
                          const Matrix &v) const
{
    if (k.rows() != v.rows())
        throw std::invalid_argument("forward: K/V token mismatch");
    return matmul(attentionMap(q, k), v);
}

OpCounts
SoftmaxAttention::opCounts(size_t n, size_t d) const
{
    OpCounts c;
    c.mul = 2ULL * n * n * d;          // QK^T and SV
    c.add = 2ULL * n * n * d + n * n;  // accumulations + softmax denom sums
    c.div = 1ULL * n * n;              // softmax normalization
    c.exp = 1ULL * n * n;              // softmax exponentials
    return c;
}

std::vector<ProcessorKind>
SoftmaxAttention::processors() const
{
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

} // namespace vitality
