/**
 * @file
 * Factory for the attention zoo — the one construction surface.
 *
 * Builds any AttentionKernel by type with the paper's default parameters
 * (or an explicit sparsity threshold for the sparse-branch kernels), and
 * enumerates the zoo for the benches that sweep every kernel (Table IV's
 * accuracy-vs-FLOPs frontier and Table VI's processor requirements).
 *
 * Kernel identifiers round-trip through strings: kernelName() emits the
 * canonical id (the same display name attentionTypeName() uses in every
 * table and bench row) and kernelFromName() parses it back,
 * case-insensitively. Server model configs, bench rows, and tests all
 * name kernels through this pair instead of constructing kernel classes
 * per site, so a kernel named in a config file, a trajectory entry, and
 * a registry key is guaranteed to be the same kernel.
 */

#ifndef VITALITY_ATTENTION_ZOO_H
#define VITALITY_ATTENTION_ZOO_H

#include <optional>
#include <string>
#include <vector>

#include "attention/attention.h"

namespace vitality {

/** Construct a kernel of the given type with the paper's defaults. */
AttentionKernelPtr makeAttention(AttentionType type);

/**
 * Construct a sparse-branch kernel (SangerSparse or Unified) with an
 * explicit sparsity threshold; throws std::invalid_argument for kernels
 * without a threshold parameter — a silently ignored threshold would
 * misname the bench row it configures.
 */
AttentionKernelPtr makeAttention(AttentionType type, float threshold);

/**
 * Canonical kernel id ("Softmax", "Taylor", "SangerSparse", ...) —
 * identical to attentionTypeName(), re-exported here so the factory is
 * a complete naming surface. Round-trips through kernelFromName().
 */
std::string kernelName(AttentionType type);

/** Parse a kernel id, case-insensitively; nullopt on unknown text. */
std::optional<AttentionType> kernelFromName(const std::string &name);

/** All kernel types, in the order the paper's tables list them. */
std::vector<AttentionType> allAttentionTypes();

/** One instance of every kernel. */
std::vector<AttentionKernelPtr> makeAttentionZoo();

/**
 * One range of a per-layer kernel schedule: run `kernel` on layers
 * [lo, hi] (inclusive — the string grammar below is human-written).
 */
struct LayerKernelRange
{
    AttentionType kernel;
    size_t lo;
    size_t hi;
};

/**
 * Parse a per-layer kernel schedule string:
 *
 *   schedule := item ("," item)*          (empty string = no ranges)
 *   item     := kernel ":" (index | index "-" index)
 *
 * e.g. "taylor:0-7,softmax:8-11" or "unified:5". Kernel names go
 * through kernelFromName() (case-insensitive); indices are decimal
 * layer numbers with lo <= hi. Grammar-only: range bounds are NOT
 * checked against any layer count here (expandLayerSchedule does
 * that). Throws std::invalid_argument on malformed text or unknown
 * kernel names.
 */
std::vector<LayerKernelRange> parseLayerSchedule(const std::string &text);

/**
 * Expand a schedule string over `layers` encoder layers: every layer
 * covered by a range gets that range's kernel, uncovered layers get
 * `base` (the model's configured kernel). Throws std::invalid_argument
 * on parse errors, a range reaching at or past `layers`, or two ranges
 * covering the same layer.
 */
std::vector<AttentionType> expandLayerSchedule(const std::string &text,
                                               size_t layers,
                                               AttentionType base);

} // namespace vitality

#endif // VITALITY_ATTENTION_ZOO_H
