/**
 * @file
 * Factory for the attention zoo.
 *
 * Builds any AttentionKernel by type with the paper's default parameters,
 * and enumerates the zoo for the benches that sweep every kernel
 * (Table IV's accuracy-vs-FLOPs frontier and Table VI's processor
 * requirements).
 */

#ifndef VITALITY_ATTENTION_ZOO_H
#define VITALITY_ATTENTION_ZOO_H

#include <vector>

#include "attention/attention.h"

namespace vitality {

/** Construct a kernel of the given type with the paper's defaults. */
AttentionKernelPtr makeAttention(AttentionType type);

/** All kernel types, in the order the paper's tables list them. */
std::vector<AttentionType> allAttentionTypes();

/** One instance of every kernel. */
std::vector<AttentionKernelPtr> makeAttentionZoo();

} // namespace vitality

#endif // VITALITY_ATTENTION_ZOO_H
