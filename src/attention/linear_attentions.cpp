#include "attention/linear_attentions.h"

#include <cmath>
#include <stdexcept>

#include "base/rng.h"
#include "tensor/ops.h"

namespace vitality {

namespace {

/**
 * Shared tail of every kernelized linear attention:
 * Z = diag^-1(phi_q (phi_k^T 1)) phi_q (phi_k^T V).
 */
void
normalizedLinearAttentionInto(Matrix &out, const Matrix &phi_q,
                              const Matrix &phi_k, const Matrix &v,
                              Workspace &ws)
{
    Workspace::Frame frame(ws);
    Matrix &context = ws.acquire(phi_k.cols(), v.cols()); // m x d
    matmulATInto(context, phi_k, v);
    Matrix &ksum = ws.acquire(1, phi_k.cols());           // 1 x m
    colSumInto(ksum, phi_k);
    Matrix &denom = ws.acquire(phi_q.rows(), 1);          // n x 1
    matmulBTInto(denom, phi_q, ksum);
    // Guard fully-degenerate rows; phi is non-negative for all kernels
    // here so the sum can only be ~0 when every feature vanished.
    for (size_t r = 0; r < denom.rows(); ++r)
        denom(r, 0) = std::max(denom(r, 0), 1e-12f);
    matmulInto(out, phi_q, context);
    divRowsInto(out, out, denom);
}

/** Gram-Schmidt orthonormalization of the rows of m (in d-sized blocks). */
Matrix
orthogonalizeRows(Matrix m)
{
    const size_t rows = m.rows(), d = m.cols();
    for (size_t block = 0; block < rows; block += d) {
        const size_t end = std::min(block + d, rows);
        for (size_t i = block; i < end; ++i) {
            for (size_t j = block; j < i; ++j) {
                float dot = 0.0f;
                for (size_t c = 0; c < d; ++c)
                    dot += m(i, c) * m(j, c);
                for (size_t c = 0; c < d; ++c)
                    m(i, c) -= dot * m(j, c);
            }
            float norm = 0.0f;
            for (size_t c = 0; c < d; ++c)
                norm += m(i, c) * m(i, c);
            norm = std::sqrt(std::max(norm, 1e-20f));
            for (size_t c = 0; c < d; ++c)
                m(i, c) /= norm;
        }
    }
    return m;
}

} // namespace

// --- Performer ------------------------------------------------------------

PerformerAttention::PerformerAttention(size_t num_features, uint64_t seed)
    : numFeatures_(num_features), seed_(seed)
{
}

size_t
PerformerAttention::featuresFor(size_t d) const
{
    return numFeatures_ == 0 ? d : numFeatures_;
}

const Matrix &
PerformerAttention::projection(size_t d) const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = projectionCache_.find(d);
    if (it == projectionCache_.end()) {
        const size_t m = featuresFor(d);
        Rng rng(seed_ ^ (0xd00dULL * d));
        Matrix w = orthogonalizeRows(Matrix::randn(m, d, rng));
        // FAVOR+ scales rows to the deterministic norm sqrt(d), the
        // "regularized" orthogonal-feature variant.
        const float scale_factor = std::sqrt(static_cast<float>(d));
        w = scale(w, scale_factor);
        it = projectionCache_.emplace(d, std::move(w)).first;
    }
    return it->second;
}

namespace {

/**
 * FAVOR+ feature map phi(x) = exp(W x~ - |x~|^2 / 2) / sqrt(m) written
 * into phi, with scratch from ws.
 */
void
performerFeaturesInto(Matrix &phi, const Matrix &x, const Matrix &w,
                      float input_scale, float feat_scale, Workspace &ws)
{
    Workspace::Frame frame(ws);
    Matrix &xs = ws.acquire(x.rows(), x.cols());
    scaleInto(xs, x, input_scale);
    matmulBTInto(phi, xs, w); // n x m projections
    Matrix &sq = ws.acquire(x.rows(), x.cols());
    hadamardInto(sq, xs, xs);
    Matrix &norms = ws.acquire(x.rows(), 1); // n x 1, |x~|^2
    rowSumInto(norms, sq);
    for (size_t r = 0; r < phi.rows(); ++r) {
        const float half_sq = 0.5f * norms(r, 0);
        float *row = phi.rowPtr(r);
        for (size_t c = 0; c < phi.cols(); ++c)
            row[c] = std::exp(row[c] - half_sq) * feat_scale;
    }
}

} // namespace

Matrix
PerformerAttention::forward(const Matrix &q, const Matrix &k,
                            const Matrix &v) const
{
    AttentionContext ctx;
    Matrix out;
    forwardInto(ctx, q, k, v, out);
    return out;
}

void
PerformerAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                                const Matrix &k, const Matrix &v,
                                Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("performer: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "performer");

    const size_t d = q.cols();
    const size_t m = featuresFor(d);
    const Matrix &w = projection(d);
    // x~ = x / d^(1/4) so that phi(q) phi(k)^T estimates exp(q k^T/sqrt(d)).
    const float input_scale =
        1.0f / std::pow(static_cast<float>(d), 0.25f);
    const float feat_scale = 1.0f / std::sqrt(static_cast<float>(m));

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);
    Matrix &phi_q = ws.acquire(q.rows(), m);
    performerFeaturesInto(phi_q, q, w, input_scale, feat_scale, ws);
    Matrix &phi_k = ws.acquire(k.rows(), m);
    performerFeaturesInto(phi_k, k, w, input_scale, feat_scale, ws);
    normalizedLinearAttentionInto(out, phi_q, phi_k, v, ws);
}

OpCounts
PerformerAttention::opCounts(size_t n, size_t d) const
{
    const uint64_t m = featuresFor(d);
    OpCounts c;
    // phi(Q), phi(K): projections n*m*d each, plus |x|^2 (n*d) each.
    c.mul = 2ULL * n * m * d + 2ULL * n * d;
    // context phi(K)^T V: n*m*d; output phi(Q) G: n*m*d; denominator n*m.
    c.mul += 2ULL * n * m * d + n * m;
    c.add = 4ULL * n * m * d + 2ULL * n * d + 2ULL * n * m;
    c.exp = 2ULL * n * m; // feature exponentials for Q and K
    c.div = 1ULL * n * d; // output normalization
    return c;
}

std::vector<ProcessorKind>
PerformerAttention::processors() const
{
    // Table VI row "Performer": Exp. Div. Add.
    return {ProcessorKind::Exp, ProcessorKind::Div, ProcessorKind::Add};
}

// --- Linear Transformer -----------------------------------------------------

Matrix
LinearTransformerAttention::forward(const Matrix &q, const Matrix &k,
                                    const Matrix &v) const
{
    AttentionContext ctx;
    Matrix out;
    forwardInto(ctx, q, k, v, out);
    return out;
}

void
LinearTransformerAttention::forwardInto(AttentionContext &ctx,
                                        const Matrix &q, const Matrix &k,
                                        const Matrix &v, Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("linear transformer: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "linear transformer");

    auto elu1 = [](float x) {
        return x > 0.0f ? x + 1.0f : std::exp(x);
    };
    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);
    Matrix &phi_q = ws.acquire(q.rows(), q.cols());
    mapElemInto(phi_q, q, elu1);
    Matrix &phi_k = ws.acquire(k.rows(), k.cols());
    mapElemInto(phi_k, k, elu1);
    normalizedLinearAttentionInto(out, phi_q, phi_k, v, ws);
}

OpCounts
LinearTransformerAttention::opCounts(size_t n, size_t d) const
{
    OpCounts c;
    // context K^T V and output Q G.
    c.mul = 2ULL * n * d * d + n * d;
    c.add = 2ULL * n * d * d + 3ULL * n * d;
    c.exp = 2ULL * n * d; // elu's exponential on the negative side
    c.div = 1ULL * n * d;
    return c;
}

std::vector<ProcessorKind>
LinearTransformerAttention::processors() const
{
    // Table VI row "Linear Transformer": Exp. Div. Add.
    return {ProcessorKind::Exp, ProcessorKind::Div, ProcessorKind::Add};
}

// --- Efficient Attention ----------------------------------------------------

Matrix
EfficientAttention::forward(const Matrix &q, const Matrix &k,
                            const Matrix &v) const
{
    AttentionContext ctx;
    Matrix out;
    forwardInto(ctx, q, k, v, out);
    return out;
}

void
EfficientAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                                const Matrix &k, const Matrix &v,
                                Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("efficient attention: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "efficient attention");

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);
    Matrix &rho_q = ws.acquire(q.rows(), q.cols());
    softmaxRowsInto(rho_q, q);
    // Column softmax of K == row softmax of K^T, transposed back.
    Matrix &kt = ws.acquire(k.cols(), k.rows());
    transposeInto(kt, k);
    softmaxRowsInto(kt, kt);
    Matrix &rho_k = ws.acquire(k.rows(), k.cols());
    transposeInto(rho_k, kt);
    Matrix &context = ws.acquire(k.cols(), v.cols());
    matmulATInto(context, rho_k, v);
    matmulInto(out, rho_q, context);
}

OpCounts
EfficientAttention::opCounts(size_t n, size_t d) const
{
    OpCounts c;
    c.mul = 2ULL * n * d * d;
    c.add = 2ULL * n * d * d + 2ULL * n * d;
    c.exp = 2ULL * n * d; // the two softmaxes
    c.div = 2ULL * n * d;
    return c;
}

std::vector<ProcessorKind>
EfficientAttention::processors() const
{
    // Table VI row "Efficient Attention": Exp. Div.
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

// --- Linformer --------------------------------------------------------------

LinformerAttention::LinformerAttention(size_t proj_dim, uint64_t seed)
    : projDim_(proj_dim), seed_(seed)
{
    if (proj_dim == 0)
        throw std::invalid_argument("linformer: proj_dim must be > 0");
}

const std::pair<Matrix, Matrix> &
LinformerAttention::projections(size_t n) const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto it = projectionCache_.find(n);
    if (it == projectionCache_.end()) {
        Rng rng(seed_ ^ (0x11f0ULL * n));
        const float stddev = 1.0f / std::sqrt(static_cast<float>(projDim_));
        Matrix e = Matrix::randn(projDim_, n, rng, 0.0f, stddev);
        Matrix f = Matrix::randn(projDim_, n, rng, 0.0f, stddev);
        it = projectionCache_
                 .emplace(n, std::make_pair(std::move(e), std::move(f)))
                 .first;
    }
    return it->second;
}

Matrix
LinformerAttention::forward(const Matrix &q, const Matrix &k,
                            const Matrix &v) const
{
    AttentionContext ctx;
    Matrix out;
    forwardInto(ctx, q, k, v, out);
    return out;
}

void
LinformerAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                                const Matrix &k, const Matrix &v,
                                Matrix &out) const
{
    if (q.cols() != k.cols() || k.rows() != v.rows())
        throw std::invalid_argument("linformer: shape mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "linformer");

    const auto &[e, f] = projections(k.rows());
    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);
    Matrix &k_proj = ws.acquire(projDim_, k.cols()); // k x d
    matmulInto(k_proj, e, k);
    Matrix &v_proj = ws.acquire(projDim_, v.cols()); // k x d
    matmulInto(v_proj, f, v);
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(q.cols()));
    Matrix &s = ws.acquire(q.rows(), projDim_);
    matmulBTInto(s, q, k_proj);
    scaleInto(s, s, inv_sqrt_d);
    softmaxRowsInto(s, s);
    matmulInto(out, s, v_proj);
}

OpCounts
LinformerAttention::opCounts(size_t n, size_t d) const
{
    const uint64_t k = projDim_;
    OpCounts c;
    // E K and F V projections, Q K'^T, S V'.
    c.mul = 2ULL * k * n * d + 2ULL * n * k * d;
    c.add = 4ULL * n * k * d + n * k;
    c.exp = 1ULL * n * k;
    c.div = 1ULL * n * k;
    return c;
}

std::vector<ProcessorKind>
LinformerAttention::processors() const
{
    // Table VI row "Linformer": Exp. Div.
    return {ProcessorKind::Exp, ProcessorKind::Div};
}

} // namespace vitality
