/**
 * @file
 * Linear-attention baselines from the paper's Table IV and Table VI:
 * Performer (positive orthogonal random features), Linear Transformer
 * (elu + 1 kernel), Efficient Attention (separate softmaxes on Q and K),
 * and Linformer (low-rank projection of K / V).
 *
 * All four share the associative-trick structure phi(Q) (phi(K)^T V) that
 * ViTALiTy's Taylor attention also exploits; they differ in the feature
 * map phi and therefore in the pre/post-processor chunks an accelerator
 * must provide (Table VI).
 */

#ifndef VITALITY_ATTENTION_LINEAR_ATTENTIONS_H
#define VITALITY_ATTENTION_LINEAR_ATTENTIONS_H

#include <cstdint>
#include <map>
#include <mutex>

#include "attention/attention.h"

namespace vitality {

/**
 * Performer attention (Choromanski et al., ICLR'21), FAVOR+ with positive
 * orthogonal random features:
 *   phi(x) = exp(W x~ - |x~|^2 / 2) / sqrt(m),  x~ = x / d^(1/4),
 * where W has m orthogonal rows. Then Z = D^-1 phi(Q) (phi(K)^T V) with
 * D = diag(phi(Q) (phi(K)^T 1)).
 */
class PerformerAttention : public AttentionKernel
{
  public:
    /**
     * @param num_features Random-feature count m; 0 means "use d".
     * @param seed Seed for the orthogonal random projections.
     */
    explicit PerformerAttention(size_t num_features = 0,
                                uint64_t seed = 0x9e3779b9ULL);

    AttentionType type() const override { return AttentionType::Performer; }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    /** The feature count used for dimension d. */
    size_t featuresFor(size_t d) const;

  private:
    /**
     * Orthogonal random features for dimension d (cached per d). The
     * cache is mutex-guarded because MultiHeadAttention calls the const
     * forward paths concurrently on a shared kernel instance; returned
     * references stay valid since map nodes are never erased.
     */
    const Matrix &projection(size_t d) const;

    size_t numFeatures_;
    uint64_t seed_;
    mutable std::mutex cacheMutex_;
    mutable std::map<size_t, Matrix> projectionCache_;
};

/**
 * Linear Transformer attention (Katharopoulos et al., ICML'20):
 * phi(x) = elu(x) + 1 applied element-wise, then the same normalized
 * associative product as Performer.
 */
class LinearTransformerAttention : public AttentionKernel
{
  public:
    AttentionType type() const override
    {
        return AttentionType::LinearTransformer;
    }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;
};

/**
 * Efficient Attention (Shen et al., WACV'21): row-softmax on queries and
 * column-softmax on keys, Z = softmax_row(Q) (softmax_col(K)^T V). The
 * normalization is built into the two softmaxes, so no divider pass over
 * the output is needed.
 */
class EfficientAttention : public AttentionKernel
{
  public:
    AttentionType type() const override { return AttentionType::Efficient; }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;
};

/**
 * Linformer attention (Wang et al., 2020): fixed random projections
 * E, F (k x n) reduce the token dimension of keys and values, then
 * Z = softmax(Q (E K)^T / sqrt(d)) (F V). Complexity O(n k d).
 */
class LinformerAttention : public AttentionKernel
{
  public:
    /**
     * @param proj_dim Projected token count k (Linformer's "k"); 64
     * matches the paper's Table IV FLOPs for DeiT-Tiny.
     * @param seed Seed for the fixed Gaussian projections.
     */
    explicit LinformerAttention(size_t proj_dim = 64,
                                uint64_t seed = 0x11f0ULL);

    AttentionType type() const override { return AttentionType::Linformer; }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    size_t projDim() const { return projDim_; }

  private:
    /**
     * Projection pair (E, F) for sequence length n (cached per n).
     * Mutex-guarded for concurrent per-head forwards, like Performer's
     * projection cache.
     */
    const std::pair<Matrix, Matrix> &projections(size_t n) const;

    size_t projDim_;
    uint64_t seed_;
    mutable std::mutex cacheMutex_;
    mutable std::map<size_t, std::pair<Matrix, Matrix>> projectionCache_;
};

} // namespace vitality

#endif // VITALITY_ATTENTION_LINEAR_ATTENTIONS_H
