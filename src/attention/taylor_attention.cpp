#include "attention/taylor_attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace vitality {

TaylorAttention::TaylorAttention(bool mean_center)
    : meanCenter_(mean_center)
{
}

std::string
TaylorAttention::name() const
{
    return meanCenter_ ? "Taylor" : "Taylor(no-center)";
}

Matrix
TaylorAttention::meanCenterKeys(const Matrix &k)
{
    return broadcastSubRow(k, colMean(k));
}

void
TaylorAttention::clampDenominator(Matrix &td)
{
    float *p = td.data();
    for (size_t i = 0; i < td.size(); ++i) {
        // Sign-preserving magnitude floor: a well-negative denominator
        // (the no-centering ablation can produce one) keeps its finite
        // O(1) scores; only the near-zero band that would blow up the
        // division is pushed out to +/-kDenomFloor. The negated
        // comparison also catches NaN (from NaN inputs), which would
        // otherwise pass any ordered threshold; NaN lands on +floor.
        if (!(p[i] >= kDenomFloor || p[i] <= -kDenomFloor))
            p[i] = p[i] < 0.0f ? -kDenomFloor : kDenomFloor;
    }
}

Matrix
TaylorAttention::forward(const Matrix &q, const Matrix &k,
                         const Matrix &v) const
{
    return forwardDetailed(q, k, v).z;
}

TaylorAttention::Intermediates
TaylorAttention::forwardDetailed(const Matrix &q, const Matrix &k,
                                 const Matrix &v) const
{
    if (q.cols() != k.cols())
        throw std::invalid_argument("taylor: Q/K dim mismatch");
    if (k.rows() != v.rows())
        throw std::invalid_argument("taylor: K/V token mismatch");

    const size_t n = q.rows();
    const size_t d = q.cols();
    const float sqrt_d = std::sqrt(static_cast<float>(d));

    Intermediates im;

    // Step 1: mean-centering keys. K-bar = (1/n) 1^T K, Khat = K - 1 K-bar.
    if (meanCenter_) {
        im.kbar = colMean(k);
        im.khat = broadcastSubRow(k, im.kbar);
    } else {
        im.kbar = Matrix::zeros(1, d);
        im.khat = k;
    }

    // Step 2: global context matrix G = Khat^T V, d x d.
    im.g = matmulAT(im.khat, v);

    // Step 3: column sums of centered keys and of values.
    im.ksum = colSum(im.khat);
    im.vsum = colSum(v);

    // Step 4: Taylor denominator t_D = n sqrt(d) 1_n + Q ksum^T, n x 1,
    // magnitude-floored at kDenomFloor (the recorded intermediate is
    // the guarded value, the one actually divided by).
    im.td = addScalar(matmulBT(q, im.ksum),
                      static_cast<float>(n) * sqrt_d);
    clampDenominator(im.td);

    // Step 5: Taylor numerator T_N = sqrt(d) (1_n vsum) + Q G, n x d.
    im.tn = broadcastAddRow(matmul(q, im.g), scale(im.vsum, sqrt_d));

    // Step 6: Z = diag^-1(t_D) T_N.
    im.z = divRows(im.tn, im.td);

    return im;
}

void
TaylorAttention::forwardInto(AttentionContext &ctx, const Matrix &q,
                             const Matrix &k, const Matrix &v,
                             Matrix &out) const
{
    if (q.cols() != k.cols())
        throw std::invalid_argument("taylor: Q/K dim mismatch");
    if (k.rows() != v.rows())
        throw std::invalid_argument("taylor: K/V token mismatch");
    detail::checkForwardInputs(ctx, q, k, v, out, "taylor");

    const size_t n = q.rows();
    const size_t d = q.cols();
    const float sqrt_d = std::sqrt(static_cast<float>(d));

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // Step 1: mean-centering keys (khat references k itself when the
    // ablation skips centering, avoiding the copy).
    const Matrix *khat = &k;
    if (meanCenter_) {
        Matrix &kbar = ws.acquire(1, k.cols());
        colMeanInto(kbar, k);
        Matrix &centered = ws.acquire(k.rows(), k.cols());
        broadcastSubRowInto(centered, k, kbar);
        khat = &centered;
    }

    // Step 2: global context matrix G = Khat^T V, d x d.
    Matrix &g = ws.acquire(d, v.cols());
    matmulATInto(g, *khat, v);

    // Step 3: column sums of centered keys and of values.
    Matrix &ksum = ws.acquire(1, d);
    colSumInto(ksum, *khat);
    Matrix &vsum = ws.acquire(1, v.cols());
    colSumInto(vsum, v);

    // Step 4: Taylor denominator t_D = n sqrt(d) 1_n + Q ksum^T, n x 1,
    // magnitude-floored at kDenomFloor before the division.
    Matrix &td = ws.acquire(n, 1);
    matmulBTInto(td, q, ksum);
    addScalarInto(td, td, static_cast<float>(n) * sqrt_d);
    clampDenominator(td);

    // Step 5: Taylor numerator T_N = sqrt(d) (1_n vsum) + Q G, n x d.
    matmulInto(out, q, g);
    scaleInto(vsum, vsum, sqrt_d);
    broadcastAddRowInto(out, out, vsum);

    // Step 6: Z = diag^-1(t_D) T_N.
    divRowsInto(out, out, td);
}

void
TaylorAttention::weakAttentionMapInto(Matrix &dst, const Matrix &q,
                                      const Matrix &khat, Workspace &ws)
{
    const size_t n = q.rows();
    const size_t d = q.cols();
    const float sqrt_d = std::sqrt(static_cast<float>(d));

    Workspace::Frame frame(ws);

    // Numerator: sqrt(d) 1 1^T + Q Khat^T, n x n.
    matmulBTInto(dst, q, khat);
    addScalarInto(dst, dst, sqrt_d);
    // Denominator: n sqrt(d) 1 + Q khat_sum^T, n x 1.
    Matrix &ksum = ws.acquire(1, d);
    colSumInto(ksum, khat);
    Matrix &denom = ws.acquire(n, 1);
    matmulBTInto(denom, q, ksum);
    addScalarInto(denom, denom, static_cast<float>(n) * sqrt_d);
    clampDenominator(denom);
    divRowsInto(dst, dst, denom);
}

Matrix
TaylorAttention::weakAttentionMap(const Matrix &q, const Matrix &khat)
{
    Workspace ws;
    Matrix out;
    weakAttentionMapInto(out, q, khat, ws);
    return out;
}

OpCounts
TaylorAttention::opCounts(size_t n, size_t d) const
{
    // Costs per Algorithm 1's annotations; matches the denominators of the
    // paper's Eq. (1)-(3).
    OpCounts c;
    c.mul = 2ULL * n * d * d + n * d;       // G, QG (Step 2, 5), Q ksum^T
    c.add = 2ULL * n * d * d + 7ULL * n * d; // accumulations + pre/post adds
    c.div = 1ULL * n * d + d;                // Step 6 rows + Step 1 mean
    c.exp = 0;                               // no exponentiation at all
    return c;
}

std::vector<ProcessorKind>
TaylorAttention::processors() const
{
    return {ProcessorKind::Acc, ProcessorKind::Div, ProcessorKind::Add};
}

} // namespace vitality
