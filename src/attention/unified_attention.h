/**
 * @file
 * The SPARSE baseline (Sanger) and ViTALiTy's training-time unified
 * low-rank + sparse attention (Section III-D, Fig. 4).
 *
 * The unified kernel decouples the (mean-centered) softmax attention into
 *   softmax(Q Khat^T / sqrt(d)) = weak Taylor map (m = 1, low-rank)
 *                                + strong residual (m > 1).
 * During training the strong residual is approximated sparsely: a Sanger
 * predictor selects the strong (query, key) connections, and the
 * residual is built from the Sanger-style masked softmax over exactly
 * those entries (pruned coordinates never enter the denominator — the
 * same renormalization the SPARSE baseline applies, which is what lets
 * the strong branch run in compressed form without ever materializing
 * a pruned coordinate):
 *
 *   S_train = T_weak + M .* (SM(S, M) - T_weak),    Z = S_train V
 *
 * where M is the predicted mask and SM(S, M) the masked softmax of the
 * similarity scores over M's kept entries. With an all-ones M the
 * masked softmax IS the full softmax, so S_train is exactly the softmax
 * attention; with an all-zero M the strong branch vanishes and S_train
 * is exactly the linear Taylor attention — the two ends of the paper's
 * Fig. 15 threshold sweep. At inference ViTALiTy drops the sparse
 * branch entirely and runs only TaylorAttention.
 *
 * Execution: forwardInto() honors VITALITY_SPARSE (sparse/csr.h). The
 * csr mode (default) computes the weak branch in its associative
 * linear O(n d^2) form and the strong branch over the kept coordinates
 * only (O(nnz d)); the dense mode keeps the full n x n reference
 * pipeline. The two agree to float round-off at every density
 * (asserted in ctest), and forward()/forwardDetailed() always run the
 * dense reference.
 */

#ifndef VITALITY_ATTENTION_UNIFIED_ATTENTION_H
#define VITALITY_ATTENTION_UNIFIED_ATTENTION_H

#include "attention/attention.h"
#include "sparse/mask.h"
#include "sparse/predictor.h"

namespace vitality {

/**
 * Sanger-style dynamic sparse attention (the paper's SPARSE method):
 * full-precision scores are computed only for connections the quantized
 * predictor kept, then renormalized by a masked softmax. forwardInto()
 * honors VITALITY_SPARSE: csr mode (the default) touches only the kept
 * coordinates (scores, softmax, and score x V all O(nnz d)); dense mode
 * is the full n x n masked reference.
 */
class SangerSparseAttention : public AttentionKernel
{
  public:
    /**
     * @param threshold Prediction threshold (Sanger's default 0.02).
     * @param bits Predictor precision in bits.
     * @param nominal_density Density assumed by the analytic opCounts()
     * when no measured mask is available.
     */
    explicit SangerSparseAttention(float threshold = 0.02f, int bits = 4,
                                   double nominal_density = 0.25);

    AttentionType type() const override
    {
        return AttentionType::SangerSparse;
    }

    std::string name() const override;

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /** Forward that also returns the mask actually used. */
    Matrix forwardWithMask(const Matrix &q, const Matrix &k,
                           const Matrix &v, SparseMask *mask_out) const;

    OpCounts opCounts(size_t n, size_t d) const override;

    /** Op counts at a measured mask density. */
    OpCounts opCountsWithDensity(size_t n, size_t d, double density) const;

    std::vector<ProcessorKind> processors() const override;

    const SangerPredictor &predictor() const { return predictor_; }

  private:
    SangerPredictor predictor_;
    double nominalDensity_;
};

/** ViTALiTy's unified low-rank + sparse training attention. */
class UnifiedAttention : public AttentionKernel
{
  public:
    /**
     * @param threshold Sparsity threshold T for the strong branch;
     * the paper's optimum is T = 0.5 (Fig. 15).
     * @param bits Predictor precision in bits.
     * @param mean_center Disable only for ablations.
     */
    explicit UnifiedAttention(float threshold = 0.5f, int bits = 4,
                              bool mean_center = true);

    AttentionType type() const override { return AttentionType::Unified; }
    std::string name() const override;

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /** Everything the training loop and the ablations need to observe. */
    struct Detailed
    {
        Matrix z;          ///< Unified attention score, n x d.
        Matrix weakMap;    ///< First-order Taylor map, n x n.
        /** Masked residual M .* (SM(S, M) - T_weak), n x n. */
        Matrix strongPart;
        SparseMask mask;   ///< Predicted strong-connection mask.
        /** Fraction of nonzero entries in the sparse branch (Fig. 14). */
        double sparseBranchDensity = 0.0;
    };

    Detailed forwardDetailed(const Matrix &q, const Matrix &k,
                             const Matrix &v) const;

    /** Taylor counts plus density-scaled strong-branch counts. */
    OpCounts opCountsWithDensity(size_t n, size_t d, double density) const;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    float threshold() const { return predictor_.threshold(); }

  private:
    /**
     * The compressed execution path: linear weak branch + CSR strong
     * branch over already-centered keys. khat must be the centered (or,
     * with mean_center off, raw) key matrix.
     */
    void forwardCsrInto(AttentionContext &ctx, const Matrix &q,
                        const Matrix &khat, const Matrix &v,
                        Matrix &out) const;

    SangerPredictor predictor_;
    bool meanCenter_;
};

} // namespace vitality

#endif // VITALITY_ATTENTION_UNIFIED_ATTENTION_H
