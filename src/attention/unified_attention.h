/**
 * @file
 * The SPARSE baseline (Sanger) and ViTALiTy's training-time unified
 * low-rank + sparse attention (Section III-D, Fig. 4).
 *
 * The unified kernel decouples the (mean-centered) softmax attention into
 *   softmax(Q Khat^T / sqrt(d)) = weak Taylor map (m = 1, low-rank)
 *                                + strong residual (m > 1).
 * During training the strong residual is approximated sparsely: a Sanger
 * predictor selects the strong (query, key) connections, and only those
 * entries of the residual are kept:
 *
 *   S_train = T_weak + M .* (S_full - T_weak),      Z = S_train V
 *
 * where M is the predicted mask. With an all-ones M this is exactly the
 * softmax attention; with an all-zero M it is exactly the linear Taylor
 * attention — the two ends of the paper's Fig. 15 threshold sweep. At
 * inference ViTALiTy drops the sparse branch entirely and runs only
 * TaylorAttention.
 */

#ifndef VITALITY_ATTENTION_UNIFIED_ATTENTION_H
#define VITALITY_ATTENTION_UNIFIED_ATTENTION_H

#include "attention/attention.h"
#include "sparse/mask.h"
#include "sparse/predictor.h"

namespace vitality {

/**
 * Sanger-style dynamic sparse attention (the paper's SPARSE method):
 * full-precision scores are computed only for connections the quantized
 * predictor kept, then renormalized by a masked softmax.
 */
class SangerSparseAttention : public AttentionKernel
{
  public:
    /**
     * @param threshold Prediction threshold (Sanger's default 0.02).
     * @param bits Predictor precision in bits.
     * @param nominal_density Density assumed by the analytic opCounts()
     * when no measured mask is available.
     */
    explicit SangerSparseAttention(float threshold = 0.02f, int bits = 4,
                                   double nominal_density = 0.25);

    AttentionType type() const override
    {
        return AttentionType::SangerSparse;
    }

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /** Forward that also returns the mask actually used. */
    Matrix forwardWithMask(const Matrix &q, const Matrix &k,
                           const Matrix &v, SparseMask *mask_out) const;

    OpCounts opCounts(size_t n, size_t d) const override;

    /** Op counts at a measured mask density. */
    OpCounts opCountsWithDensity(size_t n, size_t d, double density) const;

    std::vector<ProcessorKind> processors() const override;

    const SangerPredictor &predictor() const { return predictor_; }

  private:
    SangerPredictor predictor_;
    double nominalDensity_;
};

/** ViTALiTy's unified low-rank + sparse training attention. */
class UnifiedAttention : public AttentionKernel
{
  public:
    /**
     * @param threshold Sparsity threshold T for the strong branch;
     * the paper's optimum is T = 0.5 (Fig. 15).
     * @param bits Predictor precision in bits.
     * @param mean_center Disable only for ablations.
     */
    explicit UnifiedAttention(float threshold = 0.5f, int bits = 4,
                              bool mean_center = true);

    AttentionType type() const override { return AttentionType::Unified; }
    std::string name() const override;

    Matrix forward(const Matrix &q, const Matrix &k,
                   const Matrix &v) const override;

    void forwardInto(AttentionContext &ctx, const Matrix &q,
                     const Matrix &k, const Matrix &v,
                     Matrix &out) const override;

    /** Everything the training loop and the ablations need to observe. */
    struct Detailed
    {
        Matrix z;          ///< Unified attention score, n x d.
        Matrix weakMap;    ///< First-order Taylor map, n x n.
        Matrix strongPart; ///< Masked residual M .* (S - T_weak), n x n.
        SparseMask mask;   ///< Predicted strong-connection mask.
        /** Fraction of nonzero entries in the sparse branch (Fig. 14). */
        double sparseBranchDensity = 0.0;
    };

    Detailed forwardDetailed(const Matrix &q, const Matrix &k,
                             const Matrix &v) const;

    /** Taylor counts plus density-scaled strong-branch counts. */
    OpCounts opCountsWithDensity(size_t n, size_t d, double density) const;

    OpCounts opCounts(size_t n, size_t d) const override;

    std::vector<ProcessorKind> processors() const override;

    float threshold() const { return predictor_.threshold(); }

  private:
    SangerPredictor predictor_;
    bool meanCenter_;
};

} // namespace vitality

#endif // VITALITY_ATTENTION_UNIFIED_ATTENTION_H
