#include "sparse/mask.h"

#include <cmath>
#include <stdexcept>

#include "base/check.h"
#include "base/logging.h"
#include "sparse/csr.h"
#include "tensor/ops.h"

namespace vitality {

SparseMask::SparseMask(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols, 0)
{
}

SparseMask
SparseMask::fromThreshold(const Matrix &scores, float threshold)
{
    SparseMask mask(scores.rows(), scores.cols());
    mask.assignFromThreshold(scores, threshold);
    return mask;
}

void
SparseMask::assignFromThreshold(const Matrix &scores, float threshold)
{
    // Size without clearing: every bit is overwritten below.
    rows_ = scores.rows();
    cols_ = scores.cols();
    bits_.resize(rows_ * cols_);
    for (size_t r = 0; r < rows_; ++r)
        assignRowFromThreshold(r, scores.rowPtr(r), threshold);
}

void
SparseMask::assignZero(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    bits_.assign(rows * cols, 0);
}

size_t
SparseMask::assignRowFromThreshold(size_t r, const float *probs,
                                   float threshold)
{
    VITALITY_ASSERT(r < rows_, "mask row out of range");
    uint8_t *bits = bits_.data() + r * cols_;
    size_t kept = 0;
    for (size_t c = 0; c < cols_; ++c) {
        const uint8_t keep = probs[c] >= threshold ? 1 : 0;
        bits[c] = keep;
        kept += keep;
    }
    return kept;
}

SparseMask
SparseMask::dense(size_t rows, size_t cols)
{
    SparseMask mask(rows, cols);
    for (auto &b : mask.bits_)
        b = 1;
    return mask;
}

bool
SparseMask::at(size_t r, size_t c) const
{
    VITALITY_ASSERT(r < rows_ && c < cols_, "mask index out of range");
    return bits_[r * cols_ + c] != 0;
}

void
SparseMask::set(size_t r, size_t c, bool keep)
{
    VITALITY_ASSERT(r < rows_ && c < cols_, "mask index out of range");
    bits_[r * cols_ + c] = keep ? 1 : 0;
}

size_t
SparseMask::nnz() const
{
    size_t count = 0;
    for (auto b : bits_)
        count += b;
    return count;
}

size_t
SparseMask::rescueEmptyRows(const Matrix &scores)
{
    if (scores.rows() != rows_ || scores.cols() != cols_)
        throw std::invalid_argument("rescueEmptyRows: shape mismatch");
    size_t rescued = 0;
    for (size_t r = 0; r < rows_; ++r) {
        if (cols_ > 0 && rowNnz(r) == 0) {
            set(r, argmaxRow(scores, r), true);
            ++rescued;
        }
    }
#if VITALITY_CHECKED
    // The Sanger every-query-attends-somewhere guarantee this method
    // exists to provide.
    for (size_t r = 0; r < rows_; ++r)
        VITALITY_DCHECK(cols_ == 0 || rowNnz(r) > 0,
                        "rescueEmptyRows left row %zu empty", r);
#endif
    return rescued;
}

size_t
SparseMask::rowNnz(size_t r) const
{
    VITALITY_ASSERT(r < rows_, "mask row out of range");
    size_t count = 0;
    for (size_t c = 0; c < cols_; ++c)
        count += bits_[r * cols_ + c];
    return count;
}

double
SparseMask::density() const
{
    if (bits_.empty())
        return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(bits_.size());
}

Matrix
SparseMask::toMatrix() const
{
    Matrix m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m(r, c) = at(r, c) ? 1.0f : 0.0f;
    return m;
}

SparseMask
SparseMask::operator&(const SparseMask &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("mask AND: shape mismatch");
    SparseMask out(rows_, cols_);
    for (size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
}

bool
SparseMask::operator==(const SparseMask &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_;
}

void
maskedSoftmaxRowsInto(Matrix &dst, const Matrix &scores,
                      const SparseMask &mask)
{
    if (scores.rows() != mask.rows() || scores.cols() != mask.cols())
        throw std::invalid_argument("maskedSoftmax: shape mismatch");

    // One softmax-over-kept-entries implementation for the whole
    // library: gather the kept coordinates into CSR form, run the CSR
    // row softmax, scatter back over a zeroed dense output. The gather
    // walks each row's kept columns in ascending order — the same
    // max / exp / accumulate / normalize sequence the old dense loop
    // applied — so the dense result is unchanged bitwise. The scratch
    // is thread-local and recycled, keeping the hot paths
    // allocation-free in steady state (and callers may alias dst onto
    // scores: the gather completes before dst is written).
    static thread_local CsrMask t_csr;
    static thread_local Matrix t_vals;
    t_csr.assignFromMask(mask);
    const uint32_t *rp = t_csr.rowPtr();
    const uint32_t *ci = t_csr.colIdx();
    t_vals.resize(1, t_csr.nnz());
    float *vals = t_vals.data();
    for (size_t r = 0; r < scores.rows(); ++r) {
        const float *in = scores.rowPtr(r);
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx)
            vals[idx] = in[ci[idx]];
    }
    maskedSoftmaxCsrInto(t_vals, t_csr);

    dst.resize(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        float *out = dst.rowPtr(r);
        for (size_t c = 0; c < scores.cols(); ++c)
            out[c] = 0.0f;
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx)
            out[ci[idx]] = vals[idx];
    }
}

Matrix
maskedSoftmaxRows(const Matrix &scores, const SparseMask &mask)
{
    Matrix out;
    maskedSoftmaxRowsInto(out, scores, mask);
    return out;
}

void
applyMaskInto(Matrix &dst, const Matrix &values, const SparseMask &mask)
{
    if (values.rows() != mask.rows() || values.cols() != mask.cols())
        throw std::invalid_argument("applyMask: shape mismatch");
    dst.resize(values.rows(), values.cols());
    for (size_t r = 0; r < values.rows(); ++r) {
        const float *in = values.rowPtr(r);
        float *out = dst.rowPtr(r);
        for (size_t c = 0; c < values.cols(); ++c)
            out[c] = mask.at(r, c) ? in[c] : 0.0f;
    }
}

Matrix
applyMask(const Matrix &values, const SparseMask &mask)
{
    Matrix out;
    applyMaskInto(out, values, mask);
    return out;
}

} // namespace vitality
