#include "sparse/mask.h"

#include <cmath>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

SparseMask::SparseMask(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols, 0)
{
}

SparseMask
SparseMask::fromThreshold(const Matrix &scores, float threshold)
{
    SparseMask mask(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r)
        for (size_t c = 0; c < scores.cols(); ++c)
            mask.set(r, c, scores(r, c) >= threshold);
    return mask;
}

SparseMask
SparseMask::dense(size_t rows, size_t cols)
{
    SparseMask mask(rows, cols);
    for (auto &b : mask.bits_)
        b = 1;
    return mask;
}

bool
SparseMask::at(size_t r, size_t c) const
{
    VITALITY_ASSERT(r < rows_ && c < cols_, "mask index out of range");
    return bits_[r * cols_ + c] != 0;
}

void
SparseMask::set(size_t r, size_t c, bool keep)
{
    VITALITY_ASSERT(r < rows_ && c < cols_, "mask index out of range");
    bits_[r * cols_ + c] = keep ? 1 : 0;
}

size_t
SparseMask::nnz() const
{
    size_t count = 0;
    for (auto b : bits_)
        count += b;
    return count;
}

size_t
SparseMask::rowNnz(size_t r) const
{
    VITALITY_ASSERT(r < rows_, "mask row out of range");
    size_t count = 0;
    for (size_t c = 0; c < cols_; ++c)
        count += bits_[r * cols_ + c];
    return count;
}

double
SparseMask::density() const
{
    if (bits_.empty())
        return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(bits_.size());
}

Matrix
SparseMask::toMatrix() const
{
    Matrix m(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            m(r, c) = at(r, c) ? 1.0f : 0.0f;
    return m;
}

SparseMask
SparseMask::operator&(const SparseMask &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("mask AND: shape mismatch");
    SparseMask out(rows_, cols_);
    for (size_t i = 0; i < bits_.size(); ++i)
        out.bits_[i] = bits_[i] & other.bits_[i];
    return out;
}

bool
SparseMask::operator==(const SparseMask &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_;
}

Matrix
maskedSoftmaxRows(const Matrix &scores, const SparseMask &mask)
{
    if (scores.rows() != mask.rows() || scores.cols() != mask.cols())
        throw std::invalid_argument("maskedSoftmax: shape mismatch");

    Matrix out(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        // Max over kept entries for numerical stability.
        float maxv = -INFINITY;
        for (size_t c = 0; c < scores.cols(); ++c) {
            if (mask.at(r, c))
                maxv = std::max(maxv, scores(r, c));
        }
        if (maxv == -INFINITY)
            continue; // fully pruned row stays zero
        float denom = 0.0f;
        for (size_t c = 0; c < scores.cols(); ++c) {
            if (mask.at(r, c)) {
                out(r, c) = std::exp(scores(r, c) - maxv);
                denom += out(r, c);
            }
        }
        const float inv = 1.0f / denom;
        for (size_t c = 0; c < scores.cols(); ++c)
            out(r, c) *= inv;
    }
    return out;
}

Matrix
applyMask(const Matrix &values, const SparseMask &mask)
{
    if (values.rows() != mask.rows() || values.cols() != mask.cols())
        throw std::invalid_argument("applyMask: shape mismatch");
    Matrix out(values.rows(), values.cols());
    for (size_t r = 0; r < values.rows(); ++r)
        for (size_t c = 0; c < values.cols(); ++c)
            out(r, c) = mask.at(r, c) ? values(r, c) : 0.0f;
    return out;
}

} // namespace vitality
