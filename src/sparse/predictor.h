/**
 * @file
 * Sanger-style sparsity prediction from quantized queries and keys.
 *
 * Sanger (Lu et al., MICRO'21) predicts which attention entries matter by
 * computing a low-precision estimate of the softmax attention map and
 * thresholding it. ViTALiTy reuses exactly this predictor to build the
 * sparse ("strong") branch during training (Section III-D), with the keys
 * already mean-centered.
 */

#ifndef VITALITY_SPARSE_PREDICTOR_H
#define VITALITY_SPARSE_PREDICTOR_H

#include "sparse/mask.h"
#include "tensor/matrix.h"
#include "tensor/workspace.h"

namespace vitality {

class CsrMask;

/**
 * Symmetric linear quantization of a matrix to the given bit width.
 * Values are mapped onto 2^(bits-1) - 1 signed levels scaled by the
 * matrix's max magnitude (rounding to the nearest level, ties to
 * even), then dequantized back to float, mimicking the low-precision
 * prediction path of the Sanger front-end.
 */
Matrix quantizeSymmetric(const Matrix &m, int bits);

/** Allocation-free quantizeSymmetric; dst may alias m. */
void quantizeSymmetricInto(Matrix &dst, const Matrix &m, int bits);

/** Threshold-based sparsity predictor over quantized Q / K. */
class SangerPredictor
{
  public:
    /**
     * @param threshold Entries of the predicted softmax map below this are
     * pruned. Sanger's default is 0.02; ViTALiTy trains with 0.5.
     * @param bits Prediction precision (Sanger uses 4-bit).
     */
    explicit SangerPredictor(float threshold, int bits = 4);

    /**
     * Predict the keep-mask for one head.
     * Computes softmax(quant(Q) quant(K)^T / sqrt(d)) and keeps entries
     * >= threshold. The softmax is the low-precision
     * softmaxRowsApproxInto (tensor/ops.h) — the estimate feeds only a
     * threshold compare / argmax and Sanger hardware runs the whole
     * prediction in 4 bits, so the ~4e-6-relative exp approximation is
     * far inside the quantization noise; every predictor entry point
     * shares it, so all execution paths derive the identical mask.
     */
    SparseMask predict(const Matrix &q, const Matrix &k) const;

    /** The quantized predicted attention map itself (for tests/benches). */
    Matrix predictedMap(const Matrix &q, const Matrix &k) const;

    /**
     * Allocation-free prediction path: scratch comes from ws, the mask is
     * resized in place. predictedMapInto writes the quantized map to dst
     * (which must not be a matrix checked out of ws after this call's
     * frame opens; a caller-held slot or plain Matrix is fine).
     */
    void predictedMapInto(Matrix &dst, const Matrix &q, const Matrix &k,
                          Workspace &ws) const;

    /**
     * Allocation-free predict(): mask is recycled, scratch from ws.
     *
     * The threshold compare is fused into the approximate-softmax
     * pass: each similarity row is normalized into an O(n) row buffer
     * and thresholded on the spot, so the n^2 predicted map is never
     * materialized — only predictedMapInto (tests/benches) still
     * builds it. The per-row program is the exact scalar program of
     * softmaxRowsApproxInto, which is bitwise-identical across
     * backends, so the fused mask equals
     * fromThreshold(predictedMap(q, k), threshold()) on every path.
     *
     * With rescue_empty_rows, a row that kept nothing gets its argmax
     * probability entry instead (first maximum wins) — equivalent to
     * SparseMask::rescueEmptyRows over the predicted map.
     */
    void predictInto(SparseMask &mask, const Matrix &q, const Matrix &k,
                     Workspace &ws, bool rescue_empty_rows = false) const;

    /**
     * The CSR twin of predictInto: builds the compressed kept-set
     * row by row with the same fused threshold pass (equivalent to
     * CsrMask::assignFromThreshold over the predicted map, with the
     * same rescue semantics), never materializing the n^2 map.
     */
    void predictCsrInto(CsrMask &csr, const Matrix &q, const Matrix &k,
                        Workspace &ws,
                        bool rescue_empty_rows = false) const;

    float threshold() const { return threshold_; }
    int bits() const { return bits_; }

  private:
    float threshold_;
    int bits_;
};

} // namespace vitality

#endif // VITALITY_SPARSE_PREDICTOR_H
