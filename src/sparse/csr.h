/**
 * @file
 * Compressed sparse execution for the strong (sparse) attention branch.
 *
 * The dense-masked pipeline (similarity GEMM, masked softmax, dense
 * score x V GEMM) touches every (query, key) pair whether the mask kept
 * it or not, so "sparse" saves nothing: the SPARSE baseline and the
 * unified training kernel paid full O(n^2 d) at every density. A
 * CsrMask stores only the kept coordinates in row-pointer + column-index
 * form, and the three kernels below do the whole strong branch over
 * exactly those coordinates:
 *
 *   sparseScoresInto      q . k^T at kept coordinates   O(nnz d)
 *   maskedSoftmaxCsrInto  row softmax over nnz entries  O(nnz)
 *   spmmInto              CSR score x dense V           O(nnz d)
 *
 * which is how Sanger (and the paper's Fig. 14 density accounting) get
 * their speedup: cost scales with the measured mask density instead of
 * the full n^2.
 *
 * The VITALITY_SPARSE environment variable ("csr", the default, or
 * "dense") selects which execution path the sparse-branch kernels
 * (SangerSparseAttention, UnifiedAttention) run; the dense-masked path
 * stays compiled as the parity and regression reference, and ctest
 * asserts the two agree at every swept density.
 *
 * Index width is uint32_t: token counts are a few hundred (DeiT runs
 * n = 197), and 32-bit indices halve the memory traffic of the gather
 * loops. Both index vectors recycle their storage across assigns, so a
 * CsrMask held by an AttentionContext allocates nothing in steady
 * state; the nnz-sized value buffers live in the context's Workspace.
 */

#ifndef VITALITY_SPARSE_CSR_H
#define VITALITY_SPARSE_CSR_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sparse/mask.h"
#include "tensor/matrix.h"

namespace vitality {

/** Which execution path the sparse-branch attention kernels run. */
enum class SparseExec
{
    Dense, ///< Dense-masked reference: full n x n scores, masked softmax.
    Csr,   ///< Compressed path: kept coordinates only, O(nnz d).
};

/**
 * The active mode: VITALITY_SPARSE ("dense" or "csr", default csr),
 * resolved once, lazily — same contract as Gemm::epilogueMode().
 */
SparseExec sparseExecMode();

/** Force the mode (test/bench hook). */
void setSparseExecMode(SparseExec mode);

/** "dense" or "csr", for bench/trajectory reporting. */
const char *sparseExecName(SparseExec mode);

/** Parse a VITALITY_SPARSE value; nullopt on unrecognized text. */
std::optional<SparseExec> parseSparseExec(const std::string &name);

/**
 * A kept-coordinate set in compressed sparse row form. Column indices
 * within a row are stored in ascending order, so iteration order
 * matches the dense-masked loops coordinate for coordinate.
 */
class CsrMask
{
  public:
    /** Empty 0 x 0 structure. */
    CsrMask() = default;

    /** Rebuild from a dense bitmap, recycling the index storage. */
    void assignFromMask(const SparseMask &mask);

    /**
     * Rebuild directly from a threshold over scores (>= keeps), without
     * materializing a dense SparseMask — the CSR twin of
     * SparseMask::assignFromThreshold. With rescue_empty_rows, a row
     * that kept nothing gets its argmax column instead (the Sanger
     * every-query-attends-somewhere guarantee; equivalent to
     * SparseMask::rescueEmptyRows on the same scores).
     */
    void assignFromThreshold(const Matrix &scores, float threshold,
                             bool rescue_empty_rows = false);

    /**
     * Start a row-at-a-time rebuild (recycling the index storage):
     * beginAssign fixes the shape, then exactly rows() calls of
     * appendRowFromThreshold supply the rows in order. Equivalent to
     * assignFromThreshold over the same row data; used by the fused
     * predictor pass (sparse/predictor.h), which never materializes
     * the full score matrix.
     */
    void beginAssign(size_t rows, size_t cols);

    /**
     * Append the next row from a threshold over row[0 .. cols()) (>=
     * keeps). With rescue_empty_row, a row that kept nothing gets its
     * argmax entry instead (first maximum wins, as
     * SparseMask::rescueEmptyRows). Returns the kept count.
     */
    size_t appendRowFromThreshold(const float *row, float threshold,
                                  bool rescue_empty_row = false);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Kept coordinates in total / in row r. */
    size_t nnz() const { return colIdx_.size(); }
    size_t rowNnz(size_t r) const;

    /** nnz / (rows * cols). */
    double density() const;

    /**
     * Row extents: row r's column indices are
     * colIdx()[rowPtr()[r] .. rowPtr()[r + 1]). rowPtr() has rows()+1
     * entries (empty structure: none).
     */
    const uint32_t *rowPtr() const { return rowPtr_.data(); }
    const uint32_t *colIdx() const { return colIdx_.data(); }

    /** Render back to a dense bitmap (tests, pack-and-split parity). */
    SparseMask toMask() const;

    bool operator==(const CsrMask &other) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint32_t> rowPtr_;
    std::vector<uint32_t> colIdx_;
};

/**
 * vals[idx] = scale * (q row r . k row c) for every kept coordinate
 * (r, c), with idx walking the CSR order. The 1/sqrt(d) similarity
 * scale is fused into the store; each dot accumulates over the head
 * dimension in ascending order, matching the per-element order of the
 * dense similarity GEMM. vals is resized to 1 x nnz (recycling its
 * storage, so a Workspace slot works).
 */
void sparseScoresInto(Matrix &vals, const CsrMask &csr, const Matrix &q,
                      const Matrix &k, float scale);

/**
 * Row-wise softmax over the kept entries only, in place over the CSR
 * value array: pruned coordinates contribute nothing to the max or the
 * denominator, and rows with no kept entry have no values to touch —
 * the CSR twin of maskedSoftmaxRowsInto, which it matches bitwise at
 * the kept coordinates (same max / exp / normalize order).
 */
void maskedSoftmaxCsrInto(Matrix &vals, const CsrMask &csr);

/**
 * dst = (CSR matrix) * v, or dst += with accumulate — the strong
 * branch's score x V product over kept coordinates only. dst is
 * resized to rows x v.cols() (with accumulate it must already have
 * that shape; contents are read, not discarded). Each output row
 * accumulates its kept terms in ascending column order. dst must not
 * alias vals or v.
 */
void spmmInto(Matrix &dst, const CsrMask &csr, const Matrix &vals,
              const Matrix &v, bool accumulate = false);

} // namespace vitality

#endif // VITALITY_SPARSE_CSR_H
