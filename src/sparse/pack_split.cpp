#include "sparse/pack_split.h"

#include <algorithm>
#include <stdexcept>

namespace vitality {

double
PackSplitResult::utilization() const
{
    if (packedRows.empty() || peWidth == 0)
        return 0.0;
    return static_cast<double>(nnz) /
           (static_cast<double>(packedRows.size()) *
            static_cast<double>(peWidth));
}

namespace {

/**
 * The shared split + pack core: rowNnz[r] kept entries per source row,
 * scheduled onto a PE array of the given width. Both mask
 * representations reduce to this row-occupancy vector, so the dense and
 * CSR entry points produce identical schedules by construction.
 */
PackSplitResult
scheduleRows(const std::vector<size_t> &rowNnz, size_t pe_width)
{
    if (pe_width == 0)
        throw std::invalid_argument("packAndSplit: pe_width must be > 0");

    PackSplitResult result;
    result.peWidth = pe_width;

    // Split phase: cut each source row into sub-rows of <= pe_width kept
    // entries.
    struct SubRow
    {
        size_t sourceRow;
        size_t entries;
    };
    std::vector<SubRow> subRows;
    for (size_t r = 0; r < rowNnz.size(); ++r) {
        size_t remaining = rowNnz[r];
        result.nnz += remaining;
        while (remaining > 0) {
            const size_t take = std::min(remaining, pe_width);
            subRows.push_back({r, take});
            remaining -= take;
        }
    }
    result.numSubRows = subRows.size();

    // Pack phase: first-fit-decreasing bin packing into rows of capacity
    // pe_width. Full sub-rows (== pe_width) each claim a row outright; the
    // remainder mix and match.
    std::sort(subRows.begin(), subRows.end(),
              [](const SubRow &a, const SubRow &b) {
                  return a.entries > b.entries;
              });

    for (const SubRow &sub : subRows) {
        bool placed = false;
        for (PackedRow &row : result.packedRows) {
            if (row.occupancy + sub.entries <= pe_width) {
                row.segments.emplace_back(sub.sourceRow, sub.entries);
                row.occupancy += sub.entries;
                placed = true;
                break;
            }
        }
        if (!placed) {
            PackedRow row;
            row.segments.emplace_back(sub.sourceRow, sub.entries);
            row.occupancy = sub.entries;
            result.packedRows.push_back(std::move(row));
        }
    }

    return result;
}

} // namespace

PackSplitResult
packAndSplit(const SparseMask &mask, size_t pe_width)
{
    std::vector<size_t> rowNnz(mask.rows());
    for (size_t r = 0; r < mask.rows(); ++r)
        rowNnz[r] = mask.rowNnz(r);
    return scheduleRows(rowNnz, pe_width);
}

PackSplitResult
packAndSplit(const CsrMask &csr, size_t pe_width)
{
    std::vector<size_t> rowNnz(csr.rows());
    for (size_t r = 0; r < csr.rows(); ++r)
        rowNnz[r] = csr.rowNnz(r);
    return scheduleRows(rowNnz, pe_width);
}

} // namespace vitality
