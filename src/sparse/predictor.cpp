#include "sparse/predictor.h"

#include <cmath>
#include <stdexcept>

#include "attention/softmax_attention.h"
#include "tensor/ops.h"

namespace vitality {

void
quantizeSymmetricInto(Matrix &dst, const Matrix &m, int bits)
{
    if (bits < 2 || bits > 16)
        throw std::invalid_argument("quantizeSymmetric: bits must be 2..16");
    const float max_mag = maxAbs(m);
    if (max_mag == 0.0f) {
        if (&dst != &m)
            dst.copyFrom(m);
        return;
    }
    const float levels = static_cast<float>((1 << (bits - 1)) - 1);
    const float step = max_mag / levels;
    mapElemInto(dst, m, [step](float x) {
        return std::round(x / step) * step;
    });
}

Matrix
quantizeSymmetric(const Matrix &m, int bits)
{
    Matrix out;
    quantizeSymmetricInto(out, m, bits);
    return out;
}

SangerPredictor::SangerPredictor(float threshold, int bits)
    : threshold_(threshold), bits_(bits)
{
    if (threshold < 0.0f || threshold > 1.0f)
        throw std::invalid_argument("SangerPredictor: threshold in [0,1]");
}

Matrix
SangerPredictor::predictedMap(const Matrix &q, const Matrix &k) const
{
    const Matrix qq = quantizeSymmetric(q, bits_);
    const Matrix qk = quantizeSymmetric(k, bits_);
    return SoftmaxAttention::attentionMap(qq, qk);
}

SparseMask
SangerPredictor::predict(const Matrix &q, const Matrix &k) const
{
    return SparseMask::fromThreshold(predictedMap(q, k), threshold_);
}

void
SangerPredictor::predictedMapInto(Matrix &dst, const Matrix &q,
                                  const Matrix &k, Workspace &ws) const
{
    Workspace::Frame frame(ws);
    Matrix &qq = ws.acquire(q.rows(), q.cols());
    quantizeSymmetricInto(qq, q, bits_);
    Matrix &qk = ws.acquire(k.rows(), k.cols());
    quantizeSymmetricInto(qk, k, bits_);
    SoftmaxAttention::similarityInto(dst, qq, qk);
    softmaxRowsInto(dst, dst);
}

void
SangerPredictor::predictInto(SparseMask &mask, const Matrix &q,
                             const Matrix &k, Workspace &ws) const
{
    Workspace::Frame frame(ws);
    Matrix &map = ws.acquire(q.rows(), k.rows());
    predictedMapInto(map, q, k, ws);
    mask.assignFromThreshold(map, threshold_);
}

} // namespace vitality
