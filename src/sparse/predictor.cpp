#include "sparse/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/check.h"

#include "attention/softmax_attention.h"
#include "sparse/csr.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/transcendental.h"

namespace vitality {

namespace detail {

#if VITALITY_HAVE_AVX2
// Defined in gemm_avx2.cpp; only called when the Gemm dispatcher's
// CPUID-checked AVX2 backend is active. Runs the identical per-element
// program 8 lanes at a time (bitwise-equal to the scalar loop below,
// so the quantized prediction — and therefore the mask — cannot
// depend on the backend).
void quantizeRowAvx2(float *dst, const float *src, size_t count,
                     float inv_step, float step);
#endif

} // namespace detail

void
quantizeSymmetricInto(Matrix &dst, const Matrix &m, int bits)
{
    if (bits < 2 || bits > 16)
        throw std::invalid_argument("quantizeSymmetric: bits must be 2..16");
    const float max_mag = maxAbs(m);
    if (max_mag == 0.0f) {
        if (&dst != &m)
            dst.copyFrom(m);
        return;
    }
    const float levels = static_cast<float>((1 << (bits - 1)) - 1);
    const float step = max_mag / levels;
    // Branch-free direct loop (this runs over every Q/K element of
    // every sparse-branch forward; the old per-element std::function
    // callback was the single most expensive part of the prediction
    // pass). The level index is x * (1 / step) — a multiply, where a
    // per-element divide kept the loop division-bound — rounded with
    // the 1.5 * 2^23 magic-number trick: nearest-even at exact
    // half-steps, where std::round went away from zero;
    // |x / step| <= levels < 2^15 keeps the trick exact.
    dst.resize(m.rows(), m.cols());
    const float inv_step = 1.0f / step;
    const float *src = m.data();
    float *out = dst.data();
    const size_t count = m.size();
#if VITALITY_HAVE_AVX2
    if (Gemm::active() == Gemm::Backend::Avx2) {
        detail::quantizeRowAvx2(out, src, count, inv_step, step);
        return;
    }
#endif
    for (size_t i = 0; i < count; ++i) {
        const float q = (src[i] * inv_step + detail::kRoundMagic) -
                        detail::kRoundMagic;
        out[i] = q * step;
    }
}

Matrix
quantizeSymmetric(const Matrix &m, int bits)
{
    Matrix out;
    quantizeSymmetricInto(out, m, bits);
    return out;
}

SangerPredictor::SangerPredictor(float threshold, int bits)
    : threshold_(threshold), bits_(bits)
{
    if (threshold < 0.0f || threshold > 1.0f)
        throw std::invalid_argument("SangerPredictor: threshold in [0,1]");
}

Matrix
SangerPredictor::predictedMap(const Matrix &q, const Matrix &k) const
{
    const Matrix qq = quantizeSymmetric(q, bits_);
    const Matrix qk = quantizeSymmetric(k, bits_);
    // The low-precision softmax (expApprox): the prediction estimate
    // only feeds a threshold compare and an argmax, Sanger hardware
    // runs this whole pass in 4 bits, and the exact n^2 exp was the
    // single largest cost left in the sparse kernels. Every predictor
    // entry point uses the same function, so the mask is identical
    // across forward(), forwardInto(), and both execution modes.
    Matrix s = SoftmaxAttention::similarity(qq, qk);
    softmaxRowsApproxInto(s, s);
    return s;
}

SparseMask
SangerPredictor::predict(const Matrix &q, const Matrix &k) const
{
    return SparseMask::fromThreshold(predictedMap(q, k), threshold_);
}

namespace {

/**
 * One row of the approximate softmax into an O(n) buffer: the exact
 * scalar row program of softmaxRowsApproxInto (tensor/ops.cpp) — max,
 * exp2CoreScalar((x - max) * log2 e) in index order, denominator in
 * index order, multiply by the reciprocal. The AVX2 row kernel that
 * softmaxRowsApproxInto may dispatch to is bitwise-identical to this
 * program, so masks derived from this buffer match masks derived from
 * the materialized map on every backend.
 */
void
softmaxApproxRow(float *out, const float *in, size_t n)
{
    float maxv = in[0];
    for (size_t c = 1; c < n; ++c)
        maxv = std::max(maxv, in[c]);
    for (size_t c = 0; c < n; ++c)
        out[c] = detail::exp2CoreScalar((in[c] - maxv) * detail::kLog2e);
    float denom = 0.0f;
    for (size_t c = 0; c < n; ++c)
        denom += out[c];
    const float inv = 1.0f / denom;
    for (size_t c = 0; c < n; ++c)
        out[c] *= inv;
}

/** First maximum wins, matching argmaxRow (tensor/ops.h). */
size_t
argmaxRowPtr(const float *row, size_t n)
{
    size_t best = 0;
    for (size_t c = 1; c < n; ++c) {
        if (row[c] > row[best])
            best = c;
    }
    return best;
}

} // namespace

void
SangerPredictor::predictedMapInto(Matrix &dst, const Matrix &q,
                                  const Matrix &k, Workspace &ws) const
{
    Workspace::Frame frame(ws);
    Matrix &qq = ws.acquire(q.rows(), q.cols());
    quantizeSymmetricInto(qq, q, bits_);
    Matrix &qk = ws.acquire(k.rows(), k.cols());
    quantizeSymmetricInto(qk, k, bits_);
    SoftmaxAttention::similarityInto(dst, qq, qk);
    softmaxRowsApproxInto(dst, dst);
}

// Both fused prediction paths below share this shape: the quantized
// similarity scores are still one n x n GEMM (that is where the
// prediction's arithmetic lives, and Sanger's hardware runs it dense in
// low precision), but the softmax + threshold walk each score row once
// through an O(n) probability buffer — the normalized n^2 map the
// legacy path wrote out and re-read is never materialized.

void
SangerPredictor::predictInto(SparseMask &mask, const Matrix &q,
                             const Matrix &k, Workspace &ws,
                             bool rescue_empty_rows) const
{
    // A NaN would compare false against every threshold and silently
    // prune the whole row; catch it where the prediction starts.
    VITALITY_DCHECK(check::allFinite(q.data(), q.size()) &&
                        check::allFinite(k.data(), k.size()),
                    "predictInto: non-finite Q/K");
    Workspace::Frame frame(ws);
    Matrix &scores = ws.acquire(q.rows(), k.rows());
    {
        Workspace::Frame inner(ws);
        Matrix &qq = ws.acquire(q.rows(), q.cols());
        quantizeSymmetricInto(qq, q, bits_);
        Matrix &qk = ws.acquire(k.rows(), k.cols());
        quantizeSymmetricInto(qk, k, bits_);
        SoftmaxAttention::similarityInto(scores, qq, qk);
    }
    const size_t n = scores.cols();
    mask.assignZero(scores.rows(), n);
    if (n == 0)
        return;
    Matrix &prow = ws.acquire(1, n);
    float *p = prow.data();
    for (size_t r = 0; r < scores.rows(); ++r) {
        softmaxApproxRow(p, scores.rowPtr(r), n);
        const size_t kept = mask.assignRowFromThreshold(r, p, threshold_);
        if (rescue_empty_rows && kept == 0)
            mask.set(r, argmaxRowPtr(p, n), true);
    }
}

void
SangerPredictor::predictCsrInto(CsrMask &csr, const Matrix &q,
                                const Matrix &k, Workspace &ws,
                                bool rescue_empty_rows) const
{
    VITALITY_DCHECK(check::allFinite(q.data(), q.size()) &&
                        check::allFinite(k.data(), k.size()),
                    "predictCsrInto: non-finite Q/K");
    Workspace::Frame frame(ws);
    Matrix &scores = ws.acquire(q.rows(), k.rows());
    {
        Workspace::Frame inner(ws);
        Matrix &qq = ws.acquire(q.rows(), q.cols());
        quantizeSymmetricInto(qq, q, bits_);
        Matrix &qk = ws.acquire(k.rows(), k.cols());
        quantizeSymmetricInto(qk, k, bits_);
        SoftmaxAttention::similarityInto(scores, qq, qk);
    }
    const size_t n = scores.cols();
    csr.beginAssign(scores.rows(), n);
    if (n == 0) {
        for (size_t r = 0; r < scores.rows(); ++r)
            csr.appendRowFromThreshold(nullptr, threshold_, false);
        return;
    }
    Matrix &prow = ws.acquire(1, n);
    float *p = prow.data();
    for (size_t r = 0; r < scores.rows(); ++r) {
        softmaxApproxRow(p, scores.rowPtr(r), n);
        csr.appendRowFromThreshold(p, threshold_, rescue_empty_rows);
    }
}

} // namespace vitality
