/**
 * @file
 * Binary attention masks and masked-softmax helpers.
 *
 * A SparseMask marks which (query, key) connections survive Sanger-style
 * threshold pruning. It backs both the SPARSE baseline kernel and the
 * sparse branch of ViTALiTy's unified training attention, and feeds the
 * pack-and-split scheduler of the Sanger accelerator model.
 */

#ifndef VITALITY_SPARSE_MASK_H
#define VITALITY_SPARSE_MASK_H

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace vitality {

/** A dense bitmap of kept attention connections. */
class SparseMask
{
  public:
    /** All-zero (fully pruned) mask of the given shape. */
    SparseMask(size_t rows, size_t cols);

    /** Keep entries of scores that are >= threshold. */
    static SparseMask fromThreshold(const Matrix &scores, float threshold);

    /** All-ones (dense) mask. */
    static SparseMask dense(size_t rows, size_t cols);

    /**
     * Resize (recycling the bit storage) and refill from a threshold
     * over scores (>= keeps). Backs the cached mask inside
     * AttentionContext so repeated sparse forwards never reallocate.
     */
    void assignFromThreshold(const Matrix &scores, float threshold);

    /**
     * Resize (recycling the bit storage) to an all-zero mask. Pairs
     * with assignRowFromThreshold for callers that build the mask one
     * row at a time (the fused predictor pass, sparse/predictor.h).
     */
    void assignZero(size_t rows, size_t cols);

    /**
     * Overwrite row r from a threshold over probs[0 .. cols()) (>=
     * keeps; same predicate as assignFromThreshold). Returns the
     * number of kept entries in the row.
     */
    size_t assignRowFromThreshold(size_t r, const float *probs,
                                  float threshold);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    bool at(size_t r, size_t c) const;
    void set(size_t r, size_t c, bool keep);

    /** Number of kept connections. */
    size_t nnz() const;

    /** Kept connections in row r. */
    size_t rowNnz(size_t r) const;

    /**
     * Keep every query alive: a row with no kept entry gets its argmax
     * column of scores set instead (Sanger's guarantee that at least
     * the top predicted connection per query survives, otherwise that
     * query would attend to nothing and output zero). Returns the
     * number of rows rescued. Shared by every Sanger-style path —
     * forward(), forwardInto(), and the CSR builder's rescue flag all
     * produce the same mask by construction.
     */
    size_t rescueEmptyRows(const Matrix &scores);

    /** nnz / (rows * cols). */
    double density() const;

    /** 1 - density. */
    double sparsity() const { return 1.0 - density(); }

    /** Render as a 0/1 matrix. */
    Matrix toMatrix() const;

    /** Element-wise AND. */
    SparseMask operator&(const SparseMask &other) const;

    bool operator==(const SparseMask &other) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<uint8_t> bits_;
};

/**
 * Row-wise softmax restricted to kept entries: pruned entries contribute
 * nothing to the denominator and are zero in the output. Rows with no kept
 * entry are all-zero.
 */
Matrix maskedSoftmaxRows(const Matrix &scores, const SparseMask &mask);

/** Allocation-free maskedSoftmaxRows; dst may alias scores. */
void maskedSoftmaxRowsInto(Matrix &dst, const Matrix &scores,
                           const SparseMask &mask);

/** Zero out pruned entries of a dense matrix. */
Matrix applyMask(const Matrix &values, const SparseMask &mask);

/** Allocation-free applyMask; dst may alias values. */
void applyMaskInto(Matrix &dst, const Matrix &values,
                   const SparseMask &mask);

} // namespace vitality

#endif // VITALITY_SPARSE_MASK_H
