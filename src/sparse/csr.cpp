#include "sparse/csr.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "base/check.h"
#include "base/logging.h"
#include "tensor/ops.h"

namespace vitality {

namespace {

// -1 = unresolved; otherwise a SparseExec value (VITALITY_SPARSE,
// default csr). Lazy like Gemm's mode knobs so the env override applies
// no matter when the first sparse forward happens.
std::atomic<int> g_sparseExec{-1};

#if VITALITY_CHECKED
// O(nnz) structure walk for the kernel DCHECKs: row pointers start at
// 0, end at nnz, never decrease; column indices are in-bounds and
// strictly ascending within a row (the iteration-order contract the
// dense parity proofs rest on).
bool
csrWellFormed(const CsrMask &csr)
{
    const uint32_t *rp = csr.rowPtr();
    const uint32_t *ci = csr.colIdx();
    if (rp[0] != 0 || rp[csr.rows()] != csr.nnz())
        return false;
    for (size_t r = 0; r < csr.rows(); ++r) {
        if (rp[r + 1] < rp[r])
            return false;
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx) {
            if (ci[idx] >= csr.cols())
                return false;
            if (idx > rp[r] && ci[idx] <= ci[idx - 1])
                return false;
        }
    }
    return true;
}
#endif

} // namespace

SparseExec
sparseExecMode()
{
    int cur = g_sparseExec.load(std::memory_order_acquire);
    if (cur < 0) {
        int resolved = static_cast<int>(SparseExec::Csr);
        const char *env = std::getenv("VITALITY_SPARSE");
        if (env && *env) {
            const std::optional<SparseExec> wanted = parseSparseExec(env);
            if (wanted) {
                resolved = static_cast<int>(*wanted);
            } else {
                warn("VITALITY_SPARSE=%s not recognized (want "
                     "dense|csr); using csr",
                     env);
            }
        }
        int expected = -1;
        g_sparseExec.compare_exchange_strong(expected, resolved,
                                             std::memory_order_acq_rel);
        cur = g_sparseExec.load(std::memory_order_acquire);
    }
    return static_cast<SparseExec>(cur);
}

void
setSparseExecMode(SparseExec mode)
{
    g_sparseExec.store(static_cast<int>(mode), std::memory_order_release);
}

const char *
sparseExecName(SparseExec mode)
{
    return mode == SparseExec::Dense ? "dense" : "csr";
}

std::optional<SparseExec>
parseSparseExec(const std::string &name)
{
    if (name == "dense")
        return SparseExec::Dense;
    if (name == "csr")
        return SparseExec::Csr;
    return std::nullopt;
}

void
CsrMask::assignFromMask(const SparseMask &mask)
{
    rows_ = mask.rows();
    cols_ = mask.cols();
    rowPtr_.clear();
    rowPtr_.reserve(rows_ + 1);
    colIdx_.clear();
    rowPtr_.push_back(0);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            if (mask.at(r, c))
                colIdx_.push_back(static_cast<uint32_t>(c));
        }
        rowPtr_.push_back(static_cast<uint32_t>(colIdx_.size()));
    }
}

void
CsrMask::assignFromThreshold(const Matrix &scores, float threshold,
                             bool rescue_empty_rows)
{
    beginAssign(scores.rows(), scores.cols());
    for (size_t r = 0; r < rows_; ++r)
        appendRowFromThreshold(scores.rowPtr(r), threshold,
                               rescue_empty_rows);
}

void
CsrMask::beginAssign(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    rowPtr_.clear();
    rowPtr_.reserve(rows_ + 1);
    colIdx_.clear();
    rowPtr_.push_back(0);
}

size_t
CsrMask::appendRowFromThreshold(const float *row, float threshold,
                                bool rescue_empty_row)
{
    VITALITY_ASSERT(rowPtr_.size() <= rows_,
                    "csr appendRow past beginAssign row count");
    const size_t row_begin = colIdx_.size();
    size_t c = 0;
#if defined(__SSE2__)
    // Four-wide compare + movemask: at the thresholds that matter
    // (T = 0.5 keeps well under 1% of entries) almost every group
    // is empty and the scan reduces to one compare and one branch
    // per four entries. cmpge is an exact predicate, so the kept
    // set is identical to the scalar tail's.
    const __m128 vt = _mm_set1_ps(threshold);
    for (; c + 4 <= cols_; c += 4) {
        const int hits = _mm_movemask_ps(
            _mm_cmpge_ps(_mm_loadu_ps(row + c), vt));
        if (!hits)
            continue;
        for (int lane = 0; lane < 4; ++lane) {
            if (hits & (1 << lane))
                colIdx_.push_back(static_cast<uint32_t>(c + lane));
        }
    }
#endif
    for (; c < cols_; ++c) {
        if (row[c] >= threshold)
            colIdx_.push_back(static_cast<uint32_t>(c));
    }
    if (rescue_empty_row && colIdx_.size() == row_begin && cols_ > 0) {
        // First maximum wins, matching argmaxRow (tensor/ops.h).
        size_t best = 0;
        for (size_t j = 1; j < cols_; ++j) {
            if (row[j] > row[best])
                best = j;
        }
        colIdx_.push_back(static_cast<uint32_t>(best));
    }
    rowPtr_.push_back(static_cast<uint32_t>(colIdx_.size()));
    return colIdx_.size() - row_begin;
}

size_t
CsrMask::rowNnz(size_t r) const
{
    VITALITY_ASSERT(r < rows_, "csr row out of range");
    return rowPtr_[r + 1] - rowPtr_[r];
}

double
CsrMask::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

SparseMask
CsrMask::toMask() const
{
    SparseMask mask(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r) {
        for (uint32_t idx = rowPtr_[r]; idx < rowPtr_[r + 1]; ++idx)
            mask.set(r, colIdx_[idx], true);
    }
    return mask;
}

bool
CsrMask::operator==(const CsrMask &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           rowPtr_ == other.rowPtr_ && colIdx_ == other.colIdx_;
}

void
sparseScoresInto(Matrix &vals, const CsrMask &csr, const Matrix &q,
                 const Matrix &k, float scale)
{
    if (q.rows() != csr.rows() || k.rows() != csr.cols())
        throw std::invalid_argument("sparseScores: Q/K vs csr mismatch");
    if (q.cols() != k.cols())
        throw std::invalid_argument("sparseScores: Q/K dim mismatch");
    VITALITY_DCHECK(csrWellFormed(csr), "sparseScores: malformed CsrMask");
    VITALITY_DCHECK(check::allFinite(q.data(), q.size()) &&
                        check::allFinite(k.data(), k.size()),
                    "sparseScores: non-finite Q/K");

    vals.resize(1, csr.nnz());
    const size_t d = q.cols();
    const uint32_t *rp = csr.rowPtr();
    const uint32_t *ci = csr.colIdx();
    float *out = vals.data();
    for (size_t r = 0; r < csr.rows(); ++r) {
        const float *qrow = q.rowPtr(r);
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx) {
            const float *krow = k.rowPtr(ci[idx]);
            float acc = 0.0f;
            for (size_t kk = 0; kk < d; ++kk)
                acc += qrow[kk] * krow[kk];
            out[idx] = acc * scale;
        }
    }
}

void
maskedSoftmaxCsrInto(Matrix &vals, const CsrMask &csr)
{
    if (vals.size() != csr.nnz())
        throw std::invalid_argument("maskedSoftmaxCsr: vals/nnz mismatch");
    VITALITY_DCHECK(csrWellFormed(csr),
                    "maskedSoftmaxCsr: malformed CsrMask");

    const uint32_t *rp = csr.rowPtr();
    float *v = vals.data();
    for (size_t r = 0; r < csr.rows(); ++r) {
        const uint32_t begin = rp[r];
        const uint32_t end = rp[r + 1];
        if (begin == end)
            continue;
        // Same max / exp / accumulate / normalize order as the
        // dense-masked helper, over the kept entries only.
        float maxv = v[begin];
        for (uint32_t idx = begin + 1; idx < end; ++idx)
            maxv = std::max(maxv, v[idx]);
        if (maxv == -INFINITY) {
            // Every kept entry is -inf: treat the row as fully pruned
            // (all-zero) rather than emitting exp(-inf + inf) = NaN.
            for (uint32_t idx = begin; idx < end; ++idx)
                v[idx] = 0.0f;
            continue;
        }
        float denom = 0.0f;
        for (uint32_t idx = begin; idx < end; ++idx) {
            v[idx] = std::exp(v[idx] - maxv);
            denom += v[idx];
        }
        const float inv = 1.0f / denom;
        for (uint32_t idx = begin; idx < end; ++idx)
            v[idx] *= inv;
    }
}

void
spmmInto(Matrix &dst, const CsrMask &csr, const Matrix &vals,
         const Matrix &v, bool accumulate)
{
    if (vals.size() != csr.nnz())
        throw std::invalid_argument("spmm: vals/nnz mismatch");
    if (v.rows() != csr.cols())
        throw std::invalid_argument("spmm: csr cols vs V rows mismatch");
    if (&dst == &vals || &dst == &v)
        throw std::invalid_argument("spmm: dst must not alias an input");
    if (accumulate) {
        if (dst.rows() != csr.rows() || dst.cols() != v.cols()) {
            throw std::invalid_argument(
                strfmt("spmm: accumulate needs dst preshaped to "
                       "[%zu x %zu], got %s",
                       csr.rows(), v.cols(), dst.shapeStr().c_str()));
        }
    } else {
        dst.resize(csr.rows(), v.cols());
    }
    VITALITY_DCHECK(csrWellFormed(csr), "spmm: malformed CsrMask");
    VITALITY_DCHECK(check::allFinite(vals.data(), vals.size()) &&
                        check::allFinite(v.data(), v.size()),
                    "spmm: non-finite scores/V");

    const size_t n = v.cols();
    const uint32_t *rp = csr.rowPtr();
    const uint32_t *ci = csr.colIdx();
    const float *val = vals.data();
    for (size_t r = 0; r < csr.rows(); ++r) {
        float *out = dst.rowPtr(r);
        if (!accumulate)
            for (size_t j = 0; j < n; ++j)
                out[j] = 0.0f;
        for (uint32_t idx = rp[r]; idx < rp[r + 1]; ++idx) {
            const float s = val[idx];
            const float *vrow = v.rowPtr(ci[idx]);
            for (size_t j = 0; j < n; ++j)
                out[j] += s * vrow[j];
        }
    }
}

} // namespace vitality
