/**
 * @file
 * Sanger's "pack and split" scheduling of irregular sparse attention rows
 * onto a fixed-width reconfigurable PE array.
 *
 * Sanger turns a dynamic binary mask into hardware-friendly structured
 * blocks in two moves: rows with more kept entries than the PE width are
 * *split* into multiple sub-rows, and short sub-rows from different
 * queries are *packed* together into the same hardware row. The number of
 * packed hardware rows (times the PE width) determines the cycles the
 * score/attend phases take on the Sanger accelerator, so the packing
 * efficiency directly sets its speedup — which is what ViTALiTy's Fig. 11
 * compares against.
 */

#ifndef VITALITY_SPARSE_PACK_SPLIT_H
#define VITALITY_SPARSE_PACK_SPLIT_H

#include <cstddef>
#include <vector>

#include "sparse/csr.h"
#include "sparse/mask.h"

namespace vitality {

/** One hardware row after packing: sub-row segments from source rows. */
struct PackedRow
{
    /** (source row, number of kept entries taken from it). */
    std::vector<std::pair<size_t, size_t>> segments;
    /** Total kept entries mapped to this hardware row. */
    size_t occupancy = 0;
};

/** Outcome of pack-and-split scheduling. */
struct PackSplitResult
{
    /** Hardware rows after packing (drives Sanger's cycle count). */
    std::vector<PackedRow> packedRows;
    /** Total kept entries in the mask. */
    size_t nnz = 0;
    /** Sub-rows produced by the split phase. */
    size_t numSubRows = 0;
    /** PE-array width the schedule was built for. */
    size_t peWidth = 0;

    size_t numPackedRows() const { return packedRows.size(); }

    /** nnz / (packed rows * width): 1.0 means perfectly balanced. */
    double utilization() const;
};

/**
 * Schedule a mask onto a PE array of the given width.
 *
 * Split: each source row is cut into ceil(rowNnz / width) sub-rows of at
 * most width entries. Pack: sub-rows are placed first-fit-decreasing into
 * hardware rows of capacity width.
 *
 * @param mask The kept-connection bitmap for one head.
 * @param pe_width Number of PE columns available (64 for Sanger's config).
 */
PackSplitResult packAndSplit(const SparseMask &mask, size_t pe_width);

/**
 * Same schedule from a compressed mask, so the accelerator model and
 * the CSR runtime share one representation: a CsrMask built from a
 * SparseMask produces an identical PackSplitResult (asserted in ctest)
 * in O(rows + nnz) instead of scanning the dense bitmap.
 */
PackSplitResult packAndSplit(const CsrMask &csr, size_t pe_width);

} // namespace vitality

#endif // VITALITY_SPARSE_PACK_SPLIT_H
