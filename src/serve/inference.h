/**
 * @file
 * Request/response types and the typed error for the serving engine.
 *
 * An InferenceRequest is one image's token matrix; its completion is a
 * std::future<InferenceResponse> the submitter holds while the
 * DynamicBatcher packs the request into a uniform Batch with whatever
 * else arrived inside the batching window. The response carries the
 * encoded output plus the timing breakdown a latency SLO needs:
 * queueMs (submit to dispatch), computeMs (the batched forward), and
 * totalMs (submit to completion), along with the batch size the
 * request actually rode in — the number that explains a tail-latency
 * sample (a request that waited out maxWaitMicros alone reports
 * batchSize 1 and queueMs near the window).
 *
 * Failures that are the caller's fault or the server's state — queue
 * full, server stopping, unknown model, bad input shape — surface as
 * ServeError, which carries a machine-readable code so callers can
 * distinguish back-pressure (QueueFull: retry later) from terminal
 * conditions (Stopping, UnknownModel) without parsing what() text.
 * Backpressure is synchronous: submit() throws rather than returning
 * a future that will fail, so the queue bound is enforced before the
 * caller ever blocks on a result. Compute-side exceptions propagate
 * through the future instead (every request in the failed batch gets
 * the exception).
 */

#ifndef VITALITY_SERVE_INFERENCE_H
#define VITALITY_SERVE_INFERENCE_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/matrix.h"

namespace vitality {

/** Why a serving call was refused (ServeError::code()). */
enum class ServeErrorCode
{
    QueueFull,    ///< Bounded request queue at capacity; retry later.
    Stopping,     ///< Server/batcher is shutting down; terminal.
    UnknownModel, ///< No model registered under that key.
    BadRequest,   ///< Input shape does not match the model's config.
};

/** "queue_full", "stopping", "unknown_model", or "bad_request". */
const char *serveErrorCodeName(ServeErrorCode code);

/** Typed serving failure: a runtime_error carrying a ServeErrorCode. */
class ServeError : public std::runtime_error
{
  public:
    ServeError(ServeErrorCode code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    ServeErrorCode code() const { return code_; }

  private:
    ServeErrorCode code_;
};

/**
 * One image in: the token matrix (tokens x dModel for the target
 * model) and the id the batcher assigned at submit time, echoed in the
 * response so callers correlating logs don't need their own ids.
 */
struct InferenceRequest
{
    uint64_t id = 0;
    Matrix tokens;
};

/** One image out: the encoded output plus the timing breakdown. */
struct InferenceResponse
{
    uint64_t requestId = 0;

    /** Encoded output, tokens x dModel. */
    Matrix output;

    /** How many requests rode the batch this one was packed into. */
    size_t batchSize = 0;

    /** Submit to dispatch (time spent queued, ms). */
    double queueMs = 0.0;

    /** The batched forward this request rode (ms, shared). */
    double computeMs = 0.0;

    /** Submit to completion (ms); the latency a client observes. */
    double totalMs = 0.0;
};

} // namespace vitality

#endif // VITALITY_SERVE_INFERENCE_H
