#include "serve/inference.h"

namespace vitality {

const char *
serveErrorCodeName(ServeErrorCode code)
{
    switch (code) {
    case ServeErrorCode::QueueFull:
        return "queue_full";
    case ServeErrorCode::Stopping:
        return "stopping";
    case ServeErrorCode::UnknownModel:
        return "unknown_model";
    case ServeErrorCode::BadRequest:
        return "bad_request";
    }
    return "unknown";
}

} // namespace vitality
