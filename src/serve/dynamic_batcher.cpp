#include "serve/dynamic_batcher.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "base/logging.h"
#include "model/request_batch.h"

namespace vitality {

namespace {

double
msBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

} // namespace

void
BatchPolicy::validate() const
{
    if (maxBatch == 0)
        throw std::invalid_argument(
            "BatchPolicy: maxBatch must be positive");
    if (queueCapacity == 0)
        throw std::invalid_argument(
            "BatchPolicy: queueCapacity must be positive");
    if (queueCapacity < maxBatch)
        throw std::invalid_argument(
            strfmt("BatchPolicy: queueCapacity %zu < maxBatch %zu — a "
                   "full batch could never accumulate",
                   queueCapacity, maxBatch));
}

DynamicBatcher::DynamicBatcher(VitEncoder &encoder, ThreadPool &pool,
                               BatchPolicy policy, RuntimeOptions options,
                               std::mutex *dispatchGate)
    : encoder_(encoder), pool_(pool), policy_(policy),
      options_(std::move(options)), dispatchGate_(dispatchGate),
      reservoir_(512, 0x5eedULL ^ encoder.config().dModel)
{
    policy_.validate();
    if (!options_.empty() && !dispatchGate_)
        throw std::invalid_argument(
            "DynamicBatcher: pinned RuntimeOptions need a dispatch "
            "gate (the knobs are process-global; see runtime_options.h)");
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

DynamicBatcher::~DynamicBatcher()
{
    shutdown();
}

std::future<InferenceResponse>
DynamicBatcher::submit(const Matrix &tokens)
{
    const VitConfig &cfg = encoder_.config();
    // Mixed token counts are welcome (the dispatcher packs a ragged
    // batch); what stays fixed is the embedding width and the preset's
    // token budget. Rejecting here gives the caller a typed error at
    // the ingress instead of a downstream check abort mid-batch.
    if (tokens.cols() != cfg.dModel) {
        throw ServeError(
            ServeErrorCode::BadRequest,
            strfmt("submit: input %s, model %s expects %zu columns",
                   tokens.shapeStr().c_str(), cfg.name.c_str(),
                   cfg.dModel));
    }
    if (tokens.rows() == 0 || tokens.rows() > cfg.tokens) {
        throw ServeError(
            ServeErrorCode::BadRequest,
            strfmt("submit: input %s, model %s accepts 1..%zu token "
                   "rows",
                   tokens.shapeStr().c_str(), cfg.name.c_str(),
                   cfg.tokens));
    }

    std::future<InferenceResponse> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            rejectedStopping_.fetch_add(1, std::memory_order_relaxed);
            throw ServeError(ServeErrorCode::Stopping,
                             "submit: batcher is shutting down");
        }
        if (queue_.size() >= policy_.queueCapacity) {
            rejectedFull_.fetch_add(1, std::memory_order_relaxed);
            throw ServeError(
                ServeErrorCode::QueueFull,
                strfmt("submit: queue at capacity (%zu waiting)",
                       queue_.size()));
        }
        queue_.emplace_back();
        Pending &p = queue_.back();
        p.id = nextId_++;
        p.tokens.copyFrom(tokens);
        p.enqueued = std::chrono::steady_clock::now();
        future = p.promise.get_future();
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    tokensSubmitted_.fetch_add(tokens.rows(), std::memory_order_relaxed);
    cv_.notify_one();
    return future;
}

void
DynamicBatcher::dispatchLoop()
{
    std::vector<Pending> batch;
    batch.reserve(policy_.maxBatch);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, fully drained
            // The latency bound is owed to the OLDEST queued request:
            // it dispatches no later than enqueued + maxWaitMicros,
            // however few riders accumulate. Stopping waives the
            // window so shutdown drains at compute speed.
            const auto deadline =
                queue_.front().enqueued +
                std::chrono::microseconds(policy_.maxWaitMicros);
            while (queue_.size() < policy_.maxBatch && !stopping_) {
                if (cv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            const size_t take =
                std::min(queue_.size(), policy_.maxBatch);
            batch.clear();
            for (size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        runBatch(batch);
        // More work may have queued while the forward ran; loop
        // re-checks under the lock. On stopping the loop only exits
        // once the queue is empty, so every accepted request is
        // dispatched before join.
    }
}

void
DynamicBatcher::runBatch(std::vector<Pending> &batch)
{
    const auto dispatchStart = std::chrono::steady_clock::now();
    try {
        inputPtrs_.clear();
        uint64_t batchTokens = 0;
        for (const Pending &p : batch) {
            inputPtrs_.push_back(&p.tokens);
            batchTokens += p.tokens.rows();
        }
        // Ragged pack: requests keep their own token counts. A uniform
        // batch is just the special case where every count matches.
        packRequests(packed_, inputPtrs_.data(), inputPtrs_.size());
        {
            // Pinned options install under the process-wide gate; the
            // guard's destructor restores the prior mode before the
            // gate releases. No options + no gate = no locking.
            std::unique_lock<std::mutex> gate;
            if (dispatchGate_)
                gate = std::unique_lock<std::mutex>(*dispatchGate_);
            if (!options_.empty()) {
                RuntimeOptions::Scoped scoped(options_);
                encoder_.forwardRaggedInto(packed_, pool_, encoded_);
            } else {
                encoder_.forwardRaggedInto(packed_, pool_, encoded_);
            }
        }
        const auto done = std::chrono::steady_clock::now();
        const double computeMs = msBetween(dispatchStart, done);

        batches_.fetch_add(1, std::memory_order_relaxed);
        tokensServed_.fetch_add(batchTokens, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> slock(statsMutex_);
            maxBatchObserved_ = std::max(maxBatchObserved_, batch.size());
            if (!dispatchClockSet_) {
                dispatchClockSet_ = true;
                firstDispatch_ = dispatchStart;
            }
        }
        for (size_t i = 0; i < batch.size(); ++i) {
            Pending &p = batch[i];
            InferenceResponse resp;
            resp.requestId = p.id;
            unpackImage(encoded_, i, resp.output);
            resp.batchSize = batch.size();
            resp.queueMs = msBetween(p.enqueued, dispatchStart);
            resp.computeMs = computeMs;
            resp.totalMs = msBetween(p.enqueued, done);
            {
                std::lock_guard<std::mutex> slock(statsMutex_);
                reservoir_.record(resp.totalMs);
            }
            // Count before fulfilling: a caller whose get() returned
            // must see itself in stats().served, even without a
            // shutdown barrier in between.
            served_.fetch_add(1, std::memory_order_relaxed);
            p.promise.set_value(std::move(resp));
        }
    } catch (...) {
        // A failed forward fails every rider; the dispatcher survives
        // to serve the next batch.
        const std::exception_ptr err = std::current_exception();
        for (Pending &p : batch) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            p.promise.set_exception(err);
        }
    }
    batch.clear();
}

void
DynamicBatcher::shutdown()
{
    std::lock_guard<std::mutex> slock(shutdownMutex_);
    if (joined_)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    joined_ = true;
}

BatcherStats
DynamicBatcher::stats() const
{
    BatcherStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.served = served_.load(std::memory_order_relaxed);
    s.rejectedFull = rejectedFull_.load(std::memory_order_relaxed);
    s.rejectedStopping =
        rejectedStopping_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.tokensSubmitted =
        tokensSubmitted_.load(std::memory_order_relaxed);
    s.tokensServed = tokensServed_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.queueDepth = queue_.size();
    }
    {
        std::lock_guard<std::mutex> slock(statsMutex_);
        s.maxBatchObserved = maxBatchObserved_;
        s.p50Ms = reservoir_.quantile(0.50);
        s.p95Ms = reservoir_.quantile(0.95);
        s.p99Ms = reservoir_.quantile(0.99);
        if (dispatchClockSet_) {
            const double secs =
                msBetween(firstDispatch_,
                          std::chrono::steady_clock::now()) /
                1000.0;
            if (secs > 0.0)
                s.tokensPerSec =
                    static_cast<double>(s.tokensServed) / secs;
        }
    }
    return s;
}

} // namespace vitality
