#include "serve/latency_reservoir.h"

#include <algorithm>
#include <stdexcept>

namespace vitality {

LatencyReservoir::LatencyReservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed)
{
    if (capacity_ == 0)
        throw std::invalid_argument(
            "LatencyReservoir: capacity must be positive");
    samples_.reserve(capacity_);
}

void
LatencyReservoir::record(double ms)
{
    ++count_;
    if (samples_.size() < capacity_) {
        samples_.push_back(ms);
        return;
    }
    // Algorithm R: the i-th sample (1-based count_) lands in the
    // reservoir with probability capacity/count_, displacing a
    // uniformly random resident — which keeps the reservoir a uniform
    // sample of everything seen.
    const uint64_t slot = rng_.uniformInt(count_);
    if (slot < capacity_)
        samples_[static_cast<size_t>(slot)] = ms;
}

double
LatencyReservoir::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    scratch_ = samples_;
    const double pos = q * static_cast<double>(scratch_.size() - 1);
    size_t idx = static_cast<size_t>(pos + 0.5);
    if (idx >= scratch_.size())
        idx = scratch_.size() - 1;
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<long>(idx),
                     scratch_.end());
    return scratch_[idx];
}

void
LatencyReservoir::clear()
{
    samples_.clear();
    count_ = 0;
}

} // namespace vitality
