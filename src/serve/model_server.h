/**
 * @file
 * ModelServer: the multi-model front-end over DynamicBatcher.
 *
 * A deployment serves several (preset, kernel) variants at once — the
 * latency/accuracy frontier the paper's Table IV sweeps becomes, in
 * production, a registry of models a router picks from. ModelServer
 * owns that registry: addModel() builds a VitEncoder plus a
 * DynamicBatcher per ModelConfig, keyed "preset/kernel" (e.g.
 * "DeiT-Tiny/Taylor" — both halves round-trip through VitConfig
 * presets and kernelName/kernelFromName, so a key in a config file is
 * checkable), submit() routes a request to its model's batcher, and
 * stats() exposes each batcher's counters and latency percentiles.
 *
 * Every batcher shares the server's one ThreadPool (a batched forward
 * already fans across the whole pool, so concurrent dispatches would
 * time-slice workers, not add cores) and the server's one dispatch
 * gate: per-model RuntimeOptions pin process-global knobs, so one
 * model's pinned mode must never overlap another model's forward.
 * The server hands the gate to every batcher, serializing batch
 * dispatches across its models — the documented cost of per-model
 * execution modes until the knobs become per-call parameters.
 *
 * shutdown() stops accepting (addModel and submit throw
 * ServeError{Stopping}), then drains every batcher — all accepted
 * requests complete. The destructor calls shutdown().
 */

#ifndef VITALITY_SERVE_MODEL_SERVER_H
#define VITALITY_SERVE_MODEL_SERVER_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "attention/zoo.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "serve/dynamic_batcher.h"
#include "serve/inference.h"

namespace vitality {

/** Everything needed to register one servable model. */
struct ModelConfig
{
    /** Architecture preset; cfg.name becomes the key's first half. */
    VitConfig preset;

    /** Attention kernel, constructed via makeAttention. */
    AttentionType kernel = AttentionType::Taylor;

    /**
     * Sparsity threshold for the sparse-branch kernels; ignored (and
     * must stay unset) for the others. Unset = the kernel's default.
     */
    std::optional<float> threshold;

    /** Batching policy for this model's DynamicBatcher. */
    BatchPolicy policy;

    /**
     * Execution mode pinned around this model's dispatches; empty =
     * run under the ambient process state. See the file comment for
     * the serialization cost of pinning.
     */
    RuntimeOptions options;

    /** Weight-initialization seed. */
    uint64_t seed = 0x5eedULL;
};

class ModelServer
{
  public:
    /**
     * @param poolThreads Workers in the shared pool; 0 = the
     * ThreadPool default (VITALITY_THREADS, else hardware
     * concurrency).
     */
    explicit ModelServer(size_t poolThreads = 0);

    /** Calls shutdown(). */
    ~ModelServer();

    ModelServer(const ModelServer &) = delete;
    ModelServer &operator=(const ModelServer &) = delete;

    /**
     * Register a model; returns its key ("preset/kernel"). Validates
     * the preset, policy, threshold applicability, and that any pinned
     * gemmBackend is available here. Throws std::invalid_argument on
     * a duplicate key or invalid config, ServeError{Stopping} after
     * shutdown.
     */
    std::string addModel(const ModelConfig &config);

    /**
     * Route one request to the model under key. Throws
     * ServeError{UnknownModel} for an unregistered key; otherwise
     * DynamicBatcher::submit's contract (BadRequest / QueueFull /
     * Stopping).
     */
    std::future<InferenceResponse> submit(const std::string &key,
                                          const Matrix &tokens);

    /** Stats of the model under key (ServeError{UnknownModel} else). */
    BatcherStats stats(const std::string &key) const;

    /** Registered keys, sorted. */
    std::vector<std::string> models() const;

    /** The key addModel(config) would return. */
    static std::string modelKey(const ModelConfig &config);

    /**
     * Stop accepting and drain every batcher; idempotent. All
     * requests accepted before the stop complete.
     */
    void shutdown();

    ThreadPool &pool() { return pool_; }

  private:
    struct Entry
    {
        // Construction order matters: the batcher's dispatcher thread
        // uses the encoder, so encoder must outlive it — member order
        // destroys batcher first.
        std::unique_ptr<VitEncoder> encoder;
        std::unique_ptr<DynamicBatcher> batcher;
    };

    DynamicBatcher &find(const std::string &key) const;

    ThreadPool pool_;

    mutable std::mutex registryMutex_;
    std::map<std::string, Entry> registry_;
    bool stopping_ = false;

    /**
     * The dispatch gate every batcher locks around its forward
     * (runtime_options.h). One per server: two servers in one process
     * would still race each other's pinned knobs, which is why a
     * process normally runs one ModelServer.
     */
    std::mutex dispatchGate_;
};

} // namespace vitality

#endif // VITALITY_SERVE_MODEL_SERVER_H
