/**
 * @file
 * Fixed-size latency reservoir for per-model percentile stats.
 *
 * A server that has handled millions of requests cannot keep every
 * latency sample, but p50/p95/p99 over "recent-ish" traffic is exactly
 * what a serving dashboard wants. Algorithm R keeps a uniform random
 * sample of everything recorded so far in O(capacity) memory: sample i
 * (0-based) replaces a random slot with probability capacity/(i+1).
 * The RNG is the library's seeded xoshiro, so stats are reproducible
 * run to run — the property every other randomized component here
 * (weight init, bench inputs) already has.
 *
 * Not thread-safe: the owner (DynamicBatcher) guards it with its stats
 * mutex. quantile() is nearest-rank over a scratch copy, so every
 * reported percentile is an actual observed latency, not an
 * interpolation — at serving sample counts the difference is visible
 * in the tail.
 */

#ifndef VITALITY_SERVE_LATENCY_RESERVOIR_H
#define VITALITY_SERVE_LATENCY_RESERVOIR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace vitality {

class LatencyReservoir
{
  public:
    explicit LatencyReservoir(size_t capacity = 512,
                              uint64_t seed = 0x5eedULL);

    /** Record one sample (ms). */
    void record(double ms);

    /** Samples recorded over the reservoir's lifetime. */
    uint64_t count() const { return count_; }

    /** Samples currently held (min(count, capacity)). */
    size_t size() const { return samples_.size(); }

    /**
     * Nearest-rank quantile over the held samples, q in [0, 1];
     * 0 with no samples. O(size) via nth_element over scratch.
     */
    double quantile(double q) const;

    /** Drop every sample and reset the lifetime count. */
    void clear();

  private:
    size_t capacity_;
    std::vector<double> samples_;
    mutable std::vector<double> scratch_;
    uint64_t count_ = 0;
    Rng rng_;
};

} // namespace vitality

#endif // VITALITY_SERVE_LATENCY_RESERVOIR_H
