#include "serve/model_server.h"

#include <stdexcept>
#include <utility>

#include "base/logging.h"
#include "model/encoder_plan.h"

namespace vitality {

ModelServer::ModelServer(size_t poolThreads) : pool_(poolThreads) {}

ModelServer::~ModelServer()
{
    shutdown();
}

std::string
ModelServer::modelKey(const ModelConfig &config)
{
    return config.preset.name + "/" + kernelName(config.kernel);
}

std::string
ModelServer::addModel(const ModelConfig &config)
{
    config.preset.validate();
    config.policy.validate();
    if (config.threshold && config.kernel != AttentionType::SangerSparse &&
        config.kernel != AttentionType::Unified) {
        throw std::invalid_argument(
            strfmt("addModel: kernel '%s' takes no sparsity threshold",
                   kernelName(config.kernel).c_str()));
    }
    // Fail registration, not the first dispatch: a pinned backend that
    // this host cannot run is a config error, and apply() inside the
    // dispatcher would otherwise poison every future in every batch.
    if (config.options.gemmBackend &&
        !Gemm::available(*config.options.gemmBackend)) {
        throw std::invalid_argument(
            strfmt("addModel: pinned gemm backend %s is not available "
                   "on this host",
                   Gemm::backendName(*config.options.gemmBackend)));
    }

    const std::string key = modelKey(config);
    AttentionKernelPtr kernel =
        config.threshold ? makeAttention(config.kernel, *config.threshold)
                         : makeAttention(config.kernel);

    std::lock_guard<std::mutex> lock(registryMutex_);
    if (stopping_)
        throw ServeError(ServeErrorCode::Stopping,
                         "addModel: server is shutting down");
    if (registry_.count(key))
        throw std::invalid_argument(
            strfmt("addModel: key '%s' already registered", key.c_str()));

    Entry entry;
    entry.encoder = std::make_unique<VitEncoder>(
        config.preset, std::move(kernel), config.seed);
    // Compile the execution plan at registration, so serving never
    // packs a weight panel (or lazily quantizes a weight) after
    // startup: the per-model schedule/keep pins are frozen here, the
    // workspace is pre-grown to the policy's maxBatch, and the int8
    // twins are built eagerly when this model pins (or the process
    // defaults to) int8 execution. A malformed model-pinned schedule
    // fails registration, not the first dispatch; an ambient
    // VITALITY_LAYERS schedule too deep for this model is ignored with
    // a warning (the model runs uniform) so one global knob cannot
    // veto shallower models in the same process.
    PlanOptions planOpts;
    planOpts.layerKernels = config.options.layerKernels;
    planOpts.tokenKeep = config.options.tokenKeep;
    planOpts.maxBatch = config.policy.maxBatch;
    planOpts.packInt8 = (config.options.quantMode
                             ? *config.options.quantMode
                             : Gemm::quantMode()) ==
                        Gemm::QuantMode::Int8;
    entry.encoder->compilePlan(planOpts);
    entry.batcher = std::make_unique<DynamicBatcher>(
        *entry.encoder, pool_, config.policy, config.options,
        &dispatchGate_);
    registry_.emplace(key, std::move(entry));
    return key;
}

DynamicBatcher &
ModelServer::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    const auto it = registry_.find(key);
    if (it == registry_.end()) {
        throw ServeError(
            ServeErrorCode::UnknownModel,
            strfmt("no model registered under '%s'", key.c_str()));
    }
    // Entries are never erased before shutdown joins every batcher,
    // so the reference stays valid after the registry lock releases.
    // (Batchers are internally synchronized, so handing out a mutable
    // reference from a const lookup is sound.)
    return *it->second.batcher;
}

std::future<InferenceResponse>
ModelServer::submit(const std::string &key, const Matrix &tokens)
{
    return find(key).submit(tokens);
}

BatcherStats
ModelServer::stats(const std::string &key) const
{
    return find(key).stats();
}

std::vector<std::string>
ModelServer::models() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::vector<std::string> keys;
    keys.reserve(registry_.size());
    for (const auto &kv : registry_)
        keys.push_back(kv.first);
    return keys; // std::map iterates sorted
}

void
ModelServer::shutdown()
{
    // Flip stopping under the lock, then drain without it: batcher
    // shutdowns complete in-flight futures, whose waiters may call
    // stats()/models() and would deadlock on registryMutex_.
    std::vector<DynamicBatcher *> batchers;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        stopping_ = true;
        batchers.reserve(registry_.size());
        for (auto &kv : registry_)
            batchers.push_back(kv.second.batcher.get());
    }
    for (DynamicBatcher *b : batchers)
        b->shutdown();
}

} // namespace vitality
