/**
 * @file
 * DynamicBatcher: the ingress that turns concurrent single-image
 * requests into the batches the encoder is fast at.
 *
 * Submitters push token matrices into a bounded queue and get a
 * std::future back. Requests may carry MIXED token counts (any rows in
 * [1, preset tokens]; only the embedding width is fixed) — the
 * dispatcher packs whatever accumulated into one contiguous
 * RaggedBatch, so a 197-token image and a 50-token crop ride the same
 * forward. One dispatcher thread drains the queue under a two-knob
 * policy:
 *
 *   maxBatch       cut a batch as soon as this many requests are
 *                  waiting (throughput bound), and
 *   maxWaitMicros  never hold the OLDEST queued request longer than
 *                  this before dispatching whatever has accumulated
 *                  (latency bound — a lone request on an idle server
 *                  pays at most the window, not forever).
 *
 * The dispatcher packs via the ragged packRequests, runs
 * VitEncoder::forwardRaggedInto on the batcher's pool, and unpacks
 * each image's SURVIVING tokens into its request's future (under a
 * token-pruning keep ratio < 1.0 the response carries fewer rows than
 * the request — that is the service contract, not an error). Because
 * the ragged forward is bitwise-identical per image to a standalone
 * forward of the same image (vit_encoder.h) and pack/unpack are exact
 * copies, a request's result is bitwise-independent of what it was
 * batched with — asserted for every zoo kernel in test_serve. Compute
 * exceptions fan out to every future in the failed batch; the
 * dispatcher itself survives.
 *
 * Back-pressure and shutdown are synchronous and typed: submit()
 * throws ServeError{QueueFull} when policy.queueCapacity requests are
 * already waiting (the caller retries or sheds load — the queue never
 * grows unboundedly under overload) and ServeError{Stopping} once
 * shutdown began. shutdown() drains: everything accepted before the
 * stop flag flips is dispatched (in possibly-smaller final batches —
 * stopping waives the wait window) and completed before the dispatcher
 * joins, so no accepted request is ever dropped. The destructor calls
 * shutdown().
 *
 * An optional RuntimeOptions set pins the execution mode per dispatch:
 * the dispatcher wraps each forward in RuntimeOptions::Scoped under
 * the owner-provided dispatch gate (a process-wide mutex, because the
 * knobs are process-global — see runtime_options.h). With no options
 * and no gate the batcher adds no locking around the forward.
 */

#ifndef VITALITY_SERVE_DYNAMIC_BATCHER_H
#define VITALITY_SERVE_DYNAMIC_BATCHER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "model/vit_encoder.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "serve/inference.h"
#include "serve/latency_reservoir.h"
#include "tensor/batch.h"

namespace vitality {

/** The two-knob batching policy plus the queue bound. */
struct BatchPolicy
{
    /** Dispatch as soon as this many requests are queued. */
    size_t maxBatch = 8;

    /**
     * Dispatch the oldest queued request no later than this, whatever
     * the batch size reached. 0 = dispatch immediately (no batching
     * window; batches still form under burst back-pressure).
     */
    uint64_t maxWaitMicros = 2000;

    /** submit() throws ServeError{QueueFull} past this many queued. */
    size_t queueCapacity = 64;

    /** Throws std::invalid_argument on nonsensical knobs. */
    void validate() const;
};

/** Counter snapshot a monitoring scrape reads in one call. */
struct BatcherStats
{
    uint64_t submitted = 0;      ///< Accepted by submit().
    uint64_t served = 0;         ///< Futures fulfilled with a response.
    uint64_t rejectedFull = 0;   ///< submit() throws: queue full.
    uint64_t rejectedStopping = 0; ///< submit() throws: stopping.
    uint64_t errors = 0;         ///< Futures fulfilled with an exception.
    uint64_t batches = 0;        ///< Batched forwards dispatched.
    uint64_t tokensSubmitted = 0; ///< Input token rows accepted.
    uint64_t tokensServed = 0;   ///< Input token rows of served reqs.
    size_t queueDepth = 0;       ///< Requests waiting right now.
    size_t maxBatchObserved = 0; ///< Largest batch dispatched so far.
    double p50Ms = 0.0, p95Ms = 0.0, p99Ms = 0.0; ///< Total latency.
    /**
     * Served input tokens per second since the first dispatch (0.0
     * before it): the throughput row that stays comparable when
     * requests carry mixed token counts and images/s alone would not.
     */
    double tokensPerSec = 0.0;
};

class DynamicBatcher
{
  public:
    /**
     * @param encoder Model every batch runs through. Not owned; must
     * outlive the batcher. The batcher is the encoder's only caller
     * (VitEncoder forwards are same-instance exclusive).
     * @param pool Pool the batched forward fans out across. Not owned.
     * @param policy Validated batching policy.
     * @param options Execution mode pinned around every dispatch;
     * empty = run under whatever the process state is.
     * @param dispatchGate Mutex held across every dispatch (with the
     * Scoped options install). Required when options is non-empty —
     * process-global knobs need process-wide serialization; ModelServer
     * shares one gate across its batchers. May be nullptr when options
     * is empty.
     */
    DynamicBatcher(VitEncoder &encoder, ThreadPool &pool,
                   BatchPolicy policy,
                   RuntimeOptions options = RuntimeOptions{},
                   std::mutex *dispatchGate = nullptr);

    /** Calls shutdown(). */
    ~DynamicBatcher();

    DynamicBatcher(const DynamicBatcher &) = delete;
    DynamicBatcher &operator=(const DynamicBatcher &) = delete;

    /**
     * Enqueue one image (copied). Returns the future that completes
     * when the request's batch has run. Throws ServeError with
     * BadRequest for token-count-incompatible inputs (rows outside
     * [1, preset tokens] or columns != dModel — typed here at the
     * ingress instead of surfacing as a downstream VITALITY_CHECK
     * abort), QueueFull, or Stopping; on throw, nothing was enqueued.
     */
    std::future<InferenceResponse> submit(const Matrix &tokens);

    /**
     * Stop accepting, dispatch everything already accepted (final
     * batches skip the wait window), complete every future, join the
     * dispatcher. Idempotent; safe to call concurrently with
     * submitters (they get ServeError{Stopping}).
     */
    void shutdown();

    BatcherStats stats() const;

    const BatchPolicy &policy() const { return policy_; }
    const RuntimeOptions &options() const { return options_; }

  private:
    struct Pending
    {
        uint64_t id = 0;
        Matrix tokens;
        std::promise<InferenceResponse> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void dispatchLoop();
    void runBatch(std::vector<Pending> &batch);

    VitEncoder &encoder_;
    ThreadPool &pool_;
    const BatchPolicy policy_;
    const RuntimeOptions options_;
    std::mutex *const dispatchGate_;

    mutable std::mutex mutex_; ///< Guards queue_, stopping_, nextId_.
    std::condition_variable cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    uint64_t nextId_ = 1;

    std::mutex shutdownMutex_; ///< Serializes shutdown() callers.
    bool joined_ = false;

    /** Dispatcher-thread scratch, recycled across batches. */
    RaggedBatch packed_, encoded_;
    std::vector<const Matrix *> inputPtrs_;

    /** Monotonic counters (lock-free scrape). */
    std::atomic<uint64_t> submitted_{0}, served_{0}, rejectedFull_{0},
        rejectedStopping_{0}, errors_{0}, batches_{0},
        tokensSubmitted_{0}, tokensServed_{0};

    mutable std::mutex statsMutex_; ///< Guards reservoir_ + maxBatch.
    LatencyReservoir reservoir_;
    size_t maxBatchObserved_ = 0;
    /** First dispatch time, the tokens/s rate base (statsMutex_). */
    bool dispatchClockSet_ = false;
    std::chrono::steady_clock::time_point firstDispatch_;

    std::thread dispatcher_;
};

} // namespace vitality

#endif // VITALITY_SERVE_DYNAMIC_BATCHER_H
