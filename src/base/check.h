/**
 * @file
 * Contract macros for checked builds (-DVITALITY_CHECKED=ON).
 *
 * VITALITY_ASSERT (base/logging.h) guards invariants cheap enough to
 * keep in release builds. The macros here carry the *expensive* or
 * *hot-path* contracts — finite-input scans, CSR structure walks, 32B
 * alignment of workspace slots, aliasing of GEMM operands — that would
 * tax the steady-state paths the benches measure. They compile to
 * nothing unless the build defines VITALITY_CHECKED (the CMake option
 * of the same name), in which case a violation panics exactly like
 * VITALITY_ASSERT: the condition names a library bug, not a user
 * error, so aborting with the failed expression beats limping on with
 * corrupt state.
 *
 *   - VITALITY_CHECK:  O(1)-ish preconditions (shape already validated
 *     upstream, aliasing, pointer alignment, counters).
 *   - VITALITY_DCHECK: O(n) data scans (every input element finite,
 *     CSR row pointers monotone). Same activation today; the two names
 *     keep the cost class visible at the call site so a future build
 *     can split them.
 *
 * The helpers below are raw-pointer based on purpose: base/ sits under
 * tensor/ in the include-layer order (scripts/lint_invariants.py
 * enforces it), so this header cannot know about Matrix. Call sites
 * pass data()/size().
 *
 * In unchecked builds the condition is NOT evaluated — never put side
 * effects in a check.
 */

#ifndef VITALITY_BASE_CHECK_H
#define VITALITY_BASE_CHECK_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "base/logging.h"

#if VITALITY_CHECKED

#define VITALITY_CHECK(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vitality::panic("contract '%s' violated at %s:%d: %s", #cond, \
                              __FILE__, __LINE__,                           \
                              ::vitality::strfmt(__VA_ARGS__).c_str());     \
        }                                                                   \
    } while (0)

#define VITALITY_DCHECK(cond, ...) VITALITY_CHECK(cond, __VA_ARGS__)

#else

#define VITALITY_CHECK(cond, ...) ((void)0)
#define VITALITY_DCHECK(cond, ...) ((void)0)

#endif // VITALITY_CHECKED

namespace vitality {

/** True when contract macros are compiled in (for tests/logs). */
constexpr bool
checkedBuild()
{
#if VITALITY_CHECKED
    return true;
#else
    return false;
#endif
}

namespace check {

/** Every element finite (no NaN/Inf). O(n) — pair with VITALITY_DCHECK. */
inline bool
allFinite(const float *data, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (!std::isfinite(data[i]))
            return false;
    }
    return true;
}

/** Pointer aligned to `alignment` bytes (power of two). */
inline bool
isAligned(const void *p, size_t alignment)
{
    return (reinterpret_cast<uintptr_t>(p) & (alignment - 1)) == 0;
}

/** Half-open ranges [a, a+an) and [b, b+bn) do not overlap. */
inline bool
noAlias(const float *a, size_t an, const float *b, size_t bn)
{
    // Comparing unrelated pointers is unspecified via <; uintptr_t
    // ordering is the conventional portable-enough answer for overlap
    // diagnostics.
    const uintptr_t alo = reinterpret_cast<uintptr_t>(a);
    const uintptr_t blo = reinterpret_cast<uintptr_t>(b);
    const uintptr_t ahi = alo + an * sizeof(float);
    const uintptr_t bhi = blo + bn * sizeof(float);
    return ahi <= blo || bhi <= alo;
}

} // namespace check
} // namespace vitality

#endif // VITALITY_BASE_CHECK_H
