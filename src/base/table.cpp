#include "base/table.h"

#include <cstdio>
#include <sstream>

#include "base/logging.h"

namespace vitality {

Table::Table(std::string caption)
    : caption_(std::move(caption))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    VITALITY_ASSERT(!header.empty(), "table header must be non-empty");
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    VITALITY_ASSERT(header_.empty() || row.size() == header_.size(),
                    "row has %zu cells, header has %zu", row.size(),
                    header_.size());
    rows_.push_back({std::move(row), false});
}

void
Table::addSeparator()
{
    rows_.push_back({{}, true});
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &row : rows_) {
        if (!row.separator)
            grow(row.cells);
    }

    auto renderLine = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << " " << cell << std::string(widths[i] - cell.size(), ' ')
               << " |";
        }
        os << "\n";
        return os.str();
    };

    auto renderRule = [&]() {
        std::ostringstream os;
        os << "+";
        for (size_t width : widths)
            os << std::string(width + 2, '-') << "+";
        os << "\n";
        return os.str();
    };

    std::ostringstream out;
    if (!caption_.empty())
        out << caption_ << "\n";
    out << renderRule();
    out << renderLine(header_);
    out << renderRule();
    for (const auto &row : rows_) {
        if (row.separator)
            out << renderRule();
        else
            out << renderLine(row.cells);
    }
    out << renderRule();
    return out.str();
}

std::string
Table::renderCsv() const
{
    auto line = [](const std::vector<std::string> &cells) {
        std::ostringstream os;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            // Quote cells containing commas.
            if (cells[i].find(',') != std::string::npos)
                os << '"' << cells[i] << '"';
            else
                os << cells[i];
        }
        os << "\n";
        return os.str();
    };

    std::ostringstream out;
    out << line(header_);
    for (const auto &row : rows_) {
        if (!row.separator)
            out << line(row.cells);
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
Table::num(double value, int decimals)
{
    return strfmt("%.*f", decimals, value);
}

std::string
Table::ratio(double value, int decimals)
{
    return strfmt("%.*fx", decimals, value);
}

std::string
Table::percent(double fraction, int decimals)
{
    return strfmt("%.*f%%", decimals, fraction * 100.0);
}

} // namespace vitality
