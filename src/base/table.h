/**
 * @file
 * Console table and CSV rendering used by the bench harness.
 *
 * Every bench binary reproduces one of the paper's tables or figures and
 * needs to print aligned rows that read like the original. Table collects
 * string cells and renders a fixed-width ASCII table; it can also emit CSV
 * so results are machine-consumable.
 */

#ifndef VITALITY_BASE_TABLE_H
#define VITALITY_BASE_TABLE_H

#include <string>
#include <vector>

namespace vitality {

/** A simple column-aligned ASCII table builder. */
class Table
{
  public:
    /** Construct with an optional caption printed above the table. */
    explicit Table(std::string caption = "");

    /** Set the header row. Column count is fixed by this call. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator between row groups. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** Render rows as CSV (caption and separators omitted). */
    std::string renderCsv() const;

    /** Print the rendered table to stdout. */
    void print() const;

    size_t numRows() const { return rows_.size(); }

    /** Format a double with the given number of decimals. */
    static std::string num(double value, int decimals = 2);

    /** Format a ratio as, e.g., "3.1x". */
    static std::string ratio(double value, int decimals = 1);

    /** Format a fraction as a percentage, e.g., "52%". */
    static std::string percent(double fraction, int decimals = 0);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator;
    };

    std::string caption_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace vitality

#endif // VITALITY_BASE_TABLE_H
