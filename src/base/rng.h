/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (weight init, synthetic data,
 * dropout, Performer random features) draws from an explicitly seeded Rng
 * so that experiments are bit-reproducible across runs and platforms.
 * The core generator is xoshiro256**, seeded through SplitMix64.
 */

#ifndef VITALITY_BASE_RNG_H
#define VITALITY_BASE_RNG_H

#include <cstdint>

namespace vitality {

/** Seedable xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform float in [0, 1). */
    float uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Standard normal via Box-Muller (cached pair). */
    float gaussian();

    /** Normal with the given mean/stddev. */
    float gaussian(float mean, float stddev);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(float p);

    /** Derive an independent child stream (for per-worker determinism). */
    Rng split();

  private:
    uint64_t state_[4];
    float cachedGaussian_;
    bool hasCachedGaussian_;
};

} // namespace vitality

#endif // VITALITY_BASE_RNG_H
