/**
 * @file
 * Status and error reporting, modelled on gem5's logging conventions.
 *
 * Four severities are provided:
 *   - inform(): normal status, no connotation of incorrect behaviour.
 *   - warn():   something may be off; execution continues.
 *   - fatal():  the run cannot continue because of a *user* error (bad
 *               configuration, invalid arguments). Exits with code 1.
 *   - panic():  an internal invariant was violated (a library bug).
 *               Aborts so a core dump / debugger can take over.
 */

#ifndef VITALITY_BASE_LOGGING_H
#define VITALITY_BASE_LOGGING_H

#include <cstdarg>
#include <string>

namespace vitality {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting from an already-started va_list. */
std::string vstrfmt(const char *fmt, va_list args);

/** Print a normal status message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace vitality

/**
 * Check an internal invariant. Unlike assert(), stays active in release
 * builds: simulator results silently produced from corrupt state are worse
 * than a crash.
 */
#define VITALITY_ASSERT(cond, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::vitality::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                              __FILE__, __LINE__,                           \
                              ::vitality::strfmt(__VA_ARGS__).c_str());     \
        }                                                                   \
    } while (0)

#endif // VITALITY_BASE_LOGGING_H
