#include "base/rng.h"

#include <cmath>

#include "base/logging.h"

namespace vitality {

namespace {

/** SplitMix64: expands a single seed into well-mixed state words. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
    : cachedGaussian_(0.0f), hasCachedGaussian_(false)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

float
Rng::uniform()
{
    // Use the top 24 bits for a clean float in [0, 1).
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * uniform();
}

float
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    float u1 = uniform();
    float u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-12f)
        u1 = 1e-12f;
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 2.0f * static_cast<float>(M_PI) * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

float
Rng::gaussian(float mean, float stddev)
{
    return mean + stddev * gaussian();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    VITALITY_ASSERT(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t x;
    do {
        x = next();
    } while (x >= limit);
    return x % n;
}

bool
Rng::bernoulli(float p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

} // namespace vitality
