#include "base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vitality {

std::string
vstrfmt(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrfmt(fmt, args);
    va_end(args);
    return out;
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace vitality
