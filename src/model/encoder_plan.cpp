#include "model/encoder_plan.h"

#include <stdexcept>

#include "attention/zoo.h"
#include "base/logging.h"
#include "model/token_pruner.h"
#include "model/vit_encoder.h"
#include "runtime/runtime_options.h"

namespace vitality {

std::unique_ptr<const EncoderPlan>
EncoderPlan::compile(VitEncoder &encoder, const PlanOptions &opts)
{
    const VitConfig &cfg = encoder.config();
    cfg.validate();

    std::unique_ptr<EncoderPlan> plan(new EncoderPlan);

    // Schedule precedence: explicit options > the model's config > the
    // global VITALITY_LAYERS knob. An engaged-but-empty option pins
    // uniform (every layer runs the encoder's own kernel); a schedule
    // sourced from the ambient knob that names layers this model does
    // not have is ignored with a warning rather than failing the
    // compile — the knob is process-global and must not veto models
    // shallower than the deepest one it was written for. Explicit
    // schedules still throw on a bad range.
    std::string text;
    bool ambient = false;
    if (opts.layerKernels) {
        text = *opts.layerKernels;
    } else if (!cfg.layerKernels.empty()) {
        text = cfg.layerKernels;
    } else {
        text = layerKernelSchedule();
        ambient = true;
    }
    const AttentionType base = encoder.kernel().type();
    std::vector<AttentionType> kernels;
    try {
        kernels = expandLayerSchedule(text, cfg.layers, base);
    } catch (const std::invalid_argument &e) {
        if (!ambient)
            throw;
        warn("EncoderPlan %s: VITALITY_LAYERS schedule \"%s\" does not "
             "fit (%s); running uniform",
             cfg.name.c_str(), text.c_str(), e.what());
        text.clear();
        kernels.assign(cfg.layers, base);
    }
    plan->scheduleText_ = text;

    // Keep schedule, frozen at compile time: the config's explicit
    // vector wins; otherwise the pinned (or global) keep-ratio expanded
    // over the default staged schedule — the same resolution the eager
    // ragged path performs per call.
    std::vector<float> keeps;
    if (!cfg.tokenKeep.empty()) {
        keeps = cfg.tokenKeep;
    } else {
        const float keep =
            opts.tokenKeep ? *opts.tokenKeep : tokenKeepRatio();
        if (!(keep > 0.0f) || keep > 1.0f) {
            throw std::invalid_argument(
                strfmt("EncoderPlan: keep ratio %g outside (0, 1]",
                       static_cast<double>(keep)));
        }
        TokenPruner::buildSchedule(keeps, cfg.layers, keep);
    }

    plan->specs_.reserve(cfg.layers);
    plan->uniform_ = true;
    for (size_t l = 0; l < cfg.layers; ++l) {
        plan->specs_.push_back({kernels[l], keeps[l]});
        if (kernels[l] != base)
            plan->uniform_ = false;
    }

    plan->maxTokens_ = opts.maxTokens ? opts.maxTokens : cfg.tokens;
    if (plan->maxTokens_ < cfg.tokens) {
        throw std::invalid_argument(
            strfmt("EncoderPlan: maxTokens %zu below the model's %zu "
                   "tokens",
                   plan->maxTokens_, cfg.tokens));
    }
    plan->maxBatch_ = opts.maxBatch ? opts.maxBatch : 1;
    plan->workspaceFloats_ = plan->maxBatch_ * plan->maxTokens_ *
                             (6 * cfg.dModel + cfg.mlpHidden);

    // Prepack every dense-stage weight. The packs borrow the encoder's
    // weight matrices (and, for int8, its quantized cache, built here
    // eagerly so the first quantized request pays no lazy conversion) —
    // the encoder owns the plan, so the borrow cannot dangle.
    plan->int8_ = opts.packInt8;
    plan->packs_.resize(cfg.layers);
    for (size_t l = 0; l < cfg.layers; ++l) {
        const VitEncoder::LayerWeights &w = encoder.layer(l);
        LayerPack &p = plan->packs_[l];
        p.wq.packFp32(w.wq);
        p.wk.packFp32(w.wk);
        p.wv.packFp32(w.wv);
        p.wo.packFp32(w.wo);
        p.w1.packFp32(w.w1);
        p.w2.packFp32(w.w2);
        if (opts.packInt8) {
            const VitEncoder::QuantizedLayerWeights &q =
                encoder.quantizedLayer(l);
            p.wq.packInt8(q.wq);
            p.wk.packInt8(q.wk);
            p.wv.packInt8(q.wv);
            p.wo.packInt8(q.wo);
            p.w1.packInt8(q.w1);
            p.w2.packInt8(q.w2);
        }
    }

    return plan;
}

size_t
EncoderPlan::packedBytes() const
{
    size_t bytes = 0;
    for (const LayerPack &p : packs_) {
        bytes += p.wq.packedBytes() + p.wk.packedBytes() +
                 p.wv.packedBytes() + p.wo.packedBytes() +
                 p.w1.packedBytes() + p.w2.packedBytes();
    }
    return bytes;
}

std::string
EncoderPlan::summary() const
{
    return strfmt("plan: layers=%zu schedule=%s int8=%s maxTokens=%zu "
                  "maxBatch=%zu packed=%.1f MiB workspace=%.1f MiB",
                  specs_.size(),
                  scheduleText_.empty() ? "uniform"
                                        : scheduleText_.c_str(),
                  int8_ ? "packed" : "off", maxTokens_, maxBatch_,
                  static_cast<double>(packedBytes()) / (1024.0 * 1024.0),
                  static_cast<double>(workspaceFloats_) * 4.0 /
                      (1024.0 * 1024.0));
}

} // namespace vitality
