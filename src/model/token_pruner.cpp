#include "model/token_pruner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

size_t
TokenPruner::keptTokens(size_t n, float keep)
{
    if (n <= 1 || keep >= 1.0f)
        return n;
    const auto wanted = static_cast<size_t>(
        std::lround(static_cast<double>(keep) *
                    static_cast<double>(n - 1)));
    const size_t nonCls = std::min(std::max<size_t>(wanted, 1), n - 1);
    return 1 + nonCls;
}

void
TokenPruner::buildSchedule(std::vector<float> &out, size_t layers,
                           float keep)
{
    if (!(keep > 0.0f) || keep > 1.0f) {
        throw std::invalid_argument(
            strfmt("TokenPruner: keep ratio %g outside (0, 1]",
                   static_cast<double>(keep)));
    }
    out.assign(layers, 1.0f);
    if (keep >= 1.0f || layers == 0)
        return;
    const size_t quarters[3] = {layers / 4, layers / 2,
                                (3 * layers) / 4};
    for (size_t p : quarters) {
        // The final layer's pruning would only shrink the output no
        // later stage consumes; skip it (p==0 is layer 0, fine).
        if (p + 1 < layers)
            out[p] = keep;
    }
}

size_t
TokenPruner::rankImage(const RaggedBatch &q, const RaggedBatch &k,
                       size_t image, size_t heads, float keep)
{
    const size_t n = q.rowsOf(image);
    const size_t packed = q.cols();
    const size_t dh = packed / heads;
    const float invSqrtDh =
        1.0f / std::sqrt(static_cast<float>(dh));

    // CLS-attention mass: per head, the CLS row of the softmax map,
    // summed across heads. Computed with the usual max-subtracted
    // exact softmax, so the ranking is deterministic.
    scores_.assign(n, 0.0f);
    logits_.resize(n);
    order_.resize(n > 1 ? n - 1 : 0);
    for (size_t h = 0; h < heads; ++h) {
        const size_t c0 = h * dh;
        const float *qCls = q.rowPtr(image, 0) + c0;
        float maxLogit = -std::numeric_limits<float>::infinity();
        for (size_t j = 0; j < n; ++j) {
            const float *kj = k.rowPtr(image, j) + c0;
            float dot = 0.0f;
            for (size_t c = 0; c < dh; ++c)
                dot += qCls[c] * kj[c];
            logits_[j] = dot * invSqrtDh;
            maxLogit = std::max(maxLogit, logits_[j]);
        }
        float denom = 0.0f;
        for (size_t j = 0; j < n; ++j) {
            logits_[j] = std::exp(logits_[j] - maxLogit);
            denom += logits_[j];
        }
        const float invDenom = 1.0f / denom;
        for (size_t j = 0; j < n; ++j)
            scores_[j] += logits_[j] * invDenom;
    }

    const size_t kept = keptTokens(n, keep);
    const size_t keptNonCls = kept - 1;
    for (size_t j = 0; j + 1 < n; ++j)
        order_[j] = static_cast<uint32_t>(j + 1);
    // Highest mass first; ties to the lower index so the selection is
    // a deterministic function of the scores.
    std::nth_element(order_.begin(),
                     order_.begin() +
                         static_cast<std::ptrdiff_t>(keptNonCls),
                     order_.end(), [this](uint32_t a, uint32_t b) {
                         if (scores_[a] != scores_[b])
                             return scores_[a] > scores_[b];
                         return a < b;
                     });
    // Kept tokens keep their original ascending order.
    std::sort(order_.begin(),
              order_.begin() + static_cast<std::ptrdiff_t>(keptNonCls));
    return kept;
}

void
TokenPruner::prune(RaggedBatch &x, const RaggedBatch &q,
                   const RaggedBatch &k, size_t heads, float keep)
{
    if (keep >= 1.0f)
        return;
    if (!(keep > 0.0f))
        throw std::invalid_argument(
            strfmt("TokenPruner: keep ratio %g outside (0, 1]",
                   static_cast<double>(keep)));
    if (heads == 0 || q.cols() == 0 || q.cols() % heads != 0)
        throw std::invalid_argument(
            strfmt("TokenPruner: %zu Q/K columns not divisible by %zu "
                   "heads",
                   q.cols(), heads));
    if (q.offsets() != x.offsets() || k.offsets() != x.offsets())
        throw std::invalid_argument(
            strfmt("TokenPruner: Q/K structure %s / %s does not match "
                   "activations %s",
                   q.shapeStr().c_str(), k.shapeStr().c_str(),
                   x.shapeStr().c_str()));

    const size_t images = x.size();
    const size_t cols = x.cols();
    keptRows_.resize(images);

    // Compact kept rows toward the front of the shared buffer in one
    // ascending pass: every destination row index is <= its source row
    // index (offsets only shrink and kept indices are ascending), so
    // the moves never clobber unread rows.
    float *base = x.buffer().data();
    size_t dst = 0;
    for (size_t i = 0; i < images; ++i) {
        const size_t src0 = x.offset(i);
        const size_t kept = rankImage(q, k, i, heads, keep);
        keptRows_[i] = kept;
        // CLS first, then the kept non-CLS tokens from order_.
        if (dst != src0)
            std::memcpy(base + dst * cols, base + src0 * cols,
                        cols * sizeof(float));
        ++dst;
        for (size_t j = 0; j + 1 < kept; ++j) {
            const size_t src = src0 + order_[j];
            if (dst != src)
                std::memcpy(base + dst * cols, base + src * cols,
                            cols * sizeof(float));
            ++dst;
        }
    }
    x.shrinkRows(keptRows_.data());
}

} // namespace vitality
