#include "model/request_batch.h"

#include <stdexcept>

#include "base/logging.h"

namespace vitality {

void
packRequests(Batch &dst, const Matrix *const *inputs, size_t n)
{
    if (n == 0)
        throw std::invalid_argument("packRequests: empty request set");
    for (size_t i = 0; i < n; ++i)
        if (!inputs[i])
            throw std::invalid_argument(
                strfmt("packRequests: input %zu is null", i));
    const size_t rows = inputs[0]->rows(), cols = inputs[0]->cols();
    if (rows == 0 || cols == 0)
        throw std::invalid_argument(
            strfmt("packRequests: empty input shape %s",
                   inputs[0]->shapeStr().c_str()));
    for (size_t i = 1; i < n; ++i) {
        if (inputs[i]->rows() != rows || inputs[i]->cols() != cols)
            throw std::invalid_argument(
                strfmt("packRequests: input %zu is %s, expected %s", i,
                       inputs[i]->shapeStr().c_str(),
                       inputs[0]->shapeStr().c_str()));
    }
    dst.resize(n, rows, cols);
    for (size_t i = 0; i < n; ++i)
        dst[i].copyFrom(*inputs[i]);
}

void
packRequests(RaggedBatch &dst, const Matrix *const *inputs, size_t n)
{
    // RaggedBatch::packFrom carries the full contract (non-null, equal
    // columns, rows >= 1); this wrapper exists so the serving layer
    // uses one packRequests/unpackImage surface for both shapes.
    dst.packFrom(inputs, n);
}

void
unpackImage(const Batch &src, size_t i, Matrix &dst)
{
    dst.copyFrom(src.at(i));
}

void
unpackImage(const RaggedBatch &src, size_t i, Matrix &dst)
{
    src.unpackImage(i, dst);
}

} // namespace vitality
