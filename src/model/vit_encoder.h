/**
 * @file
 * End-to-end ViT encoder stack over the attention zoo.
 *
 * Runs the standard pre-norm transformer encoder the DeiT family uses:
 *
 *   for each layer:  x = x + W_O MHA(LN1(x))        (attention block)
 *                    x = x + W_2 GELU(W_1 LN2(x))   (MLP block)
 *
 * with the multi-head attention dispatched through the runtime layer, so
 * any kernel in the zoo (softmax baseline, ViTALiTy Taylor, Sanger
 * sparse, unified, ...) can be swapped in end-to-end. Every dense stage
 * (QKV/output projections, MLP) is a single fused GEMM call: bias adds,
 * the tanh-GELU, and the residual adds ride the GEMM epilogue
 * (tensor/gemm.h) instead of re-walking the activations, and the
 * single-image path additionally fans row bands of each GEMM across the
 * pool. forwardBatch runs
 * the same program over B images at once, fanning both the dense stages
 * (per image) and the attention (per image x head) across the pool. Weights are
 * randomly initialized (the repo reproduces the paper's compute and
 * accuracy *structure*, not trained checkpoints); everything is seeded,
 * so runs are bit-reproducible.
 *
 * The op-count rollup reproduces the paper's model-level GFLOPs
 * accounting: the attention contribution is exactly the kernel's
 * per-head opCounts(n, d_h) scaled by heads x layers, and the dense
 * contribution adds the QKV/output projections and the MLP.
 */

#ifndef VITALITY_MODEL_VIT_ENCODER_H
#define VITALITY_MODEL_VIT_ENCODER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "attention/attention.h"
#include "model/token_pruner.h"
#include "model/vit_config.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/quantized_matrix.h"
#include "tensor/ragged_batch.h"
#include "tensor/workspace.h"

namespace vitality {

class EncoderPlan;
class Rng;
struct PlanOptions;

/** A stack of pre-norm transformer encoder layers. */
class VitEncoder
{
  public:
    /** Weights of one encoder layer. */
    struct LayerWeights
    {
        Matrix ln1Gamma, ln1Beta; ///< Pre-attention layer norm, 1 x d.
        Matrix wq, wk, wv;        ///< QKV projections, d x d.
        Matrix bq, bk, bv;        ///< QKV biases, 1 x d.
        Matrix wo, bo;            ///< Output projection d x d, bias 1 x d.
        Matrix ln2Gamma, ln2Beta; ///< Pre-MLP layer norm, 1 x d.
        Matrix w1, b1;            ///< MLP up-projection d x h, 1 x h.
        Matrix w2, b2;            ///< MLP down-projection h x d, 1 x d.
    };

    /**
     * INT8 twins of one layer's projection weights (symmetric
     * per-tensor, tensor/quantized_matrix.h), built lazily on the
     * first forward under Gemm::QuantMode::Int8 and cached for the
     * life of the encoder. Layer norms, biases, and the attention
     * kernels stay fp32; under the int8 mode the dense stages (QKV,
     * output projection, both MLP GEMMs) run through the quantized
     * Gemm::multiply with per-row-quantized activations, and the
     * fp32-vs-int8 output deviation is bounded and asserted by
     * test_quant.
     */
    struct QuantizedLayerWeights
    {
        QuantizedMatrix wq, wk, wv, wo, w1, w2;
    };

    /**
     * @param config Architecture preset; validated.
     * @param kernel Attention kernel shared by every head and layer.
     * @param seed Weight-initialization seed.
     */
    VitEncoder(VitConfig config, AttentionKernelPtr kernel,
               uint64_t seed = 0x5eedULL);

    /** Out-of-line: plan_ holds an incomplete EncoderPlan here. */
    ~VitEncoder();

    const VitConfig &config() const { return cfg_; }
    const AttentionKernel &kernel() const { return mha_.kernel(); }
    const LayerWeights &layer(size_t i) const { return layers_[i]; }

    /**
     * The layer's int8 weight twins, building the whole cache on first
     * use (the same cache the lazy int8 forward path fills). Not
     * thread-safe against concurrent forwards — call it where a
     * forward would be legal.
     */
    const QuantizedLayerWeights &quantizedLayer(size_t i);

    /**
     * Compile and attach an execution plan (model/encoder_plan.h):
     * prepacks every dense-stage weight into the microkernel panel
     * layout, freezes the per-layer kernel/keep schedule, pre-grows
     * the workspace arena and activation buffers to the plan's
     * (maxBatch, maxTokens) high-water mark, and — for heterogeneous
     * schedules — builds one MultiHeadAttention per layer. Subsequent
     * forward/forwardBatch/forwardRagged calls execute through the
     * plan; with a uniform schedule they are bitwise-identical to
     * eager execution (test-asserted). Replaces any previous plan.
     * Throws std::invalid_argument on malformed options and leaves the
     * encoder unplanned.
     */
    void compilePlan(const PlanOptions &opts);

    /** compilePlan with default options (uniform schedule, batch 1). */
    void compilePlan();

    /** The attached plan, or nullptr when executing eagerly. */
    const EncoderPlan *plan() const { return plan_.get(); }

    /** Detach the plan; the encoder executes eagerly again. */
    void clearPlan();

    /**
     * Run the full encoder stack.
     *
     * @param x Token embeddings, tokens x dModel.
     * @param pool Pool the per-layer attention heads fan out across.
     * @param out Resized to tokens x dModel. All tensor storage
     * (activations, attention scratch) is recycled after the first
     * call; only the per-layer head dispatch still makes a few small
     * control-block allocations (task closures, loop state).
     */
    void forwardInto(const Matrix &x, ThreadPool &pool, Matrix &out);

    Matrix forward(const Matrix &x, ThreadPool &pool);

    /**
     * Run the full encoder stack over a batch of B images.
     *
     * Per layer the dense stages (layer norms, QKV/output projections,
     * MLP) are fanned across the pool one image per task, and the
     * attention dispatch fans B x heads work items, which is what keeps
     * a wide pool busy at small head counts. Per-image activation
     * buffers are recycled across calls (Batch::resize semantics), and
     * each pool worker runs attention through its own recycled
     * AttentionContext, so the steady state stays allocation-free.
     *
     * @param x Batch of B token-embedding matrices, tokens x dModel.
     * @param pool Pool the (image, head) work items fan out across.
     * @param out Resized to B x tokens x dModel; must not alias x.
     * Image b is bitwise-identical to forwardInto(x[b], ...) — the
     * per-image float program is unchanged, only the scheduling differs.
     */
    void forwardBatchInto(const Batch &x, ThreadPool &pool, Batch &out);

    Batch forwardBatch(const Batch &x, ThreadPool &pool);

    /**
     * Run the full encoder stack over a ragged batch of mixed
     * token-count images, with progressive token pruning.
     *
     * Dense stages (layer norms, QKV/output projections, MLP, and the
     * int8 per-row activation quantization) run over the WHOLE
     * concatenated token buffer as single fused GEMM calls — every one
     * of those stages is row-independent, and the GEMM row-band
     * guarantee makes each row's result bitwise-independent of the
     * other rows present — while attention fans B x heads ragged work
     * items so every kernel runs at its image's own token count.
     *
     * Between layers a TokenPruner applies the keep-ratio schedule:
     * cfg.tokenKeep when non-empty, else the global VITALITY_TOKENS
     * knob expanded over the default staged schedule
     * (TokenPruner::buildSchedule). out's per-image row counts are the
     * SURVIVING token counts, which may be smaller than the input's.
     *
     * Parity contract (test-asserted): with an all-1.0 schedule the
     * pruner never runs and image i of out is bitwise-identical to
     * forwardInto(x[i]) / the uniform forwardBatch path; any image's
     * result is bitwise-independent of what it shares the batch with.
     *
     * @param x Ragged batch; cols must equal dModel, any rows >= 1.
     * @param pool Pool dense row bands and attention items fan across.
     * @param out Resized; must not alias x.
     */
    void forwardRaggedInto(const RaggedBatch &x, ThreadPool &pool,
                           RaggedBatch &out);

    RaggedBatch forwardRagged(const RaggedBatch &x, ThreadPool &pool);

    /**
     * Attention-only rollup: kernel per-head opCounts(tokens, headDim)
     * x heads x layers — the quantity the paper's Eq. (1)-(3) and
     * Table IV state per model.
     */
    OpCounts attentionOpCounts() const;

    /**
     * Dense (non-attention) rollup per the usual ViT accounting: QKV and
     * output projections (4 n d^2 MACs) plus the MLP (2 n d h MACs) per
     * layer, with bias adds; layer norms and GELU are counted as adds/
     * divs/exps respectively.
     */
    OpCounts denseOpCounts() const;

    /** attentionOpCounts() + denseOpCounts(). */
    OpCounts opCounts() const;

  private:
    /** Build qlayers_ from layers_ if not already cached. */
    void ensureQuantizedWeights();

    /** Layer l's attention dispatch: the per-layer instance when the
     * plan's schedule is heterogeneous, the shared mha_ otherwise. */
    MultiHeadAttention &mhaAt(size_t l);

    VitConfig cfg_;
    MultiHeadAttention mha_;
    std::vector<LayerWeights> layers_;
    /** Lazily-built INT8 weight cache, empty until the first int8
     * forward (see QuantizedLayerWeights). */
    std::vector<QuantizedLayerWeights> qlayers_;
    Workspace ws_;
    /**
     * Per-image batch activations, recycled across forwardBatch calls.
     * The old projection scratch is gone: output and MLP projections
     * accumulate straight into bx_ through the fused GEMM epilogue.
     */
    Batch bx_, bnormed_, bq_, bk_, bv_, battn_, bhidden_;
    /**
     * Ragged-path activations, recycled across forwardRagged calls.
     * rx_/rq_/rk_/rv_/rattn_ carry the per-image structure (attention
     * needs the boundaries); rnormed_/rhidden_ are plain buffers the
     * row-independent dense stages run over.
     */
    RaggedBatch rx_, rq_, rk_, rv_, rattn_;
    Matrix rnormed_, rhidden_;
    TokenPruner pruner_;
    /** Effective per-layer keep schedule, resolved per call. */
    std::vector<float> keepSched_;
    /**
     * Attached execution plan (compilePlan), or null for eager
     * execution. The plan borrows the weight storage above, so the
     * encoder owning it is what makes the borrow safe.
     */
    std::unique_ptr<const EncoderPlan> plan_;
    /**
     * Per-layer attention dispatch for heterogeneous plan schedules
     * (one instance per layer, each wrapping that layer's kernel).
     * Empty for uniform schedules — mhaAt() then returns mha_, which
     * is what keeps uniform planned execution bitwise-identical to
     * eager (identical object, identical float program).
     */
    std::vector<std::unique_ptr<MultiHeadAttention>> planMha_;
    /**
     * Set while a forward entry point is executing; the activation
     * buffers above (and ws_) are shared per instance, so a concurrent
     * same-instance call throws std::logic_error instead of silently
     * corrupting them (same contract as MultiHeadAttention).
     */
    std::atomic<bool> inFlight_{false};
};

} // namespace vitality

#endif // VITALITY_MODEL_VIT_ENCODER_H
