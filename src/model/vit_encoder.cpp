#include "model/vit_encoder.h"

#include <stdexcept>

#include "attention/zoo.h"
#include "base/check.h"
#include "base/logging.h"
#include "base/rng.h"
#include "model/encoder_plan.h"
#include "runtime/call_guard.h"
#include "runtime/runtime_options.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vitality {

namespace {

const char *const kConcurrentCall =
    "VitEncoder: concurrent forward on one instance (activation "
    "buffers are not shareable; use one instance per caller)";

// The per-layer float program is shared between the single-image and the
// batched paths, which is what makes forwardBatch bitwise-identical to
// per-image forward calls. Every dense stage rides the fused GEMM
// epilogue (tensor/gemm.h): bias adds, the GELU, and the residual adds
// happen in the GEMM write-back instead of as extra full passes over
// the activations — and fused epilogues are bitwise-identical to the
// unfused op sequence, so the parity guarantees survive the fusion.
//
// Each helper takes an optional QuantizedLayerWeights pointer: when
// non-null (VITALITY_QUANT=int8) the dense GEMM is replaced by its
// quantized twin — the fp32 activation is quantized per-row into a
// thread-local scratch and multiplied against the cached int8 weights
// with the very same epilogue descriptor, so bias/GELU/residual
// semantics are unchanged. Quantization is a deterministic function of
// the activation floats, so the batched path stays bitwise-identical
// to per-image forward calls in int8 mode too.

// Per-worker activation-quantization scratch. Each dense stage
// re-quantizes into it, so at most one lives per pool worker.
QuantizedMatrix &
quantScratch(const Matrix &src)
{
    static thread_local QuantizedMatrix t_qact;
    t_qact.assignActivations(src);
    return t_qact;
}

// One dense-stage projection, prepacked when the layer carries a plan
// pack (results are bitwise-identical either way — the prepacked
// panels ARE the per-call pack output, and the scalar backend runs an
// unpack-free reference path against the borrowed source).
void
projectFp32(Matrix &dst, const Matrix &a, const Matrix &w,
            const PackedMatrix *p, const Gemm::Epilogue &epi)
{
    if (p)
        Gemm::multiply(dst, a, *p, Gemm::Trans::None, epi);
    else
        Gemm::multiply(dst, a, w, Gemm::Trans::None, epi);
}

// Int8 twin: prepacked panels only when the plan packed them
// (PlanOptions::packInt8); otherwise the eager quantized multiply
// against the cached int8 weights.
void
projectInt8(Matrix &dst, const QuantizedMatrix &a,
            const QuantizedMatrix &w, const PackedMatrix *p,
            const Gemm::Epilogue &epi)
{
    if (p && p->hasInt8())
        Gemm::multiply(dst, a, *p, Gemm::Trans::None, epi);
    else
        Gemm::multiply(dst, a, w, Gemm::Trans::None, epi);
}

// LN1 and the QKV projections: normed, q, k, v <- LN1(x), packed QKV.
// The three projections share one quantization of `normed`.
void
attentionPre(const VitEncoder::LayerWeights &w,
             const VitEncoder::QuantizedLayerWeights *qw,
             const EncoderPlan::LayerPack *pk, const Matrix &x,
             Matrix &normed, Matrix &q, Matrix &k, Matrix &v)
{
    layerNormRowsInto(normed, x, w.ln1Gamma, w.ln1Beta);
    if (qw) {
        const QuantizedMatrix &qa = quantScratch(normed);
        projectInt8(q, qa, qw->wq, pk ? &pk->wq : nullptr,
                    Gemm::Epilogue::withBias(w.bq));
        projectInt8(k, qa, qw->wk, pk ? &pk->wk : nullptr,
                    Gemm::Epilogue::withBias(w.bk));
        projectInt8(v, qa, qw->wv, pk ? &pk->wv : nullptr,
                    Gemm::Epilogue::withBias(w.bv));
        return;
    }
    projectFp32(q, normed, w.wq, pk ? &pk->wq : nullptr,
                Gemm::Epilogue::withBias(w.bq));
    projectFp32(k, normed, w.wk, pk ? &pk->wk : nullptr,
                Gemm::Epilogue::withBias(w.bk));
    projectFp32(v, normed, w.wv, pk ? &pk->wv : nullptr,
                Gemm::Epilogue::withBias(w.bv));
}

// Output projection and residual, one fused call: x += W_O attn + b_O.
void
attentionPost(const VitEncoder::LayerWeights &w,
              const VitEncoder::QuantizedLayerWeights *qw,
              const EncoderPlan::LayerPack *pk, Matrix &x,
              const Matrix &attn)
{
    if (qw) {
        projectInt8(x, quantScratch(attn), qw->wo,
                    pk ? &pk->wo : nullptr,
                    Gemm::Epilogue::accumulateWithBias(w.bo));
        return;
    }
    projectFp32(x, attn, w.wo, pk ? &pk->wo : nullptr,
                Gemm::Epilogue::accumulateWithBias(w.bo));
}

// MLP block: x += W_2 GELU(W_1 LN2(x)). The GELU rides the first
// GEMM's write-back, the bias + residual the second's — no separate
// pass over the model's largest activation matrix remains.
void
mlpBlock(const VitEncoder::LayerWeights &w,
         const VitEncoder::QuantizedLayerWeights *qw,
         const EncoderPlan::LayerPack *pk, Matrix &x, Matrix &normed,
         Matrix &hidden)
{
    layerNormRowsInto(normed, x, w.ln2Gamma, w.ln2Beta);
    if (qw) {
        projectInt8(hidden, quantScratch(normed), qw->w1,
                    pk ? &pk->w1 : nullptr,
                    Gemm::Epilogue::withBiasGelu(w.b1));
        projectInt8(x, quantScratch(hidden), qw->w2,
                    pk ? &pk->w2 : nullptr,
                    Gemm::Epilogue::accumulateWithBias(w.b2));
        return;
    }
    projectFp32(hidden, normed, w.w1, pk ? &pk->w1 : nullptr,
                Gemm::Epilogue::withBiasGelu(w.b1));
    projectFp32(x, hidden, w.w2, pk ? &pk->w2 : nullptr,
                Gemm::Epilogue::accumulateWithBias(w.b2));
}

} // namespace

VitEncoder::VitEncoder(VitConfig config, AttentionKernelPtr kernel,
                       uint64_t seed)
    : cfg_(std::move(config)), mha_(std::move(kernel), cfg_.heads)
{
    cfg_.validate();

    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;
    // DeiT's trunc-normal(0.02) init, without the truncation (the tails
    // are irrelevant to compute structure).
    const float w_std = 0.02f;

    Rng rng(seed);
    layers_.reserve(cfg_.layers);
    for (size_t l = 0; l < cfg_.layers; ++l) {
        LayerWeights w;
        w.ln1Gamma = Matrix::ones(1, d);
        w.ln1Beta = Matrix::zeros(1, d);
        w.wq = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wk = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wv = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bq = Matrix::zeros(1, d);
        w.bk = Matrix::zeros(1, d);
        w.bv = Matrix::zeros(1, d);
        w.wo = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bo = Matrix::zeros(1, d);
        w.ln2Gamma = Matrix::ones(1, d);
        w.ln2Beta = Matrix::zeros(1, d);
        w.w1 = Matrix::randn(d, h, rng, 0.0f, w_std);
        w.b1 = Matrix::zeros(1, h);
        w.w2 = Matrix::randn(h, d, rng, 0.0f, w_std);
        w.b2 = Matrix::zeros(1, d);
        layers_.push_back(std::move(w));
    }
}

VitEncoder::~VitEncoder() = default;

const VitEncoder::QuantizedLayerWeights &
VitEncoder::quantizedLayer(size_t i)
{
    ensureQuantizedWeights();
    return qlayers_.at(i);
}

void
VitEncoder::compilePlan()
{
    compilePlan(PlanOptions{});
}

void
VitEncoder::compilePlan(const PlanOptions &opts)
{
    CallGuard guard(inFlight_, kConcurrentCall);

    // Compile before detaching the old plan, so a throwing compile
    // leaves the encoder in its previous state.
    std::unique_ptr<const EncoderPlan> plan =
        EncoderPlan::compile(*this, opts);

    std::vector<std::unique_ptr<MultiHeadAttention>> mhas;
    if (!plan->uniform()) {
        // Heterogeneous schedule: one dispatch instance per layer.
        // Kernel construction is deterministic (attention/zoo.h), so a
        // layer whose spec names the encoder's own kernel type still
        // computes bitwise-identically to eager execution.
        mhas.reserve(cfg_.layers);
        for (size_t l = 0; l < cfg_.layers; ++l)
            mhas.push_back(std::make_unique<MultiHeadAttention>(
                makeAttention(plan->spec(l).kernel), cfg_.heads));
    }

    // Pre-grow every activation buffer to the plan's high-water
    // footprint, so steady-state forwards acquire recycled storage
    // from an already-sized arena instead of growing it mid-request.
    const size_t n = plan->maxTokens();
    const size_t batch = plan->maxBatch();
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;
    {
        Workspace::Frame frame(ws_);
        for (int slot = 0; slot < 6; ++slot)
            ws_.acquire(n, d);
        ws_.acquire(n, h);
    }
    bx_.resize(batch, n, d);
    bnormed_.resize(batch, n, d);
    bq_.resize(batch, n, d);
    bk_.resize(batch, n, d);
    bv_.resize(batch, n, d);
    battn_.resize(batch, n, d);
    bhidden_.resize(batch, n, h);
    const std::vector<size_t> rows(batch, n);
    rx_.resize(rows.data(), batch, d);
    rq_.resize(rows.data(), batch, d);
    rk_.resize(rows.data(), batch, d);
    rv_.resize(rows.data(), batch, d);
    rattn_.resize(rows.data(), batch, d);
    rnormed_.resize(batch * n, d);
    rhidden_.resize(batch * n, h);

    plan_ = std::move(plan);
    planMha_ = std::move(mhas);
}

void
VitEncoder::clearPlan()
{
    CallGuard guard(inFlight_, kConcurrentCall);
    plan_.reset();
    planMha_.clear();
}

MultiHeadAttention &
VitEncoder::mhaAt(size_t l)
{
    return planMha_.empty() ? mha_ : *planMha_[l];
}

void
VitEncoder::forwardInto(const Matrix &x_in, ThreadPool &pool, Matrix &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    if (x_in.rows() != cfg_.tokens || x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: input %s, expected [%zu x %zu]",
                   x_in.shapeStr().c_str(), cfg_.tokens, cfg_.dModel));
    }
    VITALITY_DCHECK(check::allFinite(x_in.data(), x_in.size()),
                    "VitEncoder: non-finite input");

    const size_t n = cfg_.tokens;
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    Workspace::Frame frame(ws_);
    Matrix &x = ws_.acquire(n, d);
    x.copyFrom(x_in);
    Matrix &normed = ws_.acquire(n, d);
    Matrix &q = ws_.acquire(n, d);
    Matrix &k = ws_.acquire(n, d);
    Matrix &v = ws_.acquire(n, d);
    Matrix &attn = ws_.acquire(n, d);
    Matrix &hidden = ws_.acquire(n, h);

    const bool int8 = Gemm::quantMode() == Gemm::QuantMode::Int8;
    if (int8)
        ensureQuantizedWeights();

    for (size_t l = 0; l < layers_.size(); ++l) {
        const LayerWeights &w = layers_[l];
        const QuantizedLayerWeights *qw = int8 ? &qlayers_[l] : nullptr;
        const EncoderPlan::LayerPack *pk =
            plan_ ? &plan_->pack(l) : nullptr;
        attentionPre(w, qw, pk, x, normed, q, k, v);
        mhaAt(l).forwardInto(pool, q, k, v, attn);
        attentionPost(w, qw, pk, x, attn);
        mlpBlock(w, qw, pk, x, normed, hidden);
    }

    out.copyFrom(x);
}

Matrix
VitEncoder::forward(const Matrix &x, ThreadPool &pool)
{
    Matrix out;
    forwardInto(x, pool, out);
    return out;
}

void
VitEncoder::forwardBatchInto(const Batch &x_in, ThreadPool &pool,
                             Batch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    if (x_in.size() == 0)
        throw std::invalid_argument("VitEncoder: empty batch");
    if (x_in.rows() != cfg_.tokens || x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: batch %s, expected [B x %zu x %zu]",
                   x_in.shapeStr().c_str(), cfg_.tokens, cfg_.dModel));
    }
#if VITALITY_CHECKED
    for (size_t b = 0; b < x_in.size(); ++b)
        VITALITY_DCHECK(check::allFinite(x_in[b].data(), x_in[b].size()),
                        "VitEncoder: non-finite input image %zu", b);
#endif

    const size_t batch = x_in.size();
    const size_t n = cfg_.tokens;
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    bx_.copyFrom(x_in);
    bnormed_.resize(batch, n, d);
    bq_.resize(batch, n, d);
    bk_.resize(batch, n, d);
    bv_.resize(batch, n, d);
    bhidden_.resize(batch, n, h);

    const bool int8 = Gemm::quantMode() == Gemm::QuantMode::Int8;
    if (int8)
        ensureQuantizedWeights();

    for (size_t l = 0; l < layers_.size(); ++l) {
        const LayerWeights &w = layers_[l];
        const QuantizedLayerWeights *qw = int8 ? &qlayers_[l] : nullptr;
        const EncoderPlan::LayerPack *pk =
            plan_ ? &plan_->pack(l) : nullptr;
        // Dense pre-attention stages, one image per task. The per-image
        // buffers are disjoint, so tasks never share floats, and GEMMs
        // issued inside a task stay sequential (the Gemm runner reports
        // width 1 on workers), so image-level parallelism is never
        // oversubscribed by intra-GEMM bands.
        pool.parallelFor(0, batch, [&](size_t b, size_t) {
            attentionPre(w, qw, pk, bx_[b], bnormed_[b], bq_[b], bk_[b],
                         bv_[b]);
        });
        // Attention: B x heads work items through per-worker contexts.
        mhaAt(l).forwardBatchInto(pool, bq_, bk_, bv_, battn_);
        // Output projection, residual, and MLP, one image per task.
        pool.parallelFor(0, batch, [&](size_t b, size_t) {
            attentionPost(w, qw, pk, bx_[b], battn_[b]);
            mlpBlock(w, qw, pk, bx_[b], bnormed_[b], bhidden_[b]);
        });
    }

    out.copyFrom(bx_);
}

Batch
VitEncoder::forwardBatch(const Batch &x, ThreadPool &pool)
{
    Batch out;
    forwardBatchInto(x, pool, out);
    return out;
}

void
VitEncoder::forwardRaggedInto(const RaggedBatch &x_in, ThreadPool &pool,
                              RaggedBatch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    if (x_in.empty())
        throw std::invalid_argument("VitEncoder: empty ragged batch");
    if (x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: ragged batch %s, expected %zu columns",
                   x_in.shapeStr().c_str(), cfg_.dModel));
    }
    VITALITY_CHECK(&out != &x_in,
                   "VitEncoder: ragged out aliases the input");
    VITALITY_DCHECK(
        check::allFinite(x_in.buffer().data(),
                         x_in.totalRows() * x_in.cols()),
        "VitEncoder: non-finite ragged input");

    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    // Effective keep schedule: a compiled plan froze its per-layer
    // schedule at compile time; otherwise the config's explicit
    // per-layer vector wins, then the global VITALITY_TOKENS knob
    // expanded over the default staged schedule (all 1.0 when the
    // knob is 1.0).
    if (plan_) {
        keepSched_.resize(cfg_.layers);
        for (size_t l = 0; l < cfg_.layers; ++l)
            keepSched_[l] = plan_->spec(l).tokenKeep;
    } else if (!cfg_.tokenKeep.empty()) {
        keepSched_ = cfg_.tokenKeep;
    } else {
        TokenPruner::buildSchedule(keepSched_, cfg_.layers,
                                   tokenKeepRatio());
    }

    rx_.copyFrom(x_in);

    const bool int8 = Gemm::quantMode() == Gemm::QuantMode::Int8;
    if (int8)
        ensureQuantizedWeights();

    for (size_t l = 0; l < layers_.size(); ++l) {
        const LayerWeights &w = layers_[l];
        const QuantizedLayerWeights *qw = int8 ? &qlayers_[l] : nullptr;
        const EncoderPlan::LayerPack *pk =
            plan_ ? &plan_->pack(l) : nullptr;
        const size_t total = rx_.totalRows();
        rnormed_.resize(total, d);
        rhidden_.resize(total, h);
        rq_.resizeLike(rx_);
        rk_.resizeLike(rx_);
        rv_.resizeLike(rx_);
        // Dense stages run over the whole concatenated buffer as one
        // fused GEMM per stage: layer norm, the projections, the GELU
        // and the int8 per-row activation quantization are all
        // row-independent, and GEMM row results are bitwise-independent
        // of which other rows share the multiply — so each image's
        // floats match its standalone forward exactly. Issued from the
        // calling thread, the GEMM fans row bands across the pool.
        attentionPre(w, qw, pk, rx_.buffer(), rnormed_, rq_.buffer(),
                     rk_.buffer(), rv_.buffer());
        // Attention is the one stage that needs image boundaries:
        // B x heads ragged work items, each at its own token count.
        mhaAt(l).forwardRaggedInto(pool, rq_, rk_, rv_, rattn_);
        attentionPost(w, qw, pk, rx_.buffer(), rattn_.buffer());
        mlpBlock(w, qw, pk, rx_.buffer(), rnormed_, rhidden_);
        // Progressive pruning: rank by this layer's CLS-attention mass
        // (from the packed Q/K the layer just used) and compact the
        // survivors in place. keep=1.0 layers skip the pruner, which
        // is what keeps the unpruned ragged path bitwise-identical to
        // the uniform one.
        if (keepSched_[l] < 1.0f)
            pruner_.prune(rx_, rq_, rk_, cfg_.heads, keepSched_[l]);
    }

    out.copyFrom(rx_);
}

RaggedBatch
VitEncoder::forwardRagged(const RaggedBatch &x, ThreadPool &pool)
{
    RaggedBatch out;
    forwardRaggedInto(x, pool, out);
    return out;
}

void
VitEncoder::ensureQuantizedWeights()
{
    if (qlayers_.size() == layers_.size())
        return;
    qlayers_.clear();
    qlayers_.reserve(layers_.size());
    for (const LayerWeights &w : layers_) {
        QuantizedLayerWeights q;
        q.wq.assignWeights(w.wq);
        q.wk.assignWeights(w.wk);
        q.wv.assignWeights(w.wv);
        q.wo.assignWeights(w.wo);
        q.w1.assignWeights(w.w1);
        q.w2.assignWeights(w.w2);
        qlayers_.push_back(std::move(q));
    }
}

OpCounts
VitEncoder::attentionOpCounts() const
{
    return mha_.opCounts(cfg_.tokens, cfg_.dModel) * cfg_.layers;
}

OpCounts
VitEncoder::denseOpCounts() const
{
    const uint64_t n = cfg_.tokens;
    const uint64_t d = cfg_.dModel;
    const uint64_t h = cfg_.mlpHidden;

    OpCounts c;
    // QKV + output projections: 4 GEMMs of n x d by d x d, plus biases.
    c.mul = 4ULL * n * d * d;
    c.add = 4ULL * n * d * d + 4ULL * n * d;
    // MLP: n x d by d x h and n x h by h x d, plus biases.
    c.mul += 2ULL * n * d * h;
    c.add += 2ULL * n * d * h + n * h + n * d;
    // Two layer norms: mean + variance accumulations (2 n d adds each),
    // a scale and a shift per element, one divide per element.
    c.add += 2ULL * (2ULL * n * d + n * d);
    c.mul += 2ULL * (2ULL * n * d);
    c.div += 2ULL * n * d;
    // GELU on the hidden activations: one transcendental per element.
    c.exp += n * h;
    // Residual adds.
    c.add += 2ULL * n * d;
    return c * cfg_.layers;
}

OpCounts
VitEncoder::opCounts() const
{
    return attentionOpCounts() + denseOpCounts();
}

} // namespace vitality
