#include "model/vit_encoder.h"

#include <cmath>
#include <stdexcept>

#include "base/logging.h"
#include "base/rng.h"
#include "runtime/call_guard.h"
#include "tensor/ops.h"

namespace vitality {

namespace {

const char *const kConcurrentCall =
    "VitEncoder: concurrent forward on one instance (activation "
    "buffers are not shareable; use one instance per caller)";

// Tanh-approximation GELU, the variant ViT/DeiT checkpoints use.
float
gelu(float x)
{
    const float kSqrt2OverPi = 0.7978845608f;
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

// The per-layer float program is shared between the single-image and the
// batched paths, which is what makes forwardBatch bitwise-identical to
// per-image forward calls.

// LN1 and the QKV projections: normed, q, k, v <- LN1(x), packed QKV.
void
attentionPre(const VitEncoder::LayerWeights &w, const Matrix &x,
             Matrix &normed, Matrix &q, Matrix &k, Matrix &v)
{
    layerNormRowsInto(normed, x, w.ln1Gamma, w.ln1Beta);
    matmulInto(q, normed, w.wq);
    broadcastAddRowInto(q, q, w.bq);
    matmulInto(k, normed, w.wk);
    broadcastAddRowInto(k, k, w.bk);
    matmulInto(v, normed, w.wv);
    broadcastAddRowInto(v, v, w.bv);
}

// Output projection and residual: x += W_O attn + b_O.
void
attentionPost(const VitEncoder::LayerWeights &w, Matrix &x,
              const Matrix &attn, Matrix &proj)
{
    matmulInto(proj, attn, w.wo);
    broadcastAddRowInto(proj, proj, w.bo);
    addInto(x, x, proj);
}

// MLP block: x += W_2 GELU(W_1 LN2(x)).
void
mlpBlock(const VitEncoder::LayerWeights &w, Matrix &x, Matrix &normed,
         Matrix &hidden, Matrix &proj)
{
    layerNormRowsInto(normed, x, w.ln2Gamma, w.ln2Beta);
    matmulInto(hidden, normed, w.w1);
    broadcastAddRowInto(hidden, hidden, w.b1);
    // Direct loop rather than mapElemInto: the std::function
    // indirection costs an un-inlinable call per element on the
    // model's largest activation matrix.
    for (size_t i = 0; i < hidden.size(); ++i)
        hidden.data()[i] = gelu(hidden.data()[i]);
    matmulInto(proj, hidden, w.w2);
    broadcastAddRowInto(proj, proj, w.b2);
    addInto(x, x, proj);
}

} // namespace

VitEncoder::VitEncoder(VitConfig config, AttentionKernelPtr kernel,
                       uint64_t seed)
    : cfg_(std::move(config)), mha_(std::move(kernel), cfg_.heads)
{
    cfg_.validate();

    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;
    // DeiT's trunc-normal(0.02) init, without the truncation (the tails
    // are irrelevant to compute structure).
    const float w_std = 0.02f;

    Rng rng(seed);
    layers_.reserve(cfg_.layers);
    for (size_t l = 0; l < cfg_.layers; ++l) {
        LayerWeights w;
        w.ln1Gamma = Matrix::ones(1, d);
        w.ln1Beta = Matrix::zeros(1, d);
        w.wq = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wk = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wv = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bq = Matrix::zeros(1, d);
        w.bk = Matrix::zeros(1, d);
        w.bv = Matrix::zeros(1, d);
        w.wo = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bo = Matrix::zeros(1, d);
        w.ln2Gamma = Matrix::ones(1, d);
        w.ln2Beta = Matrix::zeros(1, d);
        w.w1 = Matrix::randn(d, h, rng, 0.0f, w_std);
        w.b1 = Matrix::zeros(1, h);
        w.w2 = Matrix::randn(h, d, rng, 0.0f, w_std);
        w.b2 = Matrix::zeros(1, d);
        layers_.push_back(std::move(w));
    }
}

void
VitEncoder::forwardInto(const Matrix &x_in, ThreadPool &pool, Matrix &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    if (x_in.rows() != cfg_.tokens || x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: input %s, expected [%zu x %zu]",
                   x_in.shapeStr().c_str(), cfg_.tokens, cfg_.dModel));
    }

    const size_t n = cfg_.tokens;
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    Workspace::Frame frame(ws_);
    Matrix &x = ws_.acquire(n, d);
    x.copyFrom(x_in);
    Matrix &normed = ws_.acquire(n, d);
    Matrix &q = ws_.acquire(n, d);
    Matrix &k = ws_.acquire(n, d);
    Matrix &v = ws_.acquire(n, d);
    Matrix &attn = ws_.acquire(n, d);
    Matrix &proj = ws_.acquire(n, d);
    Matrix &hidden = ws_.acquire(n, h);

    for (const LayerWeights &w : layers_) {
        attentionPre(w, x, normed, q, k, v);
        mha_.forwardInto(pool, q, k, v, attn);
        attentionPost(w, x, attn, proj);
        mlpBlock(w, x, normed, hidden, proj);
    }

    out.copyFrom(x);
}

Matrix
VitEncoder::forward(const Matrix &x, ThreadPool &pool)
{
    Matrix out;
    forwardInto(x, pool, out);
    return out;
}

void
VitEncoder::forwardBatchInto(const Batch &x_in, ThreadPool &pool,
                             Batch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    if (x_in.size() == 0)
        throw std::invalid_argument("VitEncoder: empty batch");
    if (x_in.rows() != cfg_.tokens || x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: batch %s, expected [B x %zu x %zu]",
                   x_in.shapeStr().c_str(), cfg_.tokens, cfg_.dModel));
    }

    const size_t batch = x_in.size();
    const size_t n = cfg_.tokens;
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    bx_.copyFrom(x_in);
    bnormed_.resize(batch, n, d);
    bq_.resize(batch, n, d);
    bk_.resize(batch, n, d);
    bv_.resize(batch, n, d);
    bproj_.resize(batch, n, d);
    bhidden_.resize(batch, n, h);

    for (const LayerWeights &w : layers_) {
        // Dense pre-attention stages, one image per task. The per-image
        // buffers are disjoint, so tasks never share floats.
        pool.parallelFor(0, batch, [&](size_t b, size_t) {
            attentionPre(w, bx_[b], bnormed_[b], bq_[b], bk_[b], bv_[b]);
        });
        // Attention: B x heads work items through per-worker contexts.
        mha_.forwardBatchInto(pool, bq_, bk_, bv_, battn_);
        // Output projection, residual, and MLP, one image per task.
        pool.parallelFor(0, batch, [&](size_t b, size_t) {
            attentionPost(w, bx_[b], battn_[b], bproj_[b]);
            mlpBlock(w, bx_[b], bnormed_[b], bhidden_[b], bproj_[b]);
        });
    }

    out.copyFrom(bx_);
}

Batch
VitEncoder::forwardBatch(const Batch &x, ThreadPool &pool)
{
    Batch out;
    forwardBatchInto(x, pool, out);
    return out;
}

OpCounts
VitEncoder::attentionOpCounts() const
{
    return mha_.opCounts(cfg_.tokens, cfg_.dModel) * cfg_.layers;
}

OpCounts
VitEncoder::denseOpCounts() const
{
    const uint64_t n = cfg_.tokens;
    const uint64_t d = cfg_.dModel;
    const uint64_t h = cfg_.mlpHidden;

    OpCounts c;
    // QKV + output projections: 4 GEMMs of n x d by d x d, plus biases.
    c.mul = 4ULL * n * d * d;
    c.add = 4ULL * n * d * d + 4ULL * n * d;
    // MLP: n x d by d x h and n x h by h x d, plus biases.
    c.mul += 2ULL * n * d * h;
    c.add += 2ULL * n * d * h + n * h + n * d;
    // Two layer norms: mean + variance accumulations (2 n d adds each),
    // a scale and a shift per element, one divide per element.
    c.add += 2ULL * (2ULL * n * d + n * d);
    c.mul += 2ULL * (2ULL * n * d);
    c.div += 2ULL * n * d;
    // GELU on the hidden activations: one transcendental per element.
    c.exp += n * h;
    // Residual adds.
    c.add += 2ULL * n * d;
    return c * cfg_.layers;
}

OpCounts
VitEncoder::opCounts() const
{
    return attentionOpCounts() + denseOpCounts();
}

} // namespace vitality
