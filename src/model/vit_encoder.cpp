#include "model/vit_encoder.h"

#include <cmath>
#include <stdexcept>

#include "base/logging.h"
#include "base/rng.h"
#include "tensor/ops.h"

namespace vitality {

namespace {

// Tanh-approximation GELU, the variant ViT/DeiT checkpoints use.
float
gelu(float x)
{
    const float kSqrt2OverPi = 0.7978845608f;
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

} // namespace

VitEncoder::VitEncoder(VitConfig config, AttentionKernelPtr kernel,
                       uint64_t seed)
    : cfg_(std::move(config)), mha_(std::move(kernel), cfg_.heads)
{
    cfg_.validate();

    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;
    // DeiT's trunc-normal(0.02) init, without the truncation (the tails
    // are irrelevant to compute structure).
    const float w_std = 0.02f;

    Rng rng(seed);
    layers_.reserve(cfg_.layers);
    for (size_t l = 0; l < cfg_.layers; ++l) {
        LayerWeights w;
        w.ln1Gamma = Matrix::ones(1, d);
        w.ln1Beta = Matrix::zeros(1, d);
        w.wq = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wk = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.wv = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bq = Matrix::zeros(1, d);
        w.bk = Matrix::zeros(1, d);
        w.bv = Matrix::zeros(1, d);
        w.wo = Matrix::randn(d, d, rng, 0.0f, w_std);
        w.bo = Matrix::zeros(1, d);
        w.ln2Gamma = Matrix::ones(1, d);
        w.ln2Beta = Matrix::zeros(1, d);
        w.w1 = Matrix::randn(d, h, rng, 0.0f, w_std);
        w.b1 = Matrix::zeros(1, h);
        w.w2 = Matrix::randn(h, d, rng, 0.0f, w_std);
        w.b2 = Matrix::zeros(1, d);
        layers_.push_back(std::move(w));
    }
}

void
VitEncoder::forwardInto(const Matrix &x_in, ThreadPool &pool, Matrix &out)
{
    if (x_in.rows() != cfg_.tokens || x_in.cols() != cfg_.dModel) {
        throw std::invalid_argument(
            strfmt("VitEncoder: input %s, expected [%zu x %zu]",
                   x_in.shapeStr().c_str(), cfg_.tokens, cfg_.dModel));
    }

    const size_t n = cfg_.tokens;
    const size_t d = cfg_.dModel;
    const size_t h = cfg_.mlpHidden;

    Workspace::Frame frame(ws_);
    Matrix &x = ws_.acquire(n, d);
    x.copyFrom(x_in);
    Matrix &normed = ws_.acquire(n, d);
    Matrix &q = ws_.acquire(n, d);
    Matrix &k = ws_.acquire(n, d);
    Matrix &v = ws_.acquire(n, d);
    Matrix &attn = ws_.acquire(n, d);
    Matrix &proj = ws_.acquire(n, d);
    Matrix &hidden = ws_.acquire(n, h);

    for (const LayerWeights &w : layers_) {
        // Attention block: x += W_O MHA(LN1(x)).
        layerNormRowsInto(normed, x, w.ln1Gamma, w.ln1Beta);
        matmulInto(q, normed, w.wq);
        broadcastAddRowInto(q, q, w.bq);
        matmulInto(k, normed, w.wk);
        broadcastAddRowInto(k, k, w.bk);
        matmulInto(v, normed, w.wv);
        broadcastAddRowInto(v, v, w.bv);
        mha_.forwardInto(pool, q, k, v, attn);
        matmulInto(proj, attn, w.wo);
        broadcastAddRowInto(proj, proj, w.bo);
        addInto(x, x, proj);

        // MLP block: x += W_2 GELU(W_1 LN2(x)).
        layerNormRowsInto(normed, x, w.ln2Gamma, w.ln2Beta);
        matmulInto(hidden, normed, w.w1);
        broadcastAddRowInto(hidden, hidden, w.b1);
        // Direct loop rather than mapElemInto: the std::function
        // indirection costs an un-inlinable call per element on the
        // model's largest activation matrix.
        for (size_t i = 0; i < hidden.size(); ++i)
            hidden.data()[i] = gelu(hidden.data()[i]);
        matmulInto(proj, hidden, w.w2);
        broadcastAddRowInto(proj, proj, w.b2);
        addInto(x, x, proj);
    }

    out.copyFrom(x);
}

Matrix
VitEncoder::forward(const Matrix &x, ThreadPool &pool)
{
    Matrix out;
    forwardInto(x, pool, out);
    return out;
}

OpCounts
VitEncoder::attentionOpCounts() const
{
    return mha_.opCounts(cfg_.tokens, cfg_.dModel) * cfg_.layers;
}

OpCounts
VitEncoder::denseOpCounts() const
{
    const uint64_t n = cfg_.tokens;
    const uint64_t d = cfg_.dModel;
    const uint64_t h = cfg_.mlpHidden;

    OpCounts c;
    // QKV + output projections: 4 GEMMs of n x d by d x d, plus biases.
    c.mul = 4ULL * n * d * d;
    c.add = 4ULL * n * d * d + 4ULL * n * d;
    // MLP: n x d by d x h and n x h by h x d, plus biases.
    c.mul += 2ULL * n * d * h;
    c.add += 2ULL * n * d * h + n * h + n * d;
    // Two layer norms: mean + variance accumulations (2 n d adds each),
    // a scale and a shift per element, one divide per element.
    c.add += 2ULL * (2ULL * n * d + n * d);
    c.mul += 2ULL * (2ULL * n * d);
    c.div += 2ULL * n * d;
    // GELU on the hidden activations: one transcendental per element.
    c.exp += n * h;
    // Residual adds.
    c.add += 2ULL * n * d;
    return c * cfg_.layers;
}

OpCounts
VitEncoder::opCounts() const
{
    return attentionOpCounts() + denseOpCounts();
}

} // namespace vitality
