/**
 * @file
 * Pack/unpack between individual request matrices and the uniform
 * Batch the encoder consumes.
 *
 * The serving layer holds N independently-submitted token matrices and
 * needs them in one Batch for VitEncoder::forwardBatch; afterwards it
 * needs image i back out as a standalone Matrix for response i. Both
 * directions are plain shape-checked copies with Matrix::resize /
 * copyFrom semantics (storage recycled, so a batcher reusing one Batch
 * and per-response matrices is allocation-free in steady state). They
 * live in the model layer next to the forwardBatch contract they feed:
 * packRequests(dst, ...) then forwardBatchInto then unpackImage(i) is
 * bitwise-identical per request to a direct single-image forward,
 * because forwardBatch itself is (vit_encoder.h) and the copies here
 * are exact.
 */

#ifndef VITALITY_MODEL_REQUEST_BATCH_H
#define VITALITY_MODEL_REQUEST_BATCH_H

#include <cstddef>

#include "tensor/batch.h"
#include "tensor/matrix.h"
#include "tensor/ragged_batch.h"

namespace vitality {

/**
 * Pack inputs[0 .. n) into dst (resized to n images, recycling
 * storage). All inputs must be non-null and share one non-empty shape;
 * throws std::invalid_argument otherwise. Pointer-array form so a
 * batcher can pack straight from queued request nodes without first
 * materializing a contiguous vector<Matrix>.
 */
void packRequests(Batch &dst, const Matrix *const *inputs, size_t n);

/**
 * Ragged twin: pack n MIXED-token-count requests into one contiguous
 * RaggedBatch (resized, storage recycled). Inputs must be non-null
 * with equal non-zero columns and rows >= 1 each — token-count
 * diversity is the point; only the embedding width is fixed. The
 * serving path feeds this to VitEncoder::forwardRaggedInto.
 */
void packRequests(RaggedBatch &dst, const Matrix *const *inputs,
                  size_t n);

/**
 * Copy image i of src into dst (resized, recycling storage). Throws
 * std::out_of_range on a bad index.
 */
void unpackImage(const Batch &src, size_t i, Matrix &dst);

/** Ragged twin of unpackImage; dst gets image i's surviving tokens. */
void unpackImage(const RaggedBatch &src, size_t i, Matrix &dst);

} // namespace vitality

#endif // VITALITY_MODEL_REQUEST_BATCH_H
