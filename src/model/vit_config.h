/**
 * @file
 * Vision-transformer architecture presets.
 *
 * The paper evaluates ViTALiTy on the DeiT family (Table I / Table IV):
 * 224 x 224 inputs, 16 x 16 patches, so 196 patch tokens + 1 class token
 * = 197 tokens, 12 encoder layers, head dimension 64, and MLP hidden
 * dimension 4 x d_model. VitConfig captures those shape parameters so the
 * encoder, the benches, and the op-count rollups all agree on them.
 */

#ifndef VITALITY_MODEL_VIT_CONFIG_H
#define VITALITY_MODEL_VIT_CONFIG_H

#include <cstddef>
#include <string>
#include <vector>

namespace vitality {

/** Shape parameters of one ViT/DeiT encoder stack. */
struct VitConfig
{
    std::string name;  ///< Preset name, e.g. "DeiT-Tiny".
    size_t layers;     ///< Encoder layer count L.
    size_t heads;      ///< Attention heads H per layer.
    size_t dModel;     ///< Embedding width; per-head dim is dModel / heads.
    size_t tokens;     ///< Sequence length n (196 patches + class token).
    size_t mlpHidden;  ///< MLP hidden width (4 x dModel for DeiT).

    /**
     * Per-layer token keep-ratio schedule for the ragged forward path:
     * after running layer l, the token pruner keeps tokenKeep[l] of
     * each image's non-CLS tokens (ranked by CLS-attention mass; see
     * model/token_pruner.h). Empty (the default) defers to the global
     * VITALITY_TOKENS knob expanded over the default staged schedule;
     * non-empty must have exactly `layers` entries in (0, 1]
     * (validate() enforces this). 1.0 entries prune nothing. The
     * uniform Batch/Matrix forward paths ignore the schedule entirely.
     */
    std::vector<float> tokenKeep;

    /**
     * Per-layer attention-kernel schedule, string form
     * "taylor:0-7,softmax:8-11" (attention/zoo.h grammar): ranges name
     * the kernel run on those layers, uncovered layers run the model's
     * base kernel. Empty (the default) defers to the global
     * VITALITY_LAYERS knob. Only consulted when an EncoderPlan is
     * compiled (model/encoder_plan.h) — eager execution always runs
     * the base kernel on every layer. validate() checks the grammar
     * and that ranges fit `layers`.
     */
    std::string layerKernels;

    /** Per-head dimension d_h = dModel / heads (64 for all DeiT sizes). */
    size_t headDim() const { return dModel / heads; }

    /**
     * This preset with the DynamicViT-style staged schedule installed:
     * keep `keep` of the surviving non-CLS tokens after each quarter
     * of the stack (layers 3/6/9 for L=12), never after the final
     * layer. keep must be in (0, 1].
     */
    VitConfig withTokenKeep(float keep) const;

    /** DeiT-Tiny: L=12, H=3, d=192, n=197. */
    static VitConfig deitTiny();

    /** DeiT-Small: L=12, H=6, d=384, n=197. */
    static VitConfig deitSmall();

    /** DeiT-Base: L=12, H=12, d=768, n=197. */
    static VitConfig deitBase();

    /** Human-readable one-liner for benches and logs. */
    std::string summary() const;

    /** Sanity checks (nonzero dims, heads divides dModel); throws. */
    void validate() const;
};

} // namespace vitality

#endif // VITALITY_MODEL_VIT_CONFIG_H
