/**
 * @file
 * Attention-guided token pruning between encoder layers.
 *
 * DynamicViT and Attention-aware Token Filtering (PAPERS.md) both show
 * that ViT token counts can shrink progressively with negligible
 * accuracy cost: tokens the CLS token barely attends to contribute
 * little to the classification output, and dropping them shrinks the
 * n axis of EVERY downstream stage — attention (the paper's Taylor
 * kernel is O(n d^2), so cost is linear in n) and the dense
 * projections/MLP alike. TokenPruner is that stage for the ragged
 * encoder path: after a layer runs, it ranks each image's non-CLS
 * tokens by CLS-attention mass and compacts the kept rows in place.
 *
 * Ranking signal: for image i with n tokens, per head h the pruner
 * computes softmax_j(q_cls^h . k_j^h / sqrt(d_h)) over all n tokens
 * from the layer's packed Q/K projections — exactly the CLS row of the
 * softmax attention map — and sums the probabilities across heads.
 * This is the standard DynamicViT signal, costs O(n d) per image
 * (negligible next to the layer itself), and works for every kernel in
 * the zoo including the linear-path Taylor kernel, which never
 * materializes an n x n map to reuse.
 *
 * Determinism and parity: kept tokens preserve their original order
 * (ties broken by lower index), the CLS row is always kept, and a keep
 * ratio of 1.0 is a structural no-op — the encoder skips the pruner
 * entirely, which is what keeps the ragged path at keep=1.0
 * bitwise-identical to the uniform Batch path. Scratch buffers are
 * members recycled across calls, so steady-state pruning allocates
 * nothing.
 */

#ifndef VITALITY_MODEL_TOKEN_PRUNER_H
#define VITALITY_MODEL_TOKEN_PRUNER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/ragged_batch.h"

namespace vitality {

/** Ranks non-CLS tokens by CLS-attention mass; compacts in place. */
class TokenPruner
{
  public:
    /**
     * Prune every image of x to `keep` of its non-CLS tokens (at least
     * one survives; images with a single token are untouched), using
     * the layer's packed Q/K projections as the ranking signal.
     *
     * @param x Activations to compact in place (structure shrinks).
     * @param q,k Packed per-layer projections sharing x's image
     * structure (same offsets), heads * d_h columns.
     * @param heads Head count H; q/k columns must divide by it.
     * @param keep Keep ratio in (0, 1]; 1.0 returns without touching x.
     */
    void prune(RaggedBatch &x, const RaggedBatch &q, const RaggedBatch &k,
               size_t heads, float keep);

    /**
     * Tokens surviving one prune of n: the CLS token plus
     * clamp(round(keep * (n - 1)), 1, n - 1) non-CLS tokens; n <= 1
     * and keep = 1.0 pass through. The analytic twin of prune()'s
     * structural effect, for tests and op accounting.
     */
    static size_t keptTokens(size_t n, float keep);

    /**
     * Build the default staged schedule into out (sized to layers,
     * 1.0 everywhere except `keep` at each quarter of the stack —
     * layers/4, layers/2, 3*layers/4, skipping the final layer whose
     * pruning no downstream stage could exploit). keep must be in
     * (0, 1]; throws otherwise. This is the expansion the ragged
     * encoder applies to the global VITALITY_TOKENS knob when a
     * VitConfig carries no explicit schedule.
     */
    static void buildSchedule(std::vector<float> &out, size_t layers,
                              float keep);

  private:
    /** Rank image i's tokens; kept non-CLS indices land in order_. */
    size_t rankImage(const RaggedBatch &q, const RaggedBatch &k,
                     size_t image, size_t heads, float keep);

    /** Per-image CLS-attention mass, recycled across calls. */
    std::vector<float> scores_;
    /** Per-head logit/probability scratch, recycled across calls. */
    std::vector<float> logits_;
    /** Candidate index scratch for the top-k selection. */
    std::vector<uint32_t> order_;
    /** Per-image surviving row counts for RaggedBatch::shrinkRows. */
    std::vector<size_t> keptRows_;
};

} // namespace vitality

#endif // VITALITY_MODEL_TOKEN_PRUNER_H
