/**
 * @file
 * EncoderPlan: the compile step between a VitConfig and execution.
 *
 * Eager VitEncoder execution re-derives per-call everything that is
 * actually a function of the model alone: every dense-stage GEMM
 * re-packs the same weight panels, the first int8 forward quantizes
 * the weights inside the dispatch gate, workspace buffers grow to
 * their high-water marks mid-request, and the attention kernel is one
 * process-wide choice. EncoderPlan::compile hoists all of that to
 * model-registration time:
 *
 *  - every dense-stage weight (wq/wk/wv/wo/w1/w2 per layer) is packed
 *    once into the exact kc x 16 panel layout the AVX2 microkernels
 *    consume (tensor/packed_weights.h), so steady-state GEMMs skip
 *    the pack loop entirely — and the scalar backend runs its
 *    unpack-free reference path, so planned execution is
 *    bitwise-identical to eager on every backend;
 *  - the int8 weight twins are built (and packed) eagerly when
 *    requested, so the first quantized request pays no lazy
 *    quantization;
 *  - the per-(maxBatch, maxTokens) workspace footprint is computed so
 *    the encoder pre-grows its arena and activation buffers at compile
 *    time and steady-state forwards acquire without allocating;
 *  - a per-layer LayerSpec records which attention kernel and token
 *    keep-ratio each layer runs, parsed from the schedule grammar of
 *    attention/zoo.h ("taylor:0-7,softmax:8-11") with precedence
 *    PlanOptions > VitConfig::layerKernels > the VITALITY_LAYERS knob.
 *
 * A plan borrows the encoder's weight storage (PackedMatrix borrows
 * its source; the int8 panels borrow the encoder's quantized cache),
 * so it must not outlive the encoder that compiled it — VitEncoder
 * owns its plan (VitEncoder::compilePlan), which makes the lifetime
 * structural. When the resolved schedule is uniform (every layer runs
 * the encoder's own kernel), planned execution is bitwise-identical
 * to eager execution — test-asserted across the whole zoo.
 */

#ifndef VITALITY_MODEL_ENCODER_PLAN_H
#define VITALITY_MODEL_ENCODER_PLAN_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attention/attention.h"
#include "tensor/packed_weights.h"

namespace vitality {

class VitEncoder;

/** Compile-time choices for one EncoderPlan. */
struct PlanOptions
{
    /**
     * Per-layer kernel schedule (attention/zoo.h grammar). Disengaged
     * defers to VitConfig::layerKernels, then the VITALITY_LAYERS
     * knob; engaged-but-empty explicitly pins uniform (every layer
     * runs the encoder's own kernel), shutting the ambient knob out —
     * the same convention RuntimeOptions::layerKernels uses. Uncovered
     * layers run the encoder's own kernel.
     */
    std::optional<std::string> layerKernels;

    /**
     * Token keep-ratio to freeze into the plan's per-layer schedule
     * when the config carries no explicit tokenKeep vector. Disengaged
     * reads the global VITALITY_TOKENS knob at compile time — compile
     * freezes the value, so later knob changes don't retune a plan.
     */
    std::optional<float> tokenKeep;

    /** Largest per-image token count to provision for; 0 = cfg.tokens. */
    size_t maxTokens = 0;

    /** Largest batch size to provision workspace for. */
    size_t maxBatch = 1;

    /** Also build + pack the int8 weight twins at compile time. */
    bool packInt8 = false;
};

/** A compiled execution plan for one VitEncoder. */
class EncoderPlan
{
  public:
    /** What one layer runs: its attention kernel and keep-ratio. */
    struct LayerSpec
    {
        AttentionType kernel;
        float tokenKeep;
    };

    /** Prepacked panels for one layer's six dense-stage weights. */
    struct LayerPack
    {
        PackedMatrix wq, wk, wv, wo, w1, w2;
    };

    /**
     * Compile a plan against an encoder's weights. Throws
     * std::invalid_argument on a malformed schedule, a range past the
     * model's layer count, or out-of-range options. The plan borrows
     * the encoder's weight storage — callers go through
     * VitEncoder::compilePlan, which ties the lifetimes together.
     */
    static std::unique_ptr<const EncoderPlan>
    compile(VitEncoder &encoder, const PlanOptions &opts);

    size_t layers() const { return specs_.size(); }
    const LayerSpec &spec(size_t l) const { return specs_[l]; }
    const LayerPack &pack(size_t l) const { return packs_[l]; }

    /** True when every layer runs the encoder's own kernel. */
    bool uniform() const { return uniform_; }

    /** True when the int8 twins were packed (PlanOptions::packInt8). */
    bool hasInt8() const { return int8_; }

    size_t maxTokens() const { return maxTokens_; }
    size_t maxBatch() const { return maxBatch_; }

    /** Total bytes held by the prepacked weight panels. */
    size_t packedBytes() const;

    /**
     * High-water activation-float count the encoder pre-grows for:
     * maxBatch x maxTokens rows through the six d-wide buffers plus
     * the mlpHidden-wide one.
     */
    size_t workspaceFloats() const { return workspaceFloats_; }

    /** Human-readable one-liner for logs and benches. */
    std::string summary() const;

  private:
    EncoderPlan() = default;

    std::vector<LayerSpec> specs_;
    std::vector<LayerPack> packs_;
    bool uniform_ = true;
    bool int8_ = false;
    size_t maxTokens_ = 0;
    size_t maxBatch_ = 1;
    size_t workspaceFloats_ = 0;
    std::string scheduleText_;
};

} // namespace vitality

#endif // VITALITY_MODEL_ENCODER_PLAN_H
