#include "model/vit_config.h"

#include <stdexcept>

#include "base/logging.h"

namespace vitality {

VitConfig
VitConfig::deitTiny()
{
    return {"DeiT-Tiny", 12, 3, 192, 197, 768};
}

VitConfig
VitConfig::deitSmall()
{
    return {"DeiT-Small", 12, 6, 384, 197, 1536};
}

VitConfig
VitConfig::deitBase()
{
    return {"DeiT-Base", 12, 12, 768, 197, 3072};
}

std::string
VitConfig::summary() const
{
    return strfmt("%s: L=%zu H=%zu d=%zu n=%zu mlp=%zu", name.c_str(),
                  layers, heads, dModel, tokens, mlpHidden);
}

void
VitConfig::validate() const
{
    if (layers == 0 || heads == 0 || dModel == 0 || tokens == 0 ||
        mlpHidden == 0) {
        throw std::invalid_argument("VitConfig: zero dimension");
    }
    if (dModel % heads != 0) {
        throw std::invalid_argument(
            strfmt("VitConfig %s: dModel %zu not divisible by %zu heads",
                   name.c_str(), dModel, heads));
    }
}

} // namespace vitality
