#include "model/vit_config.h"

#include <stdexcept>

#include "attention/zoo.h"
#include "base/logging.h"
#include "model/token_pruner.h"

namespace vitality {

VitConfig
VitConfig::deitTiny()
{
    return {"DeiT-Tiny", 12, 3, 192, 197, 768, {}, {}};
}

VitConfig
VitConfig::deitSmall()
{
    return {"DeiT-Small", 12, 6, 384, 197, 1536, {}, {}};
}

VitConfig
VitConfig::deitBase()
{
    return {"DeiT-Base", 12, 12, 768, 197, 3072, {}, {}};
}

VitConfig
VitConfig::withTokenKeep(float keep) const
{
    VitConfig out = *this;
    TokenPruner::buildSchedule(out.tokenKeep, layers, keep);
    return out;
}

std::string
VitConfig::summary() const
{
    return strfmt("%s: L=%zu H=%zu d=%zu n=%zu mlp=%zu", name.c_str(),
                  layers, heads, dModel, tokens, mlpHidden);
}

void
VitConfig::validate() const
{
    if (layers == 0 || heads == 0 || dModel == 0 || tokens == 0 ||
        mlpHidden == 0) {
        throw std::invalid_argument("VitConfig: zero dimension");
    }
    if (dModel % heads != 0) {
        throw std::invalid_argument(
            strfmt("VitConfig %s: dModel %zu not divisible by %zu heads",
                   name.c_str(), dModel, heads));
    }
    if (!tokenKeep.empty()) {
        if (tokenKeep.size() != layers) {
            throw std::invalid_argument(
                strfmt("VitConfig %s: tokenKeep has %zu entries for "
                       "%zu layers",
                       name.c_str(), tokenKeep.size(), layers));
        }
        for (size_t l = 0; l < tokenKeep.size(); ++l) {
            if (!(tokenKeep[l] > 0.0f) || tokenKeep[l] > 1.0f) {
                throw std::invalid_argument(
                    strfmt("VitConfig %s: tokenKeep[%zu] = %g outside "
                           "(0, 1]",
                           name.c_str(), l,
                           static_cast<double>(tokenKeep[l])));
            }
        }
    }
    if (!layerKernels.empty()) {
        try {
            (void)expandLayerSchedule(layerKernels, layers,
                                      AttentionType::Taylor);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(strfmt(
                "VitConfig %s: layerKernels: %s", name.c_str(), e.what()));
        }
    }
}

} // namespace vitality
