/**
 * @file
 * The canonical GEMM epilogue write-back, shared by every scalar path.
 *
 * The fused == unfused bitwise contract in gemm.h rests on one
 * element-wise order — raw product, + bias, GELU, accumulate-into-C —
 * so that order lives in exactly one place and both backend TUs
 * include it. The AVX2 backend's vectorized full-tile store is the one
 * intentional second copy (lane-wise float adds round identically to
 * these scalar adds, which is what keeps it bitwise-equal; see
 * epilogueStoreTile in gemm_avx2.cpp). geluScalar is an out-of-line
 * baseline-ISA function and this header contains only float adds, so
 * including it from the -mfma TU cannot introduce rounding divergence
 * (the build additionally pins -ffp-contract=off).
 *
 * Internal to the tensor layer; not part of the public Gemm surface.
 */

#ifndef VITALITY_TENSOR_GEMM_EPILOGUE_H
#define VITALITY_TENSOR_GEMM_EPILOGUE_H

#include <cstddef>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vitality {
namespace detail {

/**
 * Write n finished raw products src[0..n) through the epilogue into
 * dst[0..n): t = src[j]; t += bias[j] if bias; t = act(t) (geluScalar
 * for Gelu, geluApproxScalar for GeluFast); dst[j] = accumulate ?
 * dst[j] + t : t. bias is pre-offset by the caller (nullptr when the
 * epilogue has none).
 */
inline void
epilogueApplyRow(float *dst, const float *src, const float *bias,
                 size_t n, bool accumulate, Gemm::Epilogue::Act act)
{
    for (size_t j = 0; j < n; ++j) {
        float t = src[j];
        if (bias)
            t += bias[j];
        if (act == Gemm::Epilogue::Act::Gelu)
            t = geluScalar(t);
        else if (act == Gemm::Epilogue::Act::GeluFast)
            t = geluApproxScalar(t);
        dst[j] = accumulate ? dst[j] + t : t;
    }
}

/** Same, taking the descriptor (bias offset at column 0). */
inline void
epilogueApplyRow(float *dst, const float *src, size_t n,
                 const Gemm::Epilogue &ep)
{
    epilogueApplyRow(dst, src, ep.bias ? ep.bias->rowPtr(0) : nullptr, n,
                     ep.accumulate, ep.act);
}

} // namespace detail
} // namespace vitality

#endif // VITALITY_TENSOR_GEMM_EPILOGUE_H
