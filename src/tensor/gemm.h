/**
 * @file
 * Runtime-dispatched GEMM: the single entry point every matmul in the
 * library funnels through.
 *
 * ViTALiTy's Taylor branch turns attention into dense low-rank GEMMs, so
 * this kernel is the whole hot path. Gemm::multiply computes
 *
 *   C = op(A) * op(B)      op in {none, transpose-A, transpose-B}
 *
 * and dispatches to one of two backends:
 *
 *   - Scalar: the portable cache-blocked loops (always compiled, always
 *     available — the reference implementation).
 *   - Avx2:   a 6x16 register-blocked AVX2+FMA microkernel over packed
 *     A/B panels staged in a thread-local Workspace arena, compiled only
 *     when the build enables it (-DVITALITY_ENABLE_AVX2=ON, the default)
 *     and selected only when CPUID reports AVX2 and FMA support.
 *
 * The default backend is resolved once per process: the VITALITY_GEMM
 * environment variable ("scalar" or "avx2") wins if set and available,
 * otherwise the best available backend is used. setActive() overrides
 * the choice at runtime (used by tests and benches to compare backends);
 * the per-call Backend overload bypasses the process default entirely.
 *
 * Numerical contract (the documented cross-backend tolerance): both
 * backends accumulate every output element as a single running sum over
 * k in ascending order, so they differ only in rounding — the AVX2 path
 * uses fused multiply-add (one rounding per step) where the scalar path
 * rounds the product and the sum separately. Per element the standard
 * forward-error bound applies to each backend:
 *
 *   |c_computed - c_exact| <= k * eps * sum_k |a_ik| * |b_kj|
 *
 * with eps = FLT_EPSILON, so two backends can differ by at most twice
 * that bound (in practice a few ulps). The bound test_gemm enforces
 * per element, against a float64 reference, is exactly
 *
 *   2 * (k + 1) * eps * sum_k |a_ik| * |b_kj|  +  1e-7
 *
 * (the factor 2 covers the reference's own rounding, the absolute
 * 1e-7 floors the bound for tiny or cancelling dot products); a
 * backend whose error exceeds that fails CI. Whole-model outputs
 * agree across backends to 1e-3 max-abs-diff (also asserted). Each
 * backend on its own is fully deterministic.
 *
 * Thread-safety: multiply() is safe to call from any number of threads
 * concurrently (the packing arena is thread-local, so the steady state
 * stays allocation-free per worker, matching the AttentionContext
 * design). setActive() is not synchronized with in-flight multiplies
 * and is meant for test/bench setup points.
 */

#ifndef VITALITY_TENSOR_GEMM_H
#define VITALITY_TENSOR_GEMM_H

#include <optional>
#include <string>

#include "tensor/matrix.h"

namespace vitality {

class Gemm
{
  public:
    enum class Backend
    {
        Scalar, ///< Portable cache-blocked loops; always available.
        Avx2,   ///< 6x16 AVX2+FMA microkernel over packed panels.
    };

    /** Which operand multiply() transposes (never materialized). */
    enum class Trans
    {
        None, ///< C = A * B         (A m x k, B k x n)
        A,    ///< C = A^T * B       (A k x m, B k x n)
        B,    ///< C = A * B^T       (A m x k, B n x k)
    };

    /**
     * C = op(A) * op(B) on the active backend. dst is resized to m x n
     * (recycling its storage) and fully overwritten. Shape mismatches
     * and dst aliasing an input throw std::invalid_argument.
     */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans = Trans::None);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans, Backend backend);

    /** The backend multiply() currently dispatches to. */
    static Backend active();

    /**
     * Force the process-wide backend (test/bench hook). Throws
     * std::invalid_argument if the backend is not available here.
     */
    static void setActive(Backend backend);

    /** True if the backend is compiled in and supported by this CPU. */
    static bool available(Backend backend);

    /** "scalar" or "avx2". */
    static const char *backendName(Backend backend);

    /** Name of the active backend, for bench/trajectory reporting. */
    static const char *activeName() { return backendName(active()); }

    /** Parse a VITALITY_GEMM value; nullopt on unrecognized text. */
    static std::optional<Backend> parseBackend(const std::string &name);
};

} // namespace vitality

#endif // VITALITY_TENSOR_GEMM_H
