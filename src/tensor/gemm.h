/**
 * @file
 * Runtime-dispatched GEMM: the single entry point every matmul in the
 * library funnels through.
 *
 * ViTALiTy's Taylor branch turns attention into dense low-rank GEMMs, so
 * this kernel is the whole hot path. Gemm::multiply computes
 *
 *   C = op(A) * op(B)      op in {none, transpose-A, transpose-B}
 *
 * and dispatches to one of two backends:
 *
 *   - Scalar: the portable cache-blocked loops (always compiled, always
 *     available — the reference implementation).
 *   - Avx2:   a 6x16 register-blocked AVX2+FMA microkernel over packed
 *     A/B panels staged in a thread-local Workspace arena, with kc
 *     cache-blocking for deep-K shapes (the DeiT MLP projections run K
 *     up to 3072; one unbroken K sweep would stream megabytes of packed
 *     A through L2 per column panel). Compiled only when the build
 *     enables it (-DVITALITY_ENABLE_AVX2=ON, the default) and selected
 *     only when CPUID reports AVX2 and FMA support.
 *
 * The default backend is resolved once per process: the VITALITY_GEMM
 * environment variable ("scalar" or "avx2") wins if set and available,
 * otherwise the best available backend is used. setActive() overrides
 * the choice at runtime (used by tests and benches to compare backends);
 * the per-call Backend overload bypasses the process default entirely.
 *
 * Fused epilogue
 * --------------
 * Production runtimes fold the cheap vector post-processing of a dense
 * layer into the GEMM's write-back instead of re-walking the output.
 * The Epilogue descriptor captures the three post-ops the ViT dense
 * path needs; per output element (i, j), writing P = op(A)op(B):
 *
 *   t      = P(i, j)
 *   t     += bias(0, j)      if bias        (row-broadcast bias)
 *   t      = gelu(t)         if act == Gelu (tanh-approximation GELU)
 *   C(i,j) = C(i,j) + t      if accumulate  (residual add; C preshaped)
 *          = t               otherwise
 *
 * That element-wise order is exactly the order the unfused sequence
 * (multiply, broadcastAddRowInto, geluInto, addInto) applies, so a
 * fused call is bitwise-identical to the unfused passes on the same
 * backend — asserted by test_gemm for every epilogue combination on
 * both backends, and the basis on which VitEncoder's fused rewrite
 * kept all of its bitwise batch/sequential parity guarantees. The
 * VITALITY_EPILOGUE environment variable ("fused", the default,
 * "unfused", or "fast") or setEpilogueMode() force the unfused
 * fallback path — a bench/debug lever, not a numerics one, precisely
 * because those two modes agree bitwise — or the fast mode, which
 * additionally swaps the GELU's std::tanh for the vectorized
 * polynomial tanhApprox (tensor/ops.h; <= 4e-7 absolute error, the
 * one mode that is a numerics lever, and an opt-in one).
 *
 * Numerical contract (the documented cross-backend tolerance): both
 * backends accumulate every output element as a single running sum over
 * k in ascending order, so they differ only in rounding — the AVX2 path
 * uses fused multiply-add (one rounding per step) where the scalar path
 * rounds the product and the sum separately. kc blocking does not widen
 * the bound: partial sums round-trip through float32 memory between kc
 * blocks, and a float32 store/reload is exact, so the accumulation
 * sequence per element is unchanged. The same holds for row-band
 * parallelism (below): bands partition output rows, every element is
 * still produced by one uninterrupted ascending-k sum, so results are
 * bitwise-identical at every thread count. Per element the standard
 * forward-error bound applies to each backend:
 *
 *   |c_computed - c_exact| <= k * eps * sum_k |a_ik| * |b_kj|
 *
 * with eps = FLT_EPSILON, so two backends can differ by at most twice
 * that bound (in practice a few ulps). The bound test_gemm enforces
 * per element, against a float64 reference, is exactly
 *
 *   2 * (k + 1) * eps * sum_k |a_ik| * |b_kj|  +  1e-7
 *
 * (the factor 2 covers the reference's own rounding, the absolute
 * 1e-7 floors the bound for tiny or cancelling dot products); a
 * backend whose error exceeds that fails CI. Whole-model outputs
 * agree across backends to 1e-3 max-abs-diff (also asserted). Each
 * backend on its own is fully deterministic.
 *
 * INT8 quantized path
 * -------------------
 * The quantized multiply() overloads compute the same C = op(A)*op(B)
 * over a QuantizedMatrix activation A (affine, [0, 127] domain) and a
 * QuantizedMatrix weight B (symmetric, [-127, 127], zero point 0),
 * dequantizing in the write-back:
 *
 *   S(i,j)  = sum_k qa(i,k) * qw(k,j)            (exact int32)
 *   C(i,j)  = (S(i,j) - za_i * wsum_j) * (sa_i * sw)
 *
 * then the standard epilogue chain (bias, GELU, accumulate) in the
 * canonical order, where za_i/sa_i are A's (per-row or per-tensor)
 * zero point and scale, sw is B's scale, and wsum_j = sum_k qw(k,j)
 * is the per-column weight sum that folds A's zero point out of the
 * integer product. Two backends exist, mirroring the fp32 pair: a
 * scalar reference (always built) and an AVX2 microkernel
 * (_mm256_maddubs_epi16 + _mm256_madd_epi16 into int32 accumulators;
 * the [0,127] x [-127,127] operand ranges make the maddubs pair-sum
 * provably saturation-free). Because the integer accumulation is
 * exact in any order and the dequant + epilogue is a shared
 * lane-exact program, the two int8 backends are BITWISE-identical to
 * each other — at every shape, transpose mode, epilogue, and band
 * count (asserted by test_quant) — unlike the fp32 pair, which only
 * agree within the rounding bound above. Versus the fp32 result the
 * quantized path differs by the quantization error; per element,
 *
 *   |c_int8 - c_fp32| <= sa_i/2 * sum_k |w_hat_kj|
 *                      + sw/2   * sum_k |a_ik|       (+ fp rounding)
 *
 * with w_hat the dequantized weights — the bound test_quant asserts
 * against a float64 reference. Restrictions: the first operand must
 * be ActivationU7-kind and the second WeightS8-kind, and a per-row
 * quantized A cannot be used with Trans::A (the transpose reassigns
 * row identities); violations throw std::invalid_argument.
 *
 * The VITALITY_QUANT environment variable ("off", the default, or
 * "int8") / setQuantMode() select the model-level execution mode:
 * VitEncoder routes its dense stages (QKV, attention output
 * projection, both MLP GEMMs) through this path when the mode is
 * Int8, quantizing activations per call (per-row) and caching
 * quantized weights. "off" leaves every fp32 path bitwise-untouched;
 * the quantized overloads themselves are callable regardless of the
 * knob.
 *
 * Intra-GEMM parallelism
 * ----------------------
 * The tensor layer cannot depend on the runtime layer, so parallelism
 * is injected: the runtime's ThreadPool installs a ParallelRunner
 * (setParallelRunner) that fans row bands across its workers, and
 * multiply() partitions M into microkernel-aligned bands when the
 * runner reports width > 1 and the product is large enough to amortize
 * the fan-out (the size heuristic keeps layer-norm-sized GEMMs
 * sequential). The runner reports width 1 when the calling thread is
 * itself a pool worker, which is how the batched path keeps its
 * image-level parallelism without oversubscribing: a GEMM running
 * inside a per-image task stays sequential. setMaxThreads() (test
 * hook) and the VITALITY_THREADS environment variable cap the band
 * count; each band packs its own panels in its worker's thread-local
 * Workspace, so the steady state stays allocation-free per worker.
 *
 * Thread-safety: multiply() is safe to call from any number of threads
 * concurrently (the packing arena is thread-local, so the steady state
 * stays allocation-free per worker, matching the AttentionContext
 * design). setActive(), setMaxThreads(), setEpilogueMode() and
 * setParallelRunner() are not synchronized with in-flight multiplies
 * and are meant for setup/teardown points (ThreadPool un-installs its
 * runner in its destructor, before joining its workers).
 */

#ifndef VITALITY_TENSOR_GEMM_H
#define VITALITY_TENSOR_GEMM_H

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "tensor/matrix.h"

namespace vitality {

class PackedMatrix;
class QuantizedMatrix;

class Gemm
{
  public:
    enum class Backend
    {
        Scalar, ///< Portable cache-blocked loops; always available.
        Avx2,   ///< 6x16 AVX2+FMA microkernel over packed panels.
    };

    /** Which operand multiply() transposes (never materialized). */
    enum class Trans
    {
        None, ///< C = A * B         (A m x k, B k x n)
        A,    ///< C = A^T * B       (A k x m, B k x n)
        B,    ///< C = A * B^T       (A m x k, B n x k)
    };

    /**
     * Post-ops fused into the GEMM write-back (see the file comment for
     * the exact element-wise order and the bitwise-parity contract).
     */
    struct Epilogue
    {
        enum class Act : unsigned char
        {
            None, ///< Identity.
            Gelu, ///< tanh-approximation GELU (geluScalar in tensor/ops.h).
            /**
             * GELU with the polynomial tanhApprox inside
             * (geluApproxScalar in tensor/ops.h): vectorized in the
             * AVX2 write-back, bitwise-identical to the scalar
             * fallback on every backend and edge path, within the
             * documented 4e-7 tanh bound of Act::Gelu. Normally
             * selected via VITALITY_EPILOGUE=fast rather than
             * requested directly.
             */
            GeluFast,
        };

        /**
         * C += result instead of C = result (the residual add). dst
         * must already be m x n; its contents are read, not discarded.
         */
        bool accumulate = false;

        /**
         * Row-broadcast bias, a 1 x n row vector added to every output
         * row before the activation. Not owned; must outlive the call
         * and must not alias dst.
         */
        const Matrix *bias = nullptr;

        Act act = Act::None;

        /** True when the epilogue is a plain overwrite (no post-ops). */
        bool trivial() const
        {
            return !accumulate && bias == nullptr && act == Act::None;
        }

        /** C = AB + 1 * bias. */
        static Epilogue withBias(const Matrix &b)
        {
            return Epilogue{false, &b, Act::None};
        }

        /** C = gelu(AB + 1 * bias). */
        static Epilogue withBiasGelu(const Matrix &b)
        {
            return Epilogue{false, &b, Act::Gelu};
        }

        /** C += AB + 1 * bias. */
        static Epilogue accumulateWithBias(const Matrix &b)
        {
            return Epilogue{true, &b, Act::None};
        }
    };

    /**
     * "fused" (default), "unfused", or "fast" — see VITALITY_EPILOGUE
     * above. Fast is fused plus the vectorized polynomial tanh in the
     * GELU: Act::Gelu epilogues are executed as Act::GeluFast. Unlike
     * the fused/unfused pair (bitwise-identical), fast trades the
     * documented tanhApprox bound (<= 4e-7 absolute, tensor/ops.h)
     * for skipping a std::tanh per MLP-hidden element; the fast
     * path is still deterministic and bitwise-identical across
     * backends' epilogue application.
     */
    enum class EpilogueMode
    {
        Fused,   ///< Post-ops applied in the backend's write-back.
        Unfused, ///< Plain GEMM to scratch + separate epilogue pass.
        FusedFast, ///< Fused, with Gelu executed as GeluFast.
    };

    /**
     * Injected intra-GEMM parallelism (installed by the runtime layer's
     * ThreadPool; the tensor layer never sees the pool type). Both
     * callbacks must be callable from any thread.
     */
    struct ParallelRunner
    {
        /**
         * How many bands the calling thread may fan out right now;
         * return 1 to force sequential execution (e.g. when the caller
         * is itself a pool worker).
         */
        std::function<size_t()> width;

        /**
         * Run fn(0) .. fn(tasks - 1) concurrently and return when all
         * completed, rethrowing the first exception.
         */
        std::function<void(size_t tasks,
                           const std::function<void(size_t)> &fn)>
            run;
    };

    /**
     * C = op(A) * op(B) on the active backend. dst is resized to m x n
     * (recycling its storage) and fully overwritten. Shape mismatches
     * and dst aliasing an input throw std::invalid_argument.
     */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans = Trans::None);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans, Backend backend);

    /**
     * C = epilogue(op(A) * op(B)) on the active backend. With
     * epilogue.accumulate, dst must already be m x n (throws otherwise)
     * and is read-modified-written; otherwise dst is resized and fully
     * overwritten as usual. epilogue.bias must be 1 x n and must not
     * alias dst.
     */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans, const Epilogue &epilogue);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const Matrix &a, const Matrix &b,
                         Trans trans, const Epilogue &epilogue,
                         Backend backend);

    /**
     * INT8 C = epilogue(dequant(op(A) * op(B))) on the active backend
     * — see "INT8 quantized path" in the file comment for the exact
     * arithmetic, the bitwise scalar/AVX2 contract, and the operand
     * restrictions. a must be ActivationU7-kind, b WeightS8-kind;
     * epilogue semantics (resize vs accumulate, bias shape/aliasing)
     * match the fp32 overloads.
     */
    static void multiply(Matrix &dst, const QuantizedMatrix &a,
                         const QuantizedMatrix &b,
                         Trans trans = Trans::None);

    /** Same, with a fused epilogue (semantics as the fp32 overload). */
    static void multiply(Matrix &dst, const QuantizedMatrix &a,
                         const QuantizedMatrix &b, Trans trans,
                         const Epilogue &epilogue);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const QuantizedMatrix &a,
                         const QuantizedMatrix &b, Trans trans,
                         const Epilogue &epilogue, Backend backend);

    /**
     * C = epilogue(op(A) * op(B)) with a PREPACKED right-hand side
     * (tensor/packed_weights.h): the AVX2 backend consumes b's stored
     * panels and skips its per-call pack loop; the scalar backend runs
     * its unpack-free reference path against b's borrowed source.
     * Either way the result is bitwise-identical to the eager call on
     * the same backend. op(B) was baked at pack time, so transA names
     * only the A side: Trans::None or Trans::A (Trans::B throws, as
     * does Trans::A against a Trans::B-packed b — the backends cannot
     * express A^T * B^T). b must hold fp32 panels (packFp32).
     */
    static void multiply(Matrix &dst, const Matrix &a,
                         const PackedMatrix &b, Trans transA,
                         const Epilogue &epilogue);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const Matrix &a,
                         const PackedMatrix &b, Trans transA,
                         const Epilogue &epilogue, Backend backend);

    /**
     * INT8 twin of the prepacked multiply: b must hold int8 panels
     * (packInt8), whose pack-time per-column weight sums also replace
     * the dispatcher's per-call wsum computation. transA restrictions
     * as above; operand-kind restrictions as the eager int8 overloads.
     */
    static void multiply(Matrix &dst, const QuantizedMatrix &a,
                         const PackedMatrix &b, Trans transA,
                         const Epilogue &epilogue);

    /** Same, on an explicitly chosen backend (throws if unavailable). */
    static void multiply(Matrix &dst, const QuantizedMatrix &a,
                         const PackedMatrix &b, Trans transA,
                         const Epilogue &epilogue, Backend backend);

    /** The backend multiply() currently dispatches to. */
    static Backend active();

    /**
     * Force the process-wide backend (test/bench hook). Throws
     * std::invalid_argument if the backend is not available here.
     */
    static void setActive(Backend backend);

    /** True if the backend is compiled in and supported by this CPU. */
    static bool available(Backend backend);

    /** "scalar" or "avx2". */
    static const char *backendName(Backend backend);

    /** Name of the active backend, for bench/trajectory reporting. */
    static const char *activeName() { return backendName(active()); }

    /** Parse a VITALITY_GEMM value; nullopt on unrecognized text. */
    static std::optional<Backend> parseBackend(const std::string &name);

    /**
     * Install (or, with nullptr, remove) the intra-GEMM parallel
     * runner. The runtime layer's ThreadPool installs itself here;
     * call sites never touch this directly.
     */
    static void
    setParallelRunner(std::shared_ptr<const ParallelRunner> runner);

    /** The installed runner, or nullptr. */
    static std::shared_ptr<const ParallelRunner> parallelRunner();

    /**
     * Cap the row-band fan-out (test hook; 0 = uncapped). The
     * VITALITY_THREADS environment variable provides the same cap
     * process-wide and is read once, lazily.
     */
    static void setMaxThreads(size_t cap);
    static size_t maxThreads();

    /**
     * Bands a multiply() issued from the calling thread would fan out
     * at most: the runner's width under the thread cap, 1 when no
     * runner is installed. Benches record this next to pool_threads.
     */
    static size_t parallelWidth();

    /** Active epilogue mode (VITALITY_EPILOGUE, resolved lazily). */
    static EpilogueMode epilogueMode();

    /** Force the epilogue mode (test/bench hook). */
    static void setEpilogueMode(EpilogueMode mode);

    /** "fused", "unfused", or "fast", for bench/trajectory reporting. */
    static const char *epilogueModeName(EpilogueMode mode);

    /** Parse a VITALITY_EPILOGUE value; nullopt on unrecognized text. */
    static std::optional<EpilogueMode>
    parseEpilogueMode(const std::string &name);

    /**
     * Model-level quantized execution mode (VITALITY_QUANT, resolved
     * lazily): Off keeps every dense stage fp32; Int8 makes
     * VitEncoder route its dense stages through the quantized
     * multiply() overloads.
     */
    enum class QuantMode
    {
        Off,  ///< fp32 dense path (the default).
        Int8, ///< INT8 dense path with fp32 dequant write-back.
    };

    /** Active quantized mode (VITALITY_QUANT, resolved lazily). */
    static QuantMode quantMode();

    /** Force the quantized mode (test/bench hook). */
    static void setQuantMode(QuantMode mode);

    /** "off" or "int8", for bench/trajectory reporting. */
    static const char *quantModeName(QuantMode mode);

    /** Parse a VITALITY_QUANT value; nullopt on unrecognized text. */
    static std::optional<QuantMode> parseQuantMode(const std::string &name);

  private:
    /**
     * The one fp32 execution body every fp32 overload funnels into. A
     * non-null packedB carries prepacked full-k op(B) panels (the
     * PackedMatrix layout); the AVX2 backend consumes them in place of
     * its per-call pack, the scalar backend ignores them and reads b.
     */
    static void multiplyImpl(Matrix &dst, const Matrix &a,
                             const Matrix &b, Trans trans,
                             const Epilogue &epilogue, Backend backend,
                             const float *packedB);

    /**
     * The int8 twin: packedB carries prepacked k-quad panels and
     * packedWsum the pack-time per-column weight sums (both null on
     * the eager path, where wsum is computed per call).
     */
    static void multiplyImplInt8(Matrix &dst, const QuantizedMatrix &a,
                                 const QuantizedMatrix &b, Trans trans,
                                 const Epilogue &epilogue,
                                 Backend backend, const int8_t *packedB,
                                 const int32_t *packedWsum);
};

} // namespace vitality

#endif // VITALITY_TENSOR_GEMM_H
