/**
 * @file
 * A uniform-shape batch of token matrices.
 *
 * The paper reports its end-to-end DeiT speedups over batched inference;
 * serving workloads (DynamicViT-style) likewise deliver images in groups.
 * A Batch is the tensor-layer representation of that: B images, each an
 * identical rows x cols token matrix, stored as a vector of Matrix so
 * every image keeps the row-major layout the kernels already consume.
 * The uniform-shape invariant is established at construction (and by
 * resize()); the runtime layer relies on it to compute per-head slices
 * once for the whole batch.
 *
 * at()/operator[] hand out mutable Matrix references so callers can fill
 * images in place; reshaping an individual image through such a reference
 * breaks the invariant and is a caller error (the runtime's batch entry
 * points re-validate shapes and throw).
 *
 * Like Matrix::resize, Batch::resize recycles storage: shrinking or
 * re-shaping never reallocates an image whose buffer is already large
 * enough, which is what makes per-call batch activations allocation-free
 * in steady state.
 */

#ifndef VITALITY_TENSOR_BATCH_H
#define VITALITY_TENSOR_BATCH_H

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace vitality {

class Rng;

/** B token matrices of identical shape (one per image). */
class Batch
{
  public:
    /** An empty batch (0 images). */
    Batch() = default;

    /** images matrices of rows x cols, zero-filled. */
    Batch(size_t images, size_t rows, size_t cols);

    /**
     * Adopt an existing collection of matrices. All images must share one
     * shape; throws std::invalid_argument otherwise.
     */
    static Batch fromMatrices(std::vector<Matrix> images);

    /** images matrices of i.i.d. N(mean, stddev^2) entries from rng. */
    static Batch randn(size_t images, size_t rows, size_t cols, Rng &rng,
                       float mean = 0.0f, float stddev = 1.0f);

    /** Number of images B. */
    size_t size() const { return images_.size(); }
    bool empty() const { return images_.empty(); }

    /** Rows of every image (0 for an empty batch). */
    size_t rows() const { return images_.empty() ? 0 : images_[0].rows(); }

    /** Columns of every image (0 for an empty batch). */
    size_t cols() const { return images_.empty() ? 0 : images_[0].cols(); }

    /** Image access; at() throws std::out_of_range on a bad index. */
    Matrix &at(size_t i);
    const Matrix &at(size_t i) const;
    Matrix &operator[](size_t i) { return images_[i]; }
    const Matrix &operator[](size_t i) const { return images_[i]; }

    /**
     * Resize to images x rows x cols, recycling every image's storage
     * (Matrix::resize semantics: contents are unspecified afterwards).
     */
    void resize(size_t images, size_t rows, size_t cols);

    /** Resize to other's shape and copy its contents. */
    void copyFrom(const Batch &other);

    /** True if image counts, shapes, and all entries match exactly. */
    bool operator==(const Batch &other) const;
    bool operator!=(const Batch &other) const { return !(*this == other); }

    /** True if shapes match and every entry differs by at most tol. */
    bool allClose(const Batch &other, float tol = 1e-5f) const;

    /** Human-readable shape, e.g. "[4 x 197 x 192]". */
    std::string shapeStr() const;

    /** @name Range-for iteration over images */
    /// @{
    std::vector<Matrix>::iterator begin() { return images_.begin(); }
    std::vector<Matrix>::iterator end() { return images_.end(); }
    std::vector<Matrix>::const_iterator begin() const
    {
        return images_.begin();
    }
    std::vector<Matrix>::const_iterator end() const
    {
        return images_.end();
    }
    /// @}

  private:
    std::vector<Matrix> images_;
};

} // namespace vitality

#endif // VITALITY_TENSOR_BATCH_H
