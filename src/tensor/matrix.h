/**
 * @file
 * Dense row-major float32 matrix.
 *
 * Matrix is the single tensor type used throughout the library. Attention
 * kernels, the neural-network substrate, and the workload analyzers all
 * operate on 2-D matrices; batched / multi-head tensors are represented as
 * collections of Matrix (one per head), matching how the paper's Algorithm 1
 * is written per head.
 *
 * Shape errors raise std::invalid_argument: they are caller mistakes, not
 * library bugs, and callers (including the test-suite) may want to catch
 * them.
 */

#ifndef VITALITY_TENSOR_MATRIX_H
#define VITALITY_TENSOR_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace vitality {

class Rng;

/** A dense rows x cols matrix of float, stored row-major. */
class Matrix
{
  public:
    /** An empty 0 x 0 matrix. */
    Matrix();

    /** A rows x cols matrix initialized to zero. */
    Matrix(size_t rows, size_t cols);

    /** A rows x cols matrix with every entry set to fill. */
    Matrix(size_t rows, size_t cols, float fill);

    /**
     * Build from nested initializer lists, e.g. {{1, 2}, {3, 4}}.
     * All inner lists must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<float>> rows);

    /** @name Factories */
    /// @{
    static Matrix zeros(size_t rows, size_t cols);
    static Matrix ones(size_t rows, size_t cols);
    static Matrix full(size_t rows, size_t cols, float value);
    static Matrix identity(size_t n);
    /** i.i.d. N(mean, stddev^2) entries drawn from rng. */
    static Matrix randn(size_t rows, size_t cols, Rng &rng,
                        float mean = 0.0f, float stddev = 1.0f);
    /** i.i.d. U[lo, hi) entries drawn from rng. */
    static Matrix uniform(size_t rows, size_t cols, Rng &rng,
                          float lo = 0.0f, float hi = 1.0f);
    /** Wrap an existing flat row-major buffer (copied). */
    static Matrix fromFlat(size_t rows, size_t cols,
                           const std::vector<float> &flat);
    /// @}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    /** Total number of elements. */
    size_t size() const { return rows_ * cols_; }
    bool empty() const { return size() == 0; }

    /** Element access with bounds checked via VITALITY_ASSERT. */
    float &operator()(size_t r, size_t c);
    float operator()(size_t r, size_t c) const;

    /** Raw row-major storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Pointer to the start of row r. */
    float *rowPtr(size_t r) { return data_.data() + r * cols_; }
    const float *rowPtr(size_t r) const { return data_.data() + r * cols_; }

    /** Copy of row r as a 1 x cols matrix. */
    Matrix row(size_t r) const;

    /** Copy of column c as a rows x 1 matrix. */
    Matrix col(size_t c) const;

    /** Copy of the half-open row range [r0, r1) as a (r1-r0) x cols matrix. */
    Matrix rowRange(size_t r0, size_t r1) const;

    /** Copy of the half-open column range [c0, c1). */
    Matrix colRange(size_t c0, size_t c1) const;

    /** Overwrite row r with a 1 x cols matrix. */
    void setRow(size_t r, const Matrix &values);

    /** True if both shapes and all entries match exactly. */
    bool operator==(const Matrix &other) const;
    bool operator!=(const Matrix &other) const { return !(*this == other); }

    /** True if shapes match and entries differ by at most tol. */
    bool allClose(const Matrix &other, float tol = 1e-5f) const;

    /** Reshape in place; total element count must be preserved. */
    void reshape(size_t rows, size_t cols);

    /**
     * Resize to rows x cols, reusing the existing storage when it is large
     * enough (no reallocation on shrink or same-size reshape). Contents are
     * unspecified afterwards; callers are expected to overwrite every
     * entry. This is the primitive Workspace builds its recycling on.
     */
    void resize(size_t rows, size_t cols);

    /** Resize to the shape of other and copy its contents. */
    void copyFrom(const Matrix &other);

    /** Set every entry to value. */
    void fill(float value);

    /** Human-readable shape, e.g. "[196 x 64]". */
    std::string shapeStr() const;

    /** Render entries for debugging (small matrices only). */
    std::string toString(int decimals = 4) const;

  private:
    size_t rows_;
    size_t cols_;
    std::vector<float> data_;
};

} // namespace vitality

#endif // VITALITY_TENSOR_MATRIX_H
