#include "tensor/workspace.h"

#include <cstdint>
#include <stdexcept>

#include "base/check.h"

namespace vitality {

Matrix &
Workspace::acquire(size_t rows, size_t cols)
{
    if (used_ == slots_.size())
        slots_.emplace_back(std::make_unique<Matrix>());
    Matrix &m = *slots_[used_++];
    m.resize(rows, cols);
    return m;
}

Matrix &
Workspace::acquireZeroed(size_t rows, size_t cols)
{
    Matrix &m = acquire(rows, cols);
    m.fill(0.0f);
    return m;
}

float *
Workspace::acquireAligned(size_t count, size_t alignBytes)
{
    if (alignBytes == 0 || (alignBytes & (alignBytes - 1)) != 0 ||
        alignBytes % alignof(float) != 0) {
        throw std::invalid_argument(
            "Workspace::acquireAligned: alignment must be a power of "
            "two multiple of alignof(float)");
    }
    const size_t slack = alignBytes / sizeof(float);
    Matrix &m = acquire(1, count + slack);
    const uintptr_t raw = reinterpret_cast<uintptr_t>(m.data());
    const uintptr_t aligned = (raw + alignBytes - 1) & ~(uintptr_t(alignBytes) - 1);
    float *ptr = reinterpret_cast<float *>(aligned);
    // The round-up must land inside the over-allocated slot and on the
    // requested boundary — the AVX2 kernels issue aligned loads on the
    // result.
    VITALITY_CHECK(check::isAligned(ptr, alignBytes),
                   "acquireAligned: %p not %zu-byte aligned",
                   static_cast<void *>(ptr), alignBytes);
    VITALITY_CHECK(ptr + count <= m.data() + m.size(),
                   "acquireAligned: aligned span [%zu floats] leaves the "
                   "backing slot",
                   count);
    return ptr;
}

size_t
Workspace::elementsReserved() const
{
    size_t total = 0;
    for (const auto &slot : slots_)
        total += slot->size();
    return total;
}

} // namespace vitality
