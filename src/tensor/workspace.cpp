#include "tensor/workspace.h"

namespace vitality {

Matrix &
Workspace::acquire(size_t rows, size_t cols)
{
    if (used_ == slots_.size())
        slots_.emplace_back(std::make_unique<Matrix>());
    Matrix &m = *slots_[used_++];
    m.resize(rows, cols);
    return m;
}

Matrix &
Workspace::acquireZeroed(size_t rows, size_t cols)
{
    Matrix &m = acquire(rows, cols);
    m.fill(0.0f);
    return m;
}

size_t
Workspace::elementsReserved() const
{
    size_t total = 0;
    for (const auto &slot : slots_)
        total += slot->size();
    return total;
}

} // namespace vitality
