/**
 * @file
 * Shared constants of the polynomial transcendental core.
 *
 * The scalar programs live in tensor/ops.cpp (exp2Core and friends,
 * baseline ISA, single out-of-line definitions) and the AVX2 lane
 * programs in tensor/gemm_avx2.cpp; both must execute the exact same
 * operation sequence over the exact same constants for the documented
 * scalar == vector bitwise contract to hold, so the constants live
 * here, once. Only constexpr values — no functions — so including
 * this from the -mavx2 -mfma translation unit can never emit a
 * VEX-encoded body the linker might pick for baseline callers (the
 * geluScalar rationale in tensor/ops.h).
 *
 * Internal to the library; not part of the public ops surface (the
 * sparse layer's quantizer borrows kRoundMagic for the same
 * vectorizable nearest-even rounding).
 */

#ifndef VITALITY_TENSOR_TRANSCENDENTAL_H
#define VITALITY_TENSOR_TRANSCENDENTAL_H

namespace vitality {
namespace detail {

/** 2^f on [-0.5, 0.5]: truncated Taylor, c_i = ln(2)^i / i!. The
 * degree-7 remainder is < 6e-9 relative — below float round-off. */
constexpr float kExp2C1 = 0.69314718055994531f;
constexpr float kExp2C2 = 0.24022650695910072f;
constexpr float kExp2C3 = 0.055504108664821580f;
constexpr float kExp2C4 = 0.0096181291076284772f;
constexpr float kExp2C5 = 0.0013333558146428443f;
constexpr float kExp2C6 = 0.00015403530393381609f;
constexpr float kExp2C7 = 0.000015252733804059841f;

/** 1.5 * 2^23: adding and subtracting rounds to nearest-even without
 * roundps/nearbyint, valid for |z| < 2^22 (the core clamps far below
 * that), so the loops auto-vectorize under baseline SSE2 too. */
constexpr float kRoundMagic = 12582912.0f;

constexpr float kLog2e = 1.4426950408889634f;
constexpr float kTwoLog2e = 2.8853900817779268f;

/** Beyond |x| = 10, (e^2x - 1) / (e^2x + 1) rounds to +/-1 in float. */
constexpr float kTanhClamp = 10.0f;

/** The exp2 core's argument clamp: the normal-exponent range, so the
 * 2^n exponent-bit scale never overflows or denormalizes. */
constexpr float kExp2Clamp = 126.0f;

/** sqrt(2/pi) and the cubic coefficient of the tanh-approximation
 * GELU, exactly as geluScalar spells them. */
constexpr float kGeluSqrt2OverPi = 0.7978845608f;
constexpr float kGeluCubic = 0.044715f;

/**
 * The scalar exp2 core, defined once in ops.cpp (baseline ISA — a
 * declaration here emits nothing, so the no-VEX-bodies rule above
 * still holds): 2^z with z clamped to +/-kExp2Clamp. The AVX2 TU
 * calls it for sub-vector-width tails so every element, vector or
 * scalar, runs the identical program.
 */
float exp2CoreScalar(float z);

} // namespace detail
} // namespace vitality

#endif // VITALITY_TENSOR_TRANSCENDENTAL_H
