/**
 * @file
 * A recycling arena for scratch matrices.
 *
 * Every attention kernel needs a handful of intermediates (centered keys,
 * the global context matrix, numerators, denominators, ...). Allocating
 * them fresh on every forward() call puts a dozen heap allocations on the
 * hot path of every head of every layer. A Workspace owns those scratch
 * matrices instead: acquire() checks out the next slot, resized to the
 * requested shape but reusing its storage, and a Frame returns the slots
 * checked out inside it when it goes out of scope. After the first call
 * with a given shape profile, the steady state performs zero allocations.
 *
 * Workspaces are deliberately not thread-safe: the runtime layer gives
 * each worker thread its own Workspace (inside an AttentionContext), which
 * is both simpler and faster than sharing one behind a lock.
 */

#ifndef VITALITY_TENSOR_WORKSPACE_H
#define VITALITY_TENSOR_WORKSPACE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace vitality {

/** An arena of recyclable scratch matrices with stack-like checkout. */
class Workspace
{
  public:
    Workspace() = default;

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * Check out the next scratch slot, resized to rows x cols. The
     * returned reference stays valid until reset() (slots are held by
     * pointer, so growing the arena never moves them). Contents are
     * unspecified; the caller must overwrite every entry it reads.
     */
    Matrix &acquire(size_t rows, size_t cols);

    /** acquire() followed by a zero fill, for accumulation targets. */
    Matrix &acquireZeroed(size_t rows, size_t cols);

    /**
     * Check out a flat buffer of count floats whose start is aligned to
     * alignBytes (a power of two, multiple of alignof(float)). Matrix
     * storage is only malloc-aligned (16 bytes on glibc), so the GEMM
     * backends use this for their packed panels: the slot over-allocates
     * by one alignment unit and the returned pointer is rounded up
     * inside it. Lifetime rules match acquire(): valid until the
     * enclosing Frame rewinds or reset().
     */
    float *acquireAligned(size_t count, size_t alignBytes = 32);

    /** Return every slot to the pool. Storage is retained for reuse. */
    void reset() { used_ = 0; }

    /** Slots currently checked out. */
    size_t slotsInUse() const { return used_; }

    /** Slots ever created (high-water mark of concurrent checkouts). */
    size_t slotCount() const { return slots_.size(); }

    /** Total floats held across all slots, for capacity reporting. */
    size_t elementsReserved() const;

    /**
     * RAII checkout scope: records the checkout cursor on construction
     * and rewinds to it on destruction, returning every slot acquired
     * inside the frame. Frames nest; a kernel opens one at the top of its
     * forwardInto() so helper routines can acquire freely.
     */
    class Frame
    {
      public:
        explicit Frame(Workspace &ws) : ws_(ws), mark_(ws.used_) {}
        ~Frame() { ws_.used_ = mark_; }

        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        Workspace &ws_;
        size_t mark_;
    };

  private:
    std::vector<std::unique_ptr<Matrix>> slots_;
    size_t used_ = 0;
};

} // namespace vitality

#endif // VITALITY_TENSOR_WORKSPACE_H
