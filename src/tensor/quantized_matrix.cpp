#include "tensor/quantized_matrix.h"

#include <algorithm>

#include "base/check.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/ops.h"
#include "tensor/transcendental.h"

namespace vitality {

void
QuantizedMatrix::reshape(size_t rows, size_t cols, Kind kind,
                         Granularity granularity)
{
    rows_ = rows;
    cols_ = cols;
    kind_ = kind;
    granularity_ = granularity;
    data_.resize(rows * cols);
}

void
QuantizedMatrix::assignWeights(const Matrix &m)
{
    // maxAbs of a NaN-bearing matrix poisons the scale for every
    // element; quantization is where the corruption becomes silent.
    VITALITY_DCHECK(check::allFinite(m.data(), m.size()),
                    "assignWeights: non-finite weights %s",
                    m.shapeStr().c_str());
    reshape(m.rows(), m.cols(), Kind::WeightS8, Granularity::PerTensor);
    scale_.assign(1, 1.0f);
    zero_.assign(1, 0);
    if (empty())
        return;
    const float max_mag = maxAbs(m);
    if (max_mag == 0.0f) {
        std::fill(data_.begin(), data_.end(), int8_t{0});
        return;
    }
    scale_[0] = max_mag / 127.0f;
    // Multiply by the reciprocal-style 127 / max rather than divide by
    // the rounded step: both are one float rounding, this one keeps the
    // extremes at exactly +/-127 before the clamp.
    const float inv = 127.0f / max_mag;
    const float *src = m.data();
    int8_t *dst = data_.data();
    const size_t count = size();
    for (size_t i = 0; i < count; ++i) {
        float q = (src[i] * inv + detail::kRoundMagic) - detail::kRoundMagic;
        q = std::min(127.0f, std::max(-127.0f, q));
        dst[i] = static_cast<int8_t>(q);
    }
}

void
QuantizedMatrix::assignActivations(const Matrix &m, Granularity granularity)
{
    VITALITY_DCHECK(check::allFinite(m.data(), m.size()),
                    "assignActivations: non-finite activations %s",
                    m.shapeStr().c_str());
    reshape(m.rows(), m.cols(), Kind::ActivationU7, granularity);
    const size_t groups =
        granularity == Granularity::PerRow ? rows_ : size_t{1};
    scale_.assign(std::max<size_t>(groups, 1), 1.0f);
    zero_.assign(std::max<size_t>(groups, 1), 0);
    if (empty())
        return;
    const size_t span =
        granularity == Granularity::PerRow ? cols_ : size();
#if VITALITY_HAVE_AVX2
    // Ride the Gemm dispatcher's CPUID-checked backend choice, like
    // the approx softmax in tensor/ops.cpp: the 8-lane group kernel
    // runs the same range-scan + round/clamp/cast program lane for
    // lane, so the quantized codes, scales, and zero points cannot
    // depend on the backend. Activations are re-quantized on every
    // forward pass, which is why this sweep is worth vectorizing
    // while the one-time weight quantization is not.
    if (Gemm::active() == Gemm::Backend::Avx2) {
        for (size_t g = 0; g < groups; ++g)
            detail::quantizeActivationSpanAvx2(
                data_.data() + g * span, m.data() + g * span, span,
                scale_[g], zero_[g]);
        return;
    }
#endif
    for (size_t g = 0; g < groups; ++g) {
        const float *src = m.data() + g * span;
        int8_t *dst = data_.data() + g * span;
        // Nudge the range to include zero so it stays exactly
        // representable; with lo <= 0 <= hi the only degenerate group
        // (hi == lo) is the all-zero one.
        float lo = 0.0f, hi = 0.0f;
        for (size_t i = 0; i < span; ++i) {
            lo = std::min(lo, src[i]);
            hi = std::max(hi, src[i]);
        }
        if (hi == lo) {
            std::fill(dst, dst + span, int8_t{0});
            continue;
        }
        const float step = (hi - lo) / 127.0f;
        const float inv = 1.0f / step;
        float zpf =
            (-lo * inv + detail::kRoundMagic) - detail::kRoundMagic;
        zpf = std::min(127.0f, std::max(0.0f, zpf));
        scale_[g] = step;
        zero_[g] = static_cast<int32_t>(zpf);
        for (size_t i = 0; i < span; ++i) {
            float q = (src[i] * inv + zpf + detail::kRoundMagic) -
                      detail::kRoundMagic;
            q = std::min(127.0f, std::max(0.0f, q));
            dst[i] = static_cast<int8_t>(q);
        }
    }
}

QuantizedMatrix
QuantizedMatrix::weights(const Matrix &m)
{
    QuantizedMatrix q;
    q.assignWeights(m);
    return q;
}

QuantizedMatrix
QuantizedMatrix::activations(const Matrix &m, Granularity granularity)
{
    QuantizedMatrix q;
    q.assignActivations(m, granularity);
    return q;
}

void
QuantizedMatrix::dequantizeInto(Matrix &dst) const
{
    dst.resize(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r) {
        const float s = scale(r);
        const float zp = static_cast<float>(zeroPoint(r));
        const int8_t *src = rowPtr(r);
        float *out = dst.rowPtr(r);
        for (size_t c = 0; c < cols_; ++c)
            out[c] = (static_cast<float>(src[c]) - zp) * s;
    }
}

Matrix
QuantizedMatrix::dequantize() const
{
    Matrix m;
    dequantizeInto(m);
    return m;
}

std::string
QuantizedMatrix::shapeStr() const
{
    return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) +
           "]";
}

} // namespace vitality
