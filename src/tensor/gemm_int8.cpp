/**
 * @file
 * Scalar INT8 GEMM backend: the always-built reference the AVX2
 * microkernel must match bitwise (see gemm_int8.h). Plain int32
 * accumulation loops — correctness and portability over speed; the
 * loops still auto-vectorize under baseline SSE2.
 */

#include "tensor/gemm_int8.h"

#include <vector>

#include "tensor/quantized_matrix.h"

namespace vitality {
namespace detail {

namespace {

/** Row i of op(A) under the given transpose mode, element kk. */
inline int32_t
opAElem(const QuantizedMatrix &a, Gemm::Trans trans, size_t i, size_t kk)
{
    return trans == Gemm::Trans::A ? a.rowPtr(kk)[i] : a.rowPtr(i)[kk];
}

} // namespace

void
gemmInt8Scalar(Matrix &dst, const QuantizedMatrix &a,
               const QuantizedMatrix &b, Gemm::Trans trans,
               size_t rowBegin, size_t rowEnd, const int32_t *wsum,
               const Gemm::Epilogue &ep)
{
    const size_t n = dst.cols();
    const size_t k =
        trans == Gemm::Trans::A ? a.rows() : a.cols();
    const float bscale = b.scale(0);
    const float *bias = ep.bias ? ep.bias->rowPtr(0) : nullptr;

    static thread_local std::vector<int32_t> t_acc;
    t_acc.resize(n);
    int32_t *acc = t_acc.data();

    for (size_t i = rowBegin; i < rowEnd; ++i) {
        for (size_t j = 0; j < n; ++j)
            acc[j] = 0;
        if (trans == Gemm::Trans::B) {
            const int8_t *arow = a.rowPtr(i);
            for (size_t j = 0; j < n; ++j) {
                const int8_t *brow = b.rowPtr(j);
                int32_t s = 0;
                for (size_t kk = 0; kk < k; ++kk)
                    s += static_cast<int32_t>(arow[kk]) *
                         static_cast<int32_t>(brow[kk]);
                acc[j] = s;
            }
        } else if (trans == Gemm::Trans::A) {
            for (size_t kk = 0; kk < k; ++kk) {
                const int32_t av = opAElem(a, trans, i, kk);
                const int8_t *brow = b.rowPtr(kk);
                for (size_t j = 0; j < n; ++j)
                    acc[j] += av * static_cast<int32_t>(brow[j]);
            }
        } else {
            const int8_t *arow = a.rowPtr(i);
            for (size_t kk = 0; kk < k; ++kk) {
                const int32_t av = arow[kk];
                const int8_t *brow = b.rowPtr(kk);
                for (size_t j = 0; j < n; ++j)
                    acc[j] += av * static_cast<int32_t>(brow[j]);
            }
        }
        const float cs = a.scale(i) * bscale;
        dequantEpilogueRow(dst.rowPtr(i), acc, wsum, a.zeroPoint(i), cs,
                           bias, n, ep.accumulate, ep.act);
    }
}

} // namespace detail
} // namespace vitality
