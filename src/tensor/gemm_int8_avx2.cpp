/**
 * @file
 * AVX2 INT8 GEMM backend: a 4x16 register-blocked microkernel over
 * packed k-quad panels, with the dequant epilogue fused into the
 * write-back.
 *
 * Compiled with -mavx2 (like gemm_avx2.cpp) and only entered after
 * the runtime CPUID check. The integer core:
 *
 *   - op(A) (the [0, 127] activation) is packed into 4-row panels of
 *     k-quads — layout pa[quad][row][4 bytes] — and op(B) (the
 *     [-127, 127] weight) into 16-column panels — pb[quad][col][4
 *     bytes] — both zero-padded, so a quad of four consecutive k
 *     steps is one 32-bit broadcast from A and two ymm loads from B.
 *   - _mm256_maddubs_epi16(a, b) multiplies unsigned A bytes by
 *     signed B bytes and sums adjacent pairs into int16; with
 *     operands bounded by 127 the pair sum is at most 2 * 127 * 127
 *     = 32258 < 32767, so the saturating add can never saturate.
 *     _mm256_madd_epi16 against ones then folds the two pairs into
 *     one int32 per column, added into 8 ymm accumulators (4 rows x
 *     16 columns).
 *   - Integer accumulation is exact, so no kc cache-blocking is
 *     needed for correctness and lane order is irrelevant: the
 *     result S equals the scalar backend's bit for bit. The packed
 *     band is one byte per MAC operand — a quarter of the fp32
 *     footprint — so even the DeiT-Base K=3072 projections keep
 *     their working set L2-resident without chunking.
 *   - The write-back runs the shared dequant + epilogue program
 *     (gemm_int8.h): full 16-column tiles vectorize the exact-int32
 *     zero-point correction, the correctly-rounded int -> float
 *     conversion, and the scale/bias/accumulate float chain —
 *     lane-for-lane the same single-rounding operations as
 *     dequantEpilogueRow. Exact GELU applies the scalar function
 *     through a store/reload like the fp32 backend's exact-GELU
 *     tile; GeluFast runs the shared geluApprox8 vectors
 *     (tensor/avx2_math.h), whose bitwise contract with
 *     geluApproxScalar the fp32 backend already depends on. Ragged
 *     edges call dequantEpilogueRow itself. Scalar == AVX2 bitwise
 *     parity is therefore by construction (asserted across the whole
 *     shape grid by test_quant).
 *
 * Only rows [rowBegin, rowEnd) of C are computed; the dispatcher
 * fans 4-row-aligned bands across the thread pool exactly as it does
 * for the fp32 backend, and banding cannot change any bit of the
 * result.
 */

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/avx2_math.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/gemm_pack.h"
#include "tensor/quantized_matrix.h"

namespace vitality {
namespace detail {

// Panel geometry (kMr8, kNr8) and the packAPanelInt8/packBPanelInt8
// k-quad packers live in tensor/gemm_pack.h, shared with the
// weight-prepack path so both produce byte-identical panels.

namespace {

/**
 * tile[0:4, 0:16] = A-panel * B-panel over all k-quads, exact int32.
 * Eight ymm accumulators; each quad is one 32-bit broadcast per row
 * and a saturation-free maddubs/madd pair per row half.
 */
void
microKernelInt8_4x16(size_t quads, const int8_t *pa, const int8_t *pb,
                     int32_t *tile)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc00 = _mm256_setzero_si256(), acc01 = acc00;
    __m256i acc10 = acc00, acc11 = acc00;
    __m256i acc20 = acc00, acc21 = acc00;
    __m256i acc30 = acc00, acc31 = acc00;
    for (size_t q = 0; q < quads; ++q) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb + q * kNr8 * 4));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb + q * kNr8 * 4 + 32));
        const int8_t *aq = pa + q * kMr8 * 4;
        int32_t aw;
        __m256i av, p0, p1;

        std::memcpy(&aw, aq + 0, 4);
        av = _mm256_set1_epi32(aw);
        p0 = _mm256_maddubs_epi16(av, b0);
        p1 = _mm256_maddubs_epi16(av, b1);
        acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(p0, ones));
        acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(p1, ones));

        std::memcpy(&aw, aq + 4, 4);
        av = _mm256_set1_epi32(aw);
        p0 = _mm256_maddubs_epi16(av, b0);
        p1 = _mm256_maddubs_epi16(av, b1);
        acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(p0, ones));
        acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(p1, ones));

        std::memcpy(&aw, aq + 8, 4);
        av = _mm256_set1_epi32(aw);
        p0 = _mm256_maddubs_epi16(av, b0);
        p1 = _mm256_maddubs_epi16(av, b1);
        acc20 = _mm256_add_epi32(acc20, _mm256_madd_epi16(p0, ones));
        acc21 = _mm256_add_epi32(acc21, _mm256_madd_epi16(p1, ones));

        std::memcpy(&aw, aq + 12, 4);
        av = _mm256_set1_epi32(aw);
        p0 = _mm256_maddubs_epi16(av, b0);
        p1 = _mm256_maddubs_epi16(av, b1);
        acc30 = _mm256_add_epi32(acc30, _mm256_madd_epi16(p0, ones));
        acc31 = _mm256_add_epi32(acc31, _mm256_madd_epi16(p1, ones));
    }
    __m256i *out = reinterpret_cast<__m256i *>(tile);
    _mm256_storeu_si256(out + 0, acc00);
    _mm256_storeu_si256(out + 1, acc01);
    _mm256_storeu_si256(out + 2, acc10);
    _mm256_storeu_si256(out + 3, acc11);
    _mm256_storeu_si256(out + 4, acc20);
    _mm256_storeu_si256(out + 5, acc21);
    _mm256_storeu_si256(out + 6, acc30);
    _mm256_storeu_si256(out + 7, acc31);
}

/**
 * Push a finished int32 tile through the dequant epilogue into dst.
 * Full-width tiles vectorize the program of dequantEpilogueRow with
 * lane-wise single-rounding operations (exact epi32 zero-point
 * correction, correctly-rounded cvtepi32_ps, one mul for the scale,
 * one add for the bias / accumulate); exact GELU runs the scalar
 * function through a store/reload like the fp32 backend's exact GELU
 * tile, while GeluFast uses the shared geluApprox8 vectors (bitwise-
 * identical to geluApproxScalar). Ragged edges call the shared scalar
 * helper directly, so every element of every shape runs the identical
 * float program.
 */
void
dequantStoreTile(int32_t *tile, Matrix &dst, size_t i0, size_t j0,
                 size_t mEff, size_t nEff, const QuantizedMatrix &a,
                 float bscale, const int32_t *wsum,
                 const Gemm::Epilogue &ep)
{
    const float *bias = ep.bias ? ep.bias->rowPtr(0) + j0 : nullptr;
    const int32_t *ws = wsum + j0;
    if (nEff == kNr8) {
        const __m256i w0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ws));
        const __m256i w1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ws + 8));
        __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
        if (bias) {
            b0 = _mm256_loadu_ps(bias);
            b1 = _mm256_loadu_ps(bias + 8);
        }
        for (size_t r = 0; r < mEff; ++r) {
            const __m256i zav =
                _mm256_set1_epi32(a.zeroPoint(i0 + r));
            const __m256 csv =
                _mm256_set1_ps(a.scale(i0 + r) * bscale);
            const __m256i *src =
                reinterpret_cast<const __m256i *>(tile + r * kNr8);
            const __m256i s0 = _mm256_sub_epi32(
                _mm256_loadu_si256(src), _mm256_mullo_epi32(zav, w0));
            const __m256i s1 = _mm256_sub_epi32(
                _mm256_loadu_si256(src + 1),
                _mm256_mullo_epi32(zav, w1));
            __m256 v0 = _mm256_mul_ps(_mm256_cvtepi32_ps(s0), csv);
            __m256 v1 = _mm256_mul_ps(_mm256_cvtepi32_ps(s1), csv);
            if (bias) {
                v0 = _mm256_add_ps(v0, b0);
                v1 = _mm256_add_ps(v1, b1);
            }
            if (ep.act == Gemm::Epilogue::Act::Gelu) {
                alignas(32) float tmp[kNr8];
                _mm256_storeu_ps(tmp, v0);
                _mm256_storeu_ps(tmp + 8, v1);
                for (size_t c = 0; c < kNr8; ++c)
                    tmp[c] = geluScalar(tmp[c]);
                v0 = _mm256_loadu_ps(tmp);
                v1 = _mm256_loadu_ps(tmp + 8);
            } else if (ep.act == Gemm::Epilogue::Act::GeluFast) {
                v0 = geluApprox8(v0);
                v1 = geluApprox8(v1);
            }
            float *out = dst.rowPtr(i0 + r) + j0;
            if (ep.accumulate) {
                v0 = _mm256_add_ps(_mm256_loadu_ps(out), v0);
                v1 = _mm256_add_ps(_mm256_loadu_ps(out + 8), v1);
            }
            _mm256_storeu_ps(out, v0);
            _mm256_storeu_ps(out + 8, v1);
        }
        return;
    }
    for (size_t r = 0; r < mEff; ++r)
        dequantEpilogueRow(dst.rowPtr(i0 + r) + j0, tile + r * kNr8, ws,
                           a.zeroPoint(i0 + r), a.scale(i0 + r) * bscale,
                           bias, nEff, ep.accumulate, ep.act);
}

} // namespace

void
quantizeActivationSpanAvx2(int8_t *dst, const float *src, size_t n,
                           float &scaleOut, int32_t &zeroOut)
{
    // Range scan: lane-wise min/max folds seeded with zero, exactly
    // the scalar loop's lo = hi = 0 nudge (min/max are exactly
    // associative and commutative, so lane order cannot change the
    // result; a -0.0f/+0.0f pick difference is value-identical
    // through every downstream use).
    float lo = 0.0f, hi = 0.0f;
    size_t i = 0;
    if (n >= 8) {
        __m256 vlo = _mm256_setzero_ps(), vhi = vlo;
        for (; i + 8 <= n; i += 8) {
            const __m256 v = _mm256_loadu_ps(src + i);
            vlo = _mm256_min_ps(vlo, v);
            vhi = _mm256_max_ps(vhi, v);
        }
        __m128 l = _mm_min_ps(_mm256_castps256_ps128(vlo),
                              _mm256_extractf128_ps(vlo, 1));
        l = _mm_min_ps(l, _mm_movehl_ps(l, l));
        l = _mm_min_ss(l, _mm_shuffle_ps(l, l, 1));
        lo = _mm_cvtss_f32(l);
        __m128 h = _mm_max_ps(_mm256_castps256_ps128(vhi),
                              _mm256_extractf128_ps(vhi, 1));
        h = _mm_max_ps(h, _mm_movehl_ps(h, h));
        h = _mm_max_ss(h, _mm_shuffle_ps(h, h, 1));
        hi = _mm_cvtss_f32(h);
    }
    for (; i < n; ++i) {
        lo = std::min(lo, src[i]);
        hi = std::max(hi, src[i]);
    }
    if (hi == lo) {
        std::memset(dst, 0, n);
        scaleOut = 1.0f;
        zeroOut = 0;
        return;
    }

    // Scalar zero-point derivation, identical to assignActivations.
    const float step = (hi - lo) / 127.0f;
    const float inv = 1.0f / step;
    float zpf = (-lo * inv + kRoundMagic) - kRoundMagic;
    zpf = std::min(127.0f, std::max(0.0f, zpf));
    scaleOut = step;
    zeroOut = static_cast<int32_t>(zpf);

    // Quantize: mul, add, add, sub, clamp, truncating cast — one
    // rounding per operation, the scalar program lane for lane (the
    // min/max clamp order mirrors the scalar std::min(127,
    // std::max(0, q)) selects, and q is integral after the magic
    // round so the epi32 cvt and the saturating packs are exact).
    const __m256 vinv = _mm256_set1_ps(inv);
    const __m256 vzpf = _mm256_set1_ps(zpf);
    const __m256 vmagic = _mm256_set1_ps(kRoundMagic);
    const __m256 vmaxq = _mm256_set1_ps(127.0f);
    const __m256 vzero = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 q = _mm256_mul_ps(_mm256_loadu_ps(src + j), vinv);
        q = _mm256_add_ps(q, vzpf);
        q = _mm256_sub_ps(_mm256_add_ps(q, vmagic), vmagic);
        q = _mm256_min_ps(vmaxq, _mm256_max_ps(q, vzero));
        const __m256i qi = _mm256_cvtps_epi32(q);
        const __m128i p16 = _mm_packs_epi32(
            _mm256_castsi256_si128(qi), _mm256_extracti128_si256(qi, 1));
        const __m128i p8 = _mm_packs_epi16(p16, p16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(dst + j), p8);
    }
    for (; j < n; ++j) {
        float q = (src[j] * inv + zpf + kRoundMagic) - kRoundMagic;
        q = std::min(127.0f, std::max(0.0f, q));
        dst[j] = static_cast<int8_t>(q);
    }
}

void
gemmInt8Avx2(Matrix &dst, const QuantizedMatrix &a,
             const QuantizedMatrix &b, Gemm::Trans trans, size_t rowBegin,
             size_t rowEnd, const int32_t *wsum, const Gemm::Epilogue &ep,
             const int8_t *packedB)
{
    const size_t n = dst.cols();
    const size_t k = trans == Gemm::Trans::A ? a.rows() : a.cols();
    const size_t quads = (k + 3) / 4;
    const size_t mBand = rowEnd - rowBegin;
    const size_t mPanels = (mBand + kMr8 - 1) / kMr8;
    const size_t nPanels = (n + kNr8 - 1) / kNr8;
    const float bscale = b.scale(0);

    // Packed panels and the write-back tile live in per-thread
    // recycled buffers, so steady-state multiplies allocate nothing
    // (the Workspace arena is float-typed; these are bytes). With
    // prepacked op(B) panels (packedB, jp stride quads * kNr8 * 4) the
    // per-call B pack is skipped entirely.
    static thread_local std::vector<int8_t> t_pa, t_pb;
    static thread_local std::vector<int32_t> t_tile;
    t_pa.resize(mPanels * quads * kMr8 * 4);
    if (!packedB)
        t_pb.resize(quads * kNr8 * 4);
    t_tile.resize(kMr8 * kNr8);

    for (size_t ip = 0; ip < mPanels; ++ip) {
        const size_t i0 = rowBegin + ip * kMr8;
        packAPanelInt8(t_pa.data() + ip * quads * kMr8 * 4, a, trans, i0,
                       std::min(kMr8, rowEnd - i0), k, quads);
    }

    for (size_t jp = 0; jp < nPanels; ++jp) {
        const size_t j0 = jp * kNr8;
        const size_t nEff = std::min(kNr8, n - j0);
        const int8_t *pbp;
        if (packedB) {
            pbp = packedB + jp * quads * kNr8 * 4;
        } else {
            packBPanelInt8(t_pb.data(), b, trans, j0, nEff, k, quads);
            pbp = t_pb.data();
        }
        for (size_t ip = 0; ip < mPanels; ++ip) {
            const size_t i0 = rowBegin + ip * kMr8;
            const size_t mEff = std::min(kMr8, rowEnd - i0);
            microKernelInt8_4x16(quads,
                                 t_pa.data() + ip * quads * kMr8 * 4,
                                 pbp, t_tile.data());
            dequantStoreTile(t_tile.data(), dst, i0, j0, mEff, nEff, a,
                             bscale, wsum, ep);
        }
    }
}

} // namespace detail
} // namespace vitality
