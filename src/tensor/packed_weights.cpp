#include "tensor/packed_weights.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "base/logging.h"
#include "tensor/gemm_pack.h"
#include "tensor/quantized_matrix.h"

namespace vitality {

namespace {

/** Cache-line alignment for panel bases (see the header's rationale). */
constexpr size_t kPanelAlign = 64;

/**
 * Size v to hold count elements behind a kPanelAlign-aligned base and
 * return that base. The vector over-allocates by one alignment unit;
 * the base must be recomputed after every resize (vectors may move).
 */
template <typename T>
T *
alignedStorage(std::vector<T> &v, size_t count)
{
    v.resize(count + kPanelAlign / sizeof(T));
    void *p = v.data();
    size_t space = v.size() * sizeof(T);
    return static_cast<T *>(
        std::align(kPanelAlign, count * sizeof(T), p, space));
}

/** op(B) dims: k rows by n cols (Trans::A has no meaning for a RHS). */
void
opShape(size_t rows, size_t cols, Gemm::Trans trans, size_t &k, size_t &n)
{
    if (trans == Gemm::Trans::A) {
        throw std::invalid_argument(
            "packed weights: op(B) transpose must be Trans::None or "
            "Trans::B");
    }
    if (trans == Gemm::Trans::B) {
        k = cols;
        n = rows;
    } else {
        k = rows;
        n = cols;
    }
}

} // namespace

void
PackedMatrix::adoptShape(size_t k, size_t n, Gemm::Trans trans)
{
    // The fp32 and int8 packs are two views of one logical weight; a
    // shape or transpose disagreement means the caller packed two
    // different operands into one slot.
    const bool holds = fp32Src_ || int8Src_;
    if (holds && (k != k_ || n != n_ || trans != trans_)) {
        throw std::invalid_argument(
            strfmt("packed weights: op-shape [%zu x %zu] disagrees with "
                   "the already-packed [%zu x %zu]",
                   k, n, k_, n_));
    }
    k_ = k;
    n_ = n;
    trans_ = trans;
}

void
PackedMatrix::packFp32(const Matrix &b, Gemm::Trans trans)
{
    size_t k = 0, n = 0;
    opShape(b.rows(), b.cols(), trans, k, n);
    adoptShape(k, n, trans);
    const size_t nPanels = (n + detail::kNr - 1) / detail::kNr;
    fp32Base_ = alignedStorage(fp32Panels_, nPanels * k * detail::kNr);
    for (size_t jp = 0; jp < nPanels; ++jp) {
        const size_t j0 = jp * detail::kNr;
        detail::packBPanel(fp32Base_ + jp * k * detail::kNr, b, trans,
                           j0, std::min(detail::kNr, n - j0), 0, k);
    }
    fp32Src_ = &b;
}

void
PackedMatrix::packInt8(const QuantizedMatrix &b, Gemm::Trans trans)
{
    if (b.kind() != QuantizedMatrix::Kind::WeightS8) {
        throw std::invalid_argument(
            "packed weights: int8 pack needs a WeightS8 operand (the "
            "only RHS the quantized multiply accepts)");
    }
    size_t k = 0, n = 0;
    opShape(b.rows(), b.cols(), trans, k, n);
    adoptShape(k, n, trans);
    const size_t quads = (k + 3) / 4;
    const size_t nPanels = (n + detail::kNr8 - 1) / detail::kNr8;
    int8Base_ =
        alignedStorage(int8Panels_, nPanels * quads * detail::kNr8 * 4);
    for (size_t jp = 0; jp < nPanels; ++jp) {
        const size_t j0 = jp * detail::kNr8;
        detail::packBPanelInt8(
            int8Base_ + jp * quads * detail::kNr8 * 4, b, trans, j0,
            std::min(detail::kNr8, n - j0), k, quads);
    }
    // Per-column sums of op(B) for the dequant zero-point correction,
    // the dispatcher's exact integer loops run once at pack time
    // (integer sums: any evaluation point yields identical values).
    wsum_.assign(n, 0);
    if (trans == Gemm::Trans::B) {
        // op(B)(kk, j) = b(j, kk): column sums are b's row sums.
        for (size_t j = 0; j < n; ++j) {
            const int8_t *brow = b.rowPtr(j);
            int32_t s = 0;
            for (size_t kk = 0; kk < k; ++kk)
                s += brow[kk];
            wsum_[j] = s;
        }
    } else {
        for (size_t kk = 0; kk < k; ++kk) {
            const int8_t *brow = b.rowPtr(kk);
            for (size_t j = 0; j < n; ++j)
                wsum_[j] += brow[j];
        }
    }
    int8Src_ = &b;
}

size_t
PackedMatrix::packedBytes() const
{
    return fp32Panels_.size() * sizeof(float) +
           int8Panels_.size() * sizeof(int8_t) +
           wsum_.size() * sizeof(int32_t);
}

} // namespace vitality
