#include "tensor/ragged_batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

RaggedBatch
RaggedBatch::fromMatrices(const Matrix *const *inputs, size_t n)
{
    RaggedBatch out;
    out.packFrom(inputs, n);
    return out;
}

RaggedBatch
RaggedBatch::fromBatch(const Batch &batch)
{
    RaggedBatch out;
    out.packFrom(batch);
    return out;
}

void
RaggedBatch::checkIndex(size_t i) const
{
    if (i >= size()) {
        throw std::out_of_range(
            strfmt("RaggedBatch: image %zu out of range (size %zu)", i,
                   size()));
    }
}

size_t
RaggedBatch::rowsOf(size_t i) const
{
    checkIndex(i);
    return offsets_[i + 1] - offsets_[i];
}

size_t
RaggedBatch::offset(size_t i) const
{
    checkIndex(i);
    return offsets_[i];
}

void
RaggedBatch::resize(const size_t *rows, size_t n, size_t cols)
{
    if (n == 0)
        throw std::invalid_argument("RaggedBatch: zero images");
    if (cols == 0)
        throw std::invalid_argument("RaggedBatch: zero columns");
    if (!rows)
        throw std::invalid_argument("RaggedBatch: null row counts");
    // Build the cu_lens offsets first so a bad count throws before any
    // storage is touched. offsets_ is assigned in place: same image
    // count means no reallocation, which keeps steady-state resizes
    // allocation-free.
    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (size_t i = 0; i < n; ++i) {
        if (rows[i] == 0) {
            offsets_.clear();
            buffer_.resize(0, 0);
            throw std::invalid_argument(
                strfmt("RaggedBatch: image %zu has zero rows (every "
                       "image carries at least its CLS token)",
                       i));
        }
        offsets_[i + 1] = offsets_[i] + rows[i];
    }
    buffer_.resize(offsets_[n], cols);
}

void
RaggedBatch::resizeLike(const RaggedBatch &other)
{
    if (other.empty())
        throw std::invalid_argument("RaggedBatch: resizeLike of empty");
    offsets_ = other.offsets_;
    buffer_.resize(other.totalRows(), other.cols());
}

void
RaggedBatch::packFrom(const Matrix *const *inputs, size_t n)
{
    if (n == 0)
        throw std::invalid_argument("RaggedBatch: empty request set");
    for (size_t i = 0; i < n; ++i) {
        if (!inputs[i])
            throw std::invalid_argument(
                strfmt("RaggedBatch: input %zu is null", i));
    }
    const size_t cols = inputs[0]->cols();
    if (cols == 0)
        throw std::invalid_argument(
            strfmt("RaggedBatch: empty input shape %s",
                   inputs[0]->shapeStr().c_str()));
    offsets_.resize(n + 1);
    offsets_[0] = 0;
    for (size_t i = 0; i < n; ++i) {
        if (inputs[i]->cols() != cols)
            throw std::invalid_argument(
                strfmt("RaggedBatch: input %zu is %s, expected %zu "
                       "columns",
                       i, inputs[i]->shapeStr().c_str(), cols));
        if (inputs[i]->rows() == 0)
            throw std::invalid_argument(
                strfmt("RaggedBatch: input %zu has zero rows", i));
        offsets_[i + 1] = offsets_[i] + inputs[i]->rows();
    }
    buffer_.resize(offsets_[n], cols);
    for (size_t i = 0; i < n; ++i) {
        std::memcpy(buffer_.rowPtr(offsets_[i]), inputs[i]->data(),
                    inputs[i]->size() * sizeof(float));
    }
}

void
RaggedBatch::packFrom(const Batch &batch)
{
    if (batch.empty())
        throw std::invalid_argument("RaggedBatch: empty batch");
    if (batch.rows() == 0 || batch.cols() == 0)
        throw std::invalid_argument(
            strfmt("RaggedBatch: empty batch shape %s",
                   batch.shapeStr().c_str()));
    offsets_.resize(batch.size() + 1);
    offsets_[0] = 0;
    for (size_t i = 0; i < batch.size(); ++i)
        offsets_[i + 1] = offsets_[i] + batch[i].rows();
    buffer_.resize(offsets_[batch.size()], batch.cols());
    for (size_t i = 0; i < batch.size(); ++i) {
        std::memcpy(buffer_.rowPtr(offsets_[i]), batch[i].data(),
                    batch[i].size() * sizeof(float));
    }
}

void
RaggedBatch::unpackImage(size_t i, Matrix &dst) const
{
    checkIndex(i);
    const size_t rows = rowsOf(i);
    dst.resize(rows, cols());
    std::memcpy(dst.data(), buffer_.rowPtr(offsets_[i]),
                rows * cols() * sizeof(float));
}

void
RaggedBatch::copyFrom(const RaggedBatch &other)
{
    if (this == &other)
        return;
    if (other.empty())
        throw std::invalid_argument("RaggedBatch: copyFrom empty");
    resizeLike(other);
    // The buffer may hold slack past totalRows() after a shrink; copy
    // only the addressable region.
    std::memcpy(buffer_.data(), other.buffer_.data(),
                other.totalRows() * other.cols() * sizeof(float));
}

void
RaggedBatch::shrinkRows(const size_t *newRows)
{
    if (empty())
        throw std::invalid_argument("RaggedBatch: shrinkRows on empty");
    if (!newRows)
        throw std::invalid_argument("RaggedBatch: null row counts");
    const size_t n = size();
    // Validate the whole request first: offsets_ still holds the old
    // structure, so rowsOf() is meaningful until the rewrite below.
    for (size_t i = 0; i < n; ++i) {
        const size_t old = offsets_[i + 1] - offsets_[i];
        if (newRows[i] == 0 || newRows[i] > old)
            throw std::invalid_argument(
                strfmt("RaggedBatch: shrinkRows image %zu to %zu rows "
                       "(has %zu, must stay in [1, %zu])",
                       i, newRows[i], old, old));
    }
    for (size_t i = 0; i < n; ++i)
        offsets_[i + 1] = offsets_[i] + newRows[i];
    // Storage is untouched: the caller already compacted the kept rows
    // to the front, and Matrix::resize never reallocates on shrink.
    buffer_.resize(offsets_[n], cols());
}

bool
RaggedBatch::operator==(const RaggedBatch &other) const
{
    if (offsets_ != other.offsets_ || cols() != other.cols())
        return false;
    const size_t count = totalRows() * cols();
    const float *a = buffer_.data();
    const float *b = other.buffer_.data();
    for (size_t i = 0; i < count; ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

bool
RaggedBatch::allClose(const RaggedBatch &other, float tol) const
{
    if (offsets_ != other.offsets_ || cols() != other.cols())
        return false;
    const size_t count = totalRows() * cols();
    const float *a = buffer_.data();
    const float *b = other.buffer_.data();
    for (size_t i = 0; i < count; ++i)
        if (!(std::fabs(a[i] - b[i]) <= tol))
            return false;
    return true;
}

std::string
RaggedBatch::shapeStr() const
{
    std::ostringstream os;
    os << "[" << size() << " x {";
    const size_t shown = std::min<size_t>(size(), 8);
    for (size_t i = 0; i < shown; ++i) {
        if (i)
            os << ",";
        os << (offsets_[i + 1] - offsets_[i]);
    }
    if (size() > shown)
        os << ",...";
    os << "} x " << cols() << "]";
    return os.str();
}

} // namespace vitality
