/**
 * @file
 * Shared 8-lane AVX2 transcendental helpers for the GEMM backends.
 *
 * Only include from translation units compiled with -mavx2 (the fp32
 * and int8 AVX2 backends); the functions use the AVX2 ISA
 * unconditionally and rely on the caller's runtime CPUID dispatch.
 *
 * Lane-for-lane the same program as the scalar exp2Core /
 * tanhApproxCore / geluApproxScalar in tensor/ops.cpp: identical
 * constants (tensor/transcendental.h), identical operation order, and
 * deliberately plain mul/add — no _mm256_fmadd_ps — because the scalar
 * fallback (baseline ISA, -ffp-contract=off) rounds every product and
 * sum separately, and the fast GELU's bitwise contract is that full
 * tiles (these vectors) and ragged edges (epilogueApplyRow ->
 * geluApproxScalar) produce identical bits. The max/min clamps rely on
 * the documented vmaxps/vminps NaN-takes-the-second-operand semantics,
 * which the scalar selects mirror.
 */

#ifndef VITALITY_TENSOR_AVX2_MATH_H
#define VITALITY_TENSOR_AVX2_MATH_H

#include <immintrin.h>

#include "tensor/transcendental.h"

namespace vitality {
namespace detail {

inline __m256
exp2Core8(__m256 z)
{
    __m256 zc = _mm256_max_ps(z, _mm256_set1_ps(-kExp2Clamp));
    zc = _mm256_min_ps(zc, _mm256_set1_ps(kExp2Clamp));
    const __m256 magic = _mm256_set1_ps(kRoundMagic);
    const __m256 nf = _mm256_sub_ps(_mm256_add_ps(zc, magic), magic);
    const __m256 f = _mm256_sub_ps(zc, nf);
    __m256 p = _mm256_set1_ps(kExp2C7);
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C6));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C5));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C4));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C3));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C2));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExp2C1));
    p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(1.0f));
    // 2^n by exponent bits; nf is integral, so the rounding cvt is
    // exact, matching the scalar truncating cast.
    const __m256i n = _mm256_cvtps_epi32(nf);
    const __m256i bits =
        _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

inline __m256
tanhApprox8(__m256 x)
{
    __m256 t = _mm256_max_ps(x, _mm256_set1_ps(-kTanhClamp));
    t = _mm256_min_ps(t, _mm256_set1_ps(kTanhClamp));
    const __m256 e2x =
        exp2Core8(_mm256_mul_ps(t, _mm256_set1_ps(kTwoLog2e)));
    const __m256 one = _mm256_set1_ps(1.0f);
    return _mm256_div_ps(_mm256_sub_ps(e2x, one),
                         _mm256_add_ps(e2x, one));
}

inline __m256
geluApprox8(__m256 x)
{
    const __m256 x3 = _mm256_mul_ps(_mm256_mul_ps(x, x), x);
    const __m256 inner = _mm256_mul_ps(
        _mm256_set1_ps(kGeluSqrt2OverPi),
        _mm256_add_ps(x, _mm256_mul_ps(_mm256_set1_ps(kGeluCubic), x3)));
    const __m256 one = _mm256_set1_ps(1.0f);
    return _mm256_mul_ps(
        _mm256_mul_ps(_mm256_set1_ps(0.5f), x),
        _mm256_add_ps(one, tanhApprox8(inner)));
}

} // namespace detail
} // namespace vitality

#endif // VITALITY_TENSOR_AVX2_MATH_H
