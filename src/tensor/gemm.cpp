#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include <vector>

#include "base/check.h"
#include "base/logging.h"
#include "tensor/gemm_epilogue.h"
#include "tensor/gemm_int8.h"
#include "tensor/ops.h"
#include "tensor/packed_weights.h"
#include "tensor/quantized_matrix.h"
#include "tensor/workspace.h"

namespace vitality {

namespace detail {

#if VITALITY_HAVE_AVX2
// Defined in gemm_avx2.cpp, compiled with -mavx2 -mfma. Must only be
// called after a runtime CPUID check: the whole translation unit is
// built for the AVX2 ISA. Computes rows [rowBegin, rowEnd) of dst. A
// non-null packedB supplies prepacked full-k op(B) panels (jp stride
// k * 16, the PackedMatrix layout) and skips the per-call B pack.
void gemmAvx2(Matrix &dst, const Matrix &a, const Matrix &b,
              Gemm::Trans trans, size_t rowBegin, size_t rowEnd,
              const Gemm::Epilogue &ep, const float *packedB = nullptr);
#endif

} // namespace detail

namespace {

// Block size for the scalar cache-tiled loops. 64 floats = 256 bytes
// per row strip, keeping three blocks comfortably within L1.
constexpr size_t kBlock = 64;

// Row-band granularity for intra-GEMM parallelism. Matches the AVX2
// microkernel's panel height so a band boundary never splits a packed
// A panel; the scalar backend is indifferent to the granularity.
constexpr size_t kBandRows = 6;

// The INT8 microkernel uses 4-row panels, so its bands align to 4.
constexpr size_t kQuantBandRows = 4;

// Depth cap for the quantized path: |S - za*wsum| <= 2 * k * 127 * 127
// must stay below 2^31 for the int32 zero-point correction to be
// exact; 2 * 65536 * 16129 = 2.11e9 < 2^31 is the deepest safe power
// of two (DeiT tops out at k = 3072).
constexpr size_t kMaxQuantDepth = 65536;

// The size heuristic: don't fan out unless every band gets at least
// this many flops (2*m*n*k total), so layer-norm-sized GEMMs and the
// per-head attention products stay on the calling thread where the
// fan-out overhead would dominate.
constexpr uint64_t kMinFlopsPerBand = uint64_t(1) << 21;

/** op(X) dimensions: rows(op(A)) x cols(op(A)) = m x k, op(B) = k x n. */
struct GemmDims
{
    size_t m, n, k;
};

template <class MatA, class MatB>
GemmDims
checkedDims(const MatA &a, const MatB &b, Gemm::Trans trans)
{
    switch (trans) {
    case Gemm::Trans::None:
        if (a.cols() != b.rows()) {
            throw std::invalid_argument(
                strfmt("matmul: inner dims differ, %s vs %s",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.rows(), b.cols(), a.cols()};
    case Gemm::Trans::A:
        if (a.rows() != b.rows()) {
            throw std::invalid_argument(
                strfmt("matmulAT: inner dims differ, %s^T vs %s",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.cols(), b.cols(), a.rows()};
    case Gemm::Trans::B:
        if (a.cols() != b.cols()) {
            throw std::invalid_argument(
                strfmt("matmulBT: inner dims differ, %s vs %s^T",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.rows(), b.rows(), a.cols()};
    }
    throw std::invalid_argument("gemm: unknown transpose mode");
}

using detail::epilogueApplyRow;

// Scratch arena for the scalar backend's staged epilogue rows and the
// unfused fallback product. Thread-local, so banded scalar GEMMs and
// concurrent callers stay allocation-free per worker.
thread_local Workspace t_scalarArena;

// The scalar reference backend: the original cache-blocked loops,
// restricted to output rows [i0, i1) so row bands can fan across a
// pool. Every variant accumulates each output element over k in
// ascending order, the order the AVX2 microkernel reproduces (see the
// tolerance note in gemm.h). With a non-trivial epilogue the raw
// products are staged in scratch rows and pushed through the shared
// epilogueApplyRow helper (gemm_epilogue.h) at the end — same
// accumulation order, fused single write-back.

void
scalarNone(Matrix &dst, const Matrix &a, const Matrix &b, size_t i0,
           size_t i1, const Gemm::Epilogue &ep)
{
    const size_t k = a.cols(), n = b.cols();
    Workspace::Frame frame(t_scalarArena);
    Matrix *stage =
        ep.trivial() ? nullptr
                     : &t_scalarArena.acquire(std::min(kBlock, i1 - i0), n);
    // Blocked i-k-j order: the innermost loop streams contiguous rows of
    // B and the accumulator rows, which vectorizes well.
    for (size_t ib = i0; ib < i1; ib += kBlock) {
        const size_t ie = std::min(ib + kBlock, i1);
        if (stage) {
            stage->resize(ie - ib, n);
            stage->fill(0.0f);
        } else {
            for (size_t i = ib; i < ie; ++i)
                std::fill(dst.rowPtr(i), dst.rowPtr(i) + n, 0.0f);
        }
        for (size_t k0 = 0; k0 < k; k0 += kBlock) {
            const size_t k1 = std::min(k0 + kBlock, k);
            for (size_t i = ib; i < ie; ++i) {
                const float *arow = a.rowPtr(i);
                float *crow =
                    stage ? stage->rowPtr(i - ib) : dst.rowPtr(i);
                for (size_t kk = k0; kk < k1; ++kk) {
                    const float aik = arow[kk];
                    const float *brow = b.rowPtr(kk);
                    for (size_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
        if (stage)
            for (size_t i = ib; i < ie; ++i)
                epilogueApplyRow(dst.rowPtr(i), stage->rowPtr(i - ib), n, ep);
    }
}

void
scalarTransB(Matrix &dst, const Matrix &a, const Matrix &b, size_t i0,
             size_t i1, const Gemm::Epilogue &ep)
{
    const size_t k = a.cols(), n = b.rows();
    Workspace::Frame frame(t_scalarArena);
    Matrix *stage =
        ep.trivial() ? nullptr : &t_scalarArena.acquire(1, n);
    // Row-by-row dot products: both operands stream contiguously; a
    // finished row goes through the shared epilogue write-back.
    for (size_t i = i0; i < i1; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = stage ? stage->rowPtr(0) : dst.rowPtr(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
        if (stage)
            epilogueApplyRow(dst.rowPtr(i), crow, n, ep);
    }
}

void
scalarTransA(Matrix &dst, const Matrix &a, const Matrix &b, size_t i0,
             size_t i1, const Gemm::Epilogue &ep)
{
    const size_t k = a.rows(), n = b.cols();
    Workspace::Frame frame(t_scalarArena);
    Matrix *stage = nullptr;
    if (!ep.trivial())
        stage = &t_scalarArena.acquireZeroed(i1 - i0, n);
    else
        for (size_t i = i0; i < i1; ++i)
            std::fill(dst.rowPtr(i), dst.rowPtr(i) + n, 0.0f);
    // Accumulate rank-1 updates: for each shared row kk, C += a_kk^T b_kk.
    for (size_t kk = 0; kk < k; ++kk) {
        const float *arow = a.rowPtr(kk);
        const float *brow = b.rowPtr(kk);
        for (size_t i = i0; i < i1; ++i) {
            const float aki = arow[i];
            float *crow = stage ? stage->rowPtr(i - i0) : dst.rowPtr(i);
            for (size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
    if (stage)
        for (size_t i = i0; i < i1; ++i)
            epilogueApplyRow(dst.rowPtr(i), stage->rowPtr(i - i0), n, ep);
}

void
gemmScalar(Matrix &dst, const Matrix &a, const Matrix &b,
           Gemm::Trans trans, size_t i0, size_t i1,
           const Gemm::Epilogue &ep)
{
    switch (trans) {
    case Gemm::Trans::None:
        scalarNone(dst, a, b, i0, i1, ep);
        return;
    case Gemm::Trans::A:
        scalarTransA(dst, a, b, i0, i1, ep);
        return;
    case Gemm::Trans::B:
        scalarTransB(dst, a, b, i0, i1, ep);
        return;
    }
}

void
runBackend(Gemm::Backend backend, Matrix &dst, const Matrix &a,
           const Matrix &b, Gemm::Trans trans, size_t i0, size_t i1,
           const Gemm::Epilogue &ep, const float *packedB)
{
    switch (backend) {
    case Gemm::Backend::Scalar:
        // The scalar backend is the unpack-free reference path: it
        // reads the borrowed source operand directly, so prepacked
        // panels are simply unused here.
        gemmScalar(dst, a, b, trans, i0, i1, ep);
        return;
    case Gemm::Backend::Avx2:
#if VITALITY_HAVE_AVX2
        detail::gemmAvx2(dst, a, b, trans, i0, i1, ep, packedB);
        return;
#else
        throw std::invalid_argument(
            "gemm: AVX2 backend not compiled in "
            "(build with -DVITALITY_ENABLE_AVX2=ON)");
#endif
    }
    throw std::invalid_argument("gemm: unknown backend");
}

bool
cpuHasAvx2Fma()
{
#if VITALITY_HAVE_AVX2 && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

Gemm::Backend
resolveDefault()
{
    const Gemm::Backend best = Gemm::available(Gemm::Backend::Avx2)
                                   ? Gemm::Backend::Avx2
                                   : Gemm::Backend::Scalar;
    const char *env = std::getenv("VITALITY_GEMM");
    if (!env || !*env)
        return best;
    const std::optional<Gemm::Backend> wanted = Gemm::parseBackend(env);
    if (!wanted) {
        warn("VITALITY_GEMM=%s not recognized (want scalar|avx2); "
             "using %s",
             env, Gemm::backendName(best));
        return best;
    }
    if (!Gemm::available(*wanted)) {
        warn("VITALITY_GEMM=%s requested but unavailable here; using %s",
             env, Gemm::backendName(best));
        return best;
    }
    return *wanted;
}

// -1 = unresolved; otherwise holds a Backend value. Resolved lazily so
// the env override applies no matter when the first multiply happens.
std::atomic<int> g_active{-1};

// -1 = unresolved; otherwise a Gemm::EpilogueMode value
// (VITALITY_EPILOGUE=fused|unfused, default fused).
std::atomic<int> g_epilogueMode{-1};

// -2 = unresolved; otherwise the VITALITY_THREADS cap (0 = uncapped).
std::atomic<long> g_maxThreads{-2};

// -1 = unresolved; otherwise a Gemm::QuantMode value
// (VITALITY_QUANT=off|int8, default off).
std::atomic<int> g_quantMode{-1};

// The injected intra-GEMM runner; guarded because install/uninstall
// (ThreadPool construction/destruction) may race a reader taking a
// snapshot. The snapshot keeps the ParallelRunner struct itself alive,
// but not whatever the callbacks capture — the pool behind them must
// outlive in-flight multiplies (documented in thread_pool.h).
std::mutex g_runnerMutex;
std::shared_ptr<const Gemm::ParallelRunner> g_runner;

long
resolveMaxThreads()
{
    const char *env = std::getenv("VITALITY_THREADS");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
        warn("VITALITY_THREADS=%s not recognized (want a non-negative "
             "integer); ignoring",
             env);
        return 0;
    }
    return parsed;
}

/**
 * Bands the caller may fan this product across: the runner width under
 * the thread cap and the size heuristic, floored at 1. Band boundaries
 * are aligned to bandRows (the backend pair's microkernel panel
 * height) so they never split a packed panel.
 */
size_t
chooseBands(const GemmDims &dims,
            const std::shared_ptr<const Gemm::ParallelRunner> &runner,
            size_t bandRows)
{
    if (!runner || dims.m <= bandRows)
        return 1;
    size_t width = runner->width();
    const size_t cap = Gemm::maxThreads();
    if (cap)
        width = std::min(width, cap);
    if (width <= 1)
        return 1;
    const uint64_t flops = 2ull * dims.m * dims.n * dims.k;
    const size_t byWork =
        static_cast<size_t>(std::max<uint64_t>(1, flops / kMinFlopsPerBand));
    const size_t panels = (dims.m + bandRows - 1) / bandRows;
    return std::max<size_t>(1, std::min({width, byWork, panels}));
}

void
validateEpilogue(const Matrix &dst, const GemmDims &dims,
                 const Gemm::Epilogue &ep)
{
    if (ep.bias) {
        if (ep.bias->rows() != 1 || ep.bias->cols() != dims.n) {
            throw std::invalid_argument(
                strfmt("gemm: epilogue bias %s, expected [1 x %zu]",
                       ep.bias->shapeStr().c_str(), dims.n));
        }
        if (ep.bias == &dst) {
            throw std::invalid_argument(
                "gemm: epilogue bias must not alias dst");
        }
    }
    if (ep.accumulate &&
        (dst.rows() != dims.m || dst.cols() != dims.n)) {
        throw std::invalid_argument(
            strfmt("gemm: accumulate epilogue needs dst preshaped to "
                   "[%zu x %zu], got %s",
                   dims.m, dims.n, dst.shapeStr().c_str()));
    }
}

void
runBackendInt8(Gemm::Backend backend, Matrix &dst,
               const QuantizedMatrix &a, const QuantizedMatrix &b,
               Gemm::Trans trans, size_t i0, size_t i1,
               const int32_t *wsum, const Gemm::Epilogue &ep,
               const int8_t *packedB)
{
    switch (backend) {
    case Gemm::Backend::Scalar:
        // Unpack-free reference path: reads the borrowed source.
        detail::gemmInt8Scalar(dst, a, b, trans, i0, i1, wsum, ep);
        return;
    case Gemm::Backend::Avx2:
#if VITALITY_HAVE_AVX2
        detail::gemmInt8Avx2(dst, a, b, trans, i0, i1, wsum, ep, packedB);
        return;
#else
        throw std::invalid_argument(
            "gemm: AVX2 backend not compiled in "
            "(build with -DVITALITY_ENABLE_AVX2=ON)");
#endif
    }
    throw std::invalid_argument("gemm: unknown backend");
}

/**
 * Fold a prepacked RHS's baked op(B) mode into the caller's transA.
 * The result is the single Trans value the backends understand;
 * combinations the backends cannot express (any with transA Trans::B,
 * or A^T against a Trans::B-packed RHS) throw.
 */
Gemm::Trans
combinePackedTrans(Gemm::Trans packed, Gemm::Trans transA)
{
    if (transA == Gemm::Trans::B) {
        throw std::invalid_argument(
            "gemm: prepacked multiply takes transA of None or A; op(B) "
            "was baked at pack time");
    }
    if (packed == Gemm::Trans::B) {
        if (transA == Gemm::Trans::A) {
            throw std::invalid_argument(
                "gemm: Trans::A cannot combine with a Trans::B-packed "
                "RHS (no backend computes A^T * B^T)");
        }
        return Gemm::Trans::B;
    }
    return transA;
}

} // namespace

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans)
{
    multiply(dst, a, b, trans, Epilogue{}, active());
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans,
               Backend backend)
{
    multiply(dst, a, b, trans, Epilogue{}, backend);
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans,
               const Epilogue &epilogue)
{
    multiply(dst, a, b, trans, epilogue, active());
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans,
               const Epilogue &epilogue, Backend backend)
{
    multiplyImpl(dst, a, b, trans, epilogue, backend, nullptr);
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const PackedMatrix &b,
               Trans transA, const Epilogue &epilogue)
{
    multiply(dst, a, b, transA, epilogue, active());
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const PackedMatrix &b,
               Trans transA, const Epilogue &epilogue, Backend backend)
{
    if (!b.hasFp32()) {
        throw std::invalid_argument(
            "gemm: PackedMatrix holds no fp32 panels (packFp32 was "
            "never called)");
    }
    // The borrowed source carries shape and data for validation and
    // the scalar reference path; the stored panels feed the AVX2
    // backend. Both views were produced by the same pack program, so
    // the two backends see the same operand bit for bit.
    multiplyImpl(dst, a, *b.sourceFp32(),
                 combinePackedTrans(b.trans(), transA), epilogue, backend,
                 b.fp32Panels());
}

void
Gemm::multiplyImpl(Matrix &dst, const Matrix &a, const Matrix &b,
                   Trans trans, const Epilogue &epilogue, Backend backend,
                   const float *packedB)
{
    // Guard the explicit-backend path too: without this, requesting
    // Avx2 on a host without the ISA would reach the microkernel and
    // die on an illegal instruction instead of throwing as documented.
    if (!available(backend)) {
        throw std::invalid_argument(
            strfmt("gemm: backend %s is not available on this host",
                   backendName(backend)));
    }
    // Fast mode executes Gelu epilogues as GeluFast (the vectorized
    // polynomial tanh); an explicitly requested GeluFast act is always
    // honored regardless of mode.
    Epilogue ep = epilogue;
    if (ep.act == Epilogue::Act::Gelu &&
        epilogueMode() == EpilogueMode::FusedFast)
        ep.act = Epilogue::Act::GeluFast;
    const GemmDims dims = checkedDims(a, b, trans);
    // Matrix always owns its storage, so object identity is the only
    // possible aliasing.
    if (&dst == &a || &dst == &b)
        throw std::invalid_argument("gemm: dst must not alias an input");
    validateEpilogue(dst, dims, ep);
    // Checked-build contracts: identity covers aliasing only while every
    // Matrix owns its storage — assert the data ranges agree — and the
    // backends assume finite inputs (a NaN would quietly poison every
    // row it touches; catch it at the one dispatch point instead).
    VITALITY_DCHECK(check::noAlias(dst.data(), dst.size(), a.data(),
                                   a.size()) &&
                        check::noAlias(dst.data(), dst.size(), b.data(),
                                       b.size()),
                    "gemm: dst storage overlaps an input");
    VITALITY_DCHECK(check::allFinite(a.data(), a.size()),
                    "gemm: non-finite A operand %s", a.shapeStr().c_str());
    VITALITY_DCHECK(check::allFinite(b.data(), b.size()),
                    "gemm: non-finite B operand %s", b.shapeStr().c_str());
    VITALITY_DCHECK(!ep.bias ||
                        check::allFinite(ep.bias->data(), ep.bias->size()),
                    "gemm: non-finite epilogue bias");
    VITALITY_DCHECK(!ep.accumulate ||
                        check::allFinite(dst.data(), dst.size()),
                    "gemm: accumulate into non-finite dst");
    if (!ep.accumulate)
        dst.resize(dims.m, dims.n);
    if (dims.m == 0 || dims.n == 0)
        return;
    if (dims.k == 0) {
        // The product is all zeros; the epilogue still applies to it.
        if (ep.trivial()) {
            dst.fill(0.0f);
            return;
        }
        Workspace::Frame frame(t_scalarArena);
        const Matrix &zeros = t_scalarArena.acquireZeroed(1, dims.n);
        for (size_t i = 0; i < dims.m; ++i)
            epilogueApplyRow(dst.rowPtr(i), zeros.rowPtr(0), dims.n, ep);
        return;
    }

    if (!ep.trivial() && epilogueMode() == EpilogueMode::Unfused) {
        // Debug/bench fallback: plain GEMM into scratch, then the same
        // element-wise epilogue as a separate pass. Bitwise-identical
        // to the fused path by construction (same order per element).
        Workspace::Frame frame(t_scalarArena);
        Matrix &product = t_scalarArena.acquire(dims.m, dims.n);
        multiplyImpl(product, a, b, trans, Epilogue{}, backend, packedB);
        for (size_t i = 0; i < dims.m; ++i)
            epilogueApplyRow(dst.rowPtr(i), product.rowPtr(i), dims.n, ep);
        return;
    }

    // Cheap early-outs before touching the runner: a GEMM too small to
    // ever split into two worthwhile bands skips the global runner
    // mutex and shared_ptr traffic entirely (this is every per-head
    // attention product issued from a pool worker).
    std::shared_ptr<const ParallelRunner> runner;
    if (dims.m > kBandRows &&
        2ull * dims.m * dims.n * dims.k >= 2 * kMinFlopsPerBand)
        runner = parallelRunner();
    const size_t bands = runner ? chooseBands(dims, runner, kBandRows) : 1;
    if (bands <= 1) {
        runBackend(backend, dst, a, b, trans, 0, dims.m, ep, packedB);
        return;
    }
    // Fan microkernel-aligned row bands across the pool. Bands
    // partition the output rows, so every element is still one
    // uninterrupted ascending-k sum: results are bitwise-identical to
    // the sequential call at any band count. Prepacked panels are
    // read-only and shared by every band.
    const size_t panels = (dims.m + kBandRows - 1) / kBandRows;
    runner->run(bands, [&](size_t band) {
        const size_t p0 = panels * band / bands;
        const size_t p1 = panels * (band + 1) / bands;
        const size_t i0 = p0 * kBandRows;
        const size_t i1 = std::min(p1 * kBandRows, dims.m);
        if (i0 < i1)
            runBackend(backend, dst, a, b, trans, i0, i1, ep, packedB);
    });
}

void
Gemm::multiply(Matrix &dst, const QuantizedMatrix &a,
               const QuantizedMatrix &b, Trans trans)
{
    multiply(dst, a, b, trans, Epilogue{}, active());
}

void
Gemm::multiply(Matrix &dst, const QuantizedMatrix &a,
               const QuantizedMatrix &b, Trans trans,
               const Epilogue &epilogue)
{
    multiply(dst, a, b, trans, epilogue, active());
}

void
Gemm::multiply(Matrix &dst, const QuantizedMatrix &a,
               const QuantizedMatrix &b, Trans trans,
               const Epilogue &epilogue, Backend backend)
{
    multiplyImplInt8(dst, a, b, trans, epilogue, backend, nullptr,
                     nullptr);
}

void
Gemm::multiply(Matrix &dst, const QuantizedMatrix &a,
               const PackedMatrix &b, Trans transA,
               const Epilogue &epilogue)
{
    multiply(dst, a, b, transA, epilogue, active());
}

void
Gemm::multiply(Matrix &dst, const QuantizedMatrix &a,
               const PackedMatrix &b, Trans transA,
               const Epilogue &epilogue, Backend backend)
{
    if (!b.hasInt8()) {
        throw std::invalid_argument(
            "gemm: PackedMatrix holds no int8 panels (packInt8 was "
            "never called)");
    }
    multiplyImplInt8(dst, a, *b.sourceInt8(),
                     combinePackedTrans(b.trans(), transA), epilogue,
                     backend, b.int8Panels(), b.wsum());
}

void
Gemm::multiplyImplInt8(Matrix &dst, const QuantizedMatrix &a,
                       const QuantizedMatrix &b, Trans trans,
                       const Epilogue &epilogue, Backend backend,
                       const int8_t *packedB, const int32_t *packedWsum)
{
    if (!available(backend)) {
        throw std::invalid_argument(
            strfmt("gemm: backend %s is not available on this host",
                   backendName(backend)));
    }
    Epilogue ep = epilogue;
    if (ep.act == Epilogue::Act::Gelu &&
        epilogueMode() == EpilogueMode::FusedFast)
        ep.act = Epilogue::Act::GeluFast;
    // The integer core's saturation-freedom and zero-point algebra
    // assume A in the [0, 127] activation domain and B symmetric with
    // zero point 0; a per-row quantized A under Trans::A would hand
    // column identities per-row parameters.
    if (a.kind() != QuantizedMatrix::Kind::ActivationU7) {
        throw std::invalid_argument(
            "gemm: quantized multiply needs an ActivationU7 first "
            "operand (see gemm.h, INT8 quantized path)");
    }
    if (b.kind() != QuantizedMatrix::Kind::WeightS8) {
        throw std::invalid_argument(
            "gemm: quantized multiply needs a WeightS8 second operand "
            "(see gemm.h, INT8 quantized path)");
    }
    if (trans == Trans::A &&
        a.granularity() == QuantizedMatrix::Granularity::PerRow) {
        throw std::invalid_argument(
            "gemm: per-row quantized A cannot be used with Trans::A "
            "(the transpose reassigns row identities)");
    }
    const GemmDims dims = checkedDims(a, b, trans);
    if (dims.k > kMaxQuantDepth) {
        throw std::invalid_argument(
            strfmt("gemm: quantized depth k=%zu exceeds the int32-exact "
                   "limit %zu",
                   dims.k, kMaxQuantDepth));
    }
    validateEpilogue(dst, dims, ep);
    // Integer operands cannot hold NaN/Inf; the float-side contracts
    // still apply to the epilogue inputs.
    VITALITY_DCHECK(!ep.bias ||
                        check::allFinite(ep.bias->data(), ep.bias->size()),
                    "gemm(int8): non-finite epilogue bias");
    VITALITY_DCHECK(!ep.accumulate ||
                        check::allFinite(dst.data(), dst.size()),
                    "gemm(int8): accumulate into non-finite dst");
    if (!ep.accumulate)
        dst.resize(dims.m, dims.n);
    if (dims.m == 0 || dims.n == 0)
        return;
    if (dims.k == 0) {
        // The product is all zeros; the epilogue still applies to it.
        if (ep.trivial()) {
            dst.fill(0.0f);
            return;
        }
        Workspace::Frame frame(t_scalarArena);
        const Matrix &zeros = t_scalarArena.acquireZeroed(1, dims.n);
        for (size_t i = 0; i < dims.m; ++i)
            epilogueApplyRow(dst.rowPtr(i), zeros.rowPtr(0), dims.n, ep);
        return;
    }

    if (!ep.trivial() && epilogueMode() == EpilogueMode::Unfused) {
        // Same debug/bench fallback as the fp32 path: raw dequantized
        // product into scratch, then the canonical epilogue pass.
        // Bitwise-identical to the fused path by construction.
        Workspace::Frame frame(t_scalarArena);
        Matrix &product = t_scalarArena.acquire(dims.m, dims.n);
        multiplyImplInt8(product, a, b, trans, Epilogue{}, backend,
                         packedB, packedWsum);
        for (size_t i = 0; i < dims.m; ++i)
            epilogueApplyRow(dst.rowPtr(i), product.rowPtr(i), dims.n, ep);
        return;
    }

    // Per-column sums of op(B), shared by every band: the zero-point
    // correction term za_i * wsum_j (gemm.h). A prepacked RHS carries
    // them from pack time (identical integers — exact sums); otherwise
    // they are computed per call into a thread-local, read-only once
    // filled, so the band closures may alias it freely.
    const int32_t *wsum = packedWsum;
    static thread_local std::vector<int32_t> t_wsum;
    if (!wsum) {
        t_wsum.resize(dims.n);
        int32_t *ws = t_wsum.data();
        if (trans == Trans::B) {
            // op(B)(kk, j) = b(j, kk): column sums are b's row sums.
            for (size_t j = 0; j < dims.n; ++j) {
                const int8_t *brow = b.rowPtr(j);
                int32_t s = 0;
                for (size_t kk = 0; kk < dims.k; ++kk)
                    s += brow[kk];
                ws[j] = s;
            }
        } else {
            std::fill(ws, ws + dims.n, 0);
            for (size_t kk = 0; kk < dims.k; ++kk) {
                const int8_t *brow = b.rowPtr(kk);
                for (size_t j = 0; j < dims.n; ++j)
                    ws[j] += brow[j];
            }
        }
        wsum = ws;
    }

    std::shared_ptr<const ParallelRunner> runner;
    if (dims.m > kQuantBandRows &&
        2ull * dims.m * dims.n * dims.k >= 2 * kMinFlopsPerBand)
        runner = parallelRunner();
    const size_t bands =
        runner ? chooseBands(dims, runner, kQuantBandRows) : 1;
    if (bands <= 1) {
        runBackendInt8(backend, dst, a, b, trans, 0, dims.m, wsum, ep,
                       packedB);
        return;
    }
    // Bands partition the output rows and integer accumulation is
    // exact, so results are bitwise-identical at any band count.
    const size_t panels =
        (dims.m + kQuantBandRows - 1) / kQuantBandRows;
    runner->run(bands, [&](size_t band) {
        const size_t p0 = panels * band / bands;
        const size_t p1 = panels * (band + 1) / bands;
        const size_t i0 = p0 * kQuantBandRows;
        const size_t i1 = std::min(p1 * kQuantBandRows, dims.m);
        if (i0 < i1)
            runBackendInt8(backend, dst, a, b, trans, i0, i1, wsum, ep,
                           packedB);
    });
}

Gemm::Backend
Gemm::active()
{
    int cur = g_active.load(std::memory_order_acquire);
    if (cur < 0) {
        const Backend resolved = resolveDefault();
        // Several threads may race the first resolution; they all
        // compute the same value, so the first store wins harmlessly.
        int expected = -1;
        g_active.compare_exchange_strong(expected,
                                         static_cast<int>(resolved),
                                         std::memory_order_acq_rel);
        cur = g_active.load(std::memory_order_acquire);
    }
    return static_cast<Backend>(cur);
}

void
Gemm::setActive(Backend backend)
{
    if (!available(backend)) {
        throw std::invalid_argument(
            strfmt("gemm: backend %s is not available on this host",
                   backendName(backend)));
    }
    g_active.store(static_cast<int>(backend), std::memory_order_release);
}

bool
Gemm::available(Backend backend)
{
    switch (backend) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
        return cpuHasAvx2Fma();
    }
    return false;
}

const char *
Gemm::backendName(Backend backend)
{
    switch (backend) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    }
    return "unknown";
}

std::optional<Gemm::Backend>
Gemm::parseBackend(const std::string &name)
{
    if (name == "scalar")
        return Backend::Scalar;
    if (name == "avx2")
        return Backend::Avx2;
    return std::nullopt;
}

void
Gemm::setParallelRunner(std::shared_ptr<const ParallelRunner> runner)
{
    if (runner && (!runner->width || !runner->run)) {
        throw std::invalid_argument(
            "gemm: parallel runner needs both width and run callbacks");
    }
    std::lock_guard<std::mutex> lock(g_runnerMutex);
    g_runner = std::move(runner);
}

std::shared_ptr<const Gemm::ParallelRunner>
Gemm::parallelRunner()
{
    std::lock_guard<std::mutex> lock(g_runnerMutex);
    return g_runner;
}

void
Gemm::setMaxThreads(size_t cap)
{
    g_maxThreads.store(static_cast<long>(cap),
                       std::memory_order_release);
}

size_t
Gemm::maxThreads()
{
    long cur = g_maxThreads.load(std::memory_order_acquire);
    if (cur < 0) {
        const long resolved = resolveMaxThreads();
        long expected = -2;
        g_maxThreads.compare_exchange_strong(expected, resolved,
                                             std::memory_order_acq_rel);
        cur = g_maxThreads.load(std::memory_order_acquire);
    }
    return static_cast<size_t>(cur);
}

size_t
Gemm::parallelWidth()
{
    const std::shared_ptr<const ParallelRunner> runner = parallelRunner();
    if (!runner)
        return 1;
    size_t width = runner->width();
    const size_t cap = maxThreads();
    if (cap)
        width = std::min(width, cap);
    return std::max<size_t>(1, width);
}

Gemm::EpilogueMode
Gemm::epilogueMode()
{
    int cur = g_epilogueMode.load(std::memory_order_acquire);
    if (cur < 0) {
        int resolved = static_cast<int>(EpilogueMode::Fused);
        const char *env = std::getenv("VITALITY_EPILOGUE");
        if (env && *env) {
            const std::optional<EpilogueMode> wanted =
                parseEpilogueMode(env);
            if (wanted) {
                resolved = static_cast<int>(*wanted);
            } else {
                warn("VITALITY_EPILOGUE=%s not recognized (want "
                     "fused|unfused|fast); using fused",
                     env);
            }
        }
        int expected = -1;
        g_epilogueMode.compare_exchange_strong(expected, resolved,
                                               std::memory_order_acq_rel);
        cur = g_epilogueMode.load(std::memory_order_acquire);
    }
    return static_cast<EpilogueMode>(cur);
}

void
Gemm::setEpilogueMode(EpilogueMode mode)
{
    g_epilogueMode.store(static_cast<int>(mode),
                         std::memory_order_release);
}

const char *
Gemm::epilogueModeName(EpilogueMode mode)
{
    switch (mode) {
    case EpilogueMode::Fused:
        return "fused";
    case EpilogueMode::Unfused:
        return "unfused";
    case EpilogueMode::FusedFast:
        return "fast";
    }
    return "unknown";
}

std::optional<Gemm::EpilogueMode>
Gemm::parseEpilogueMode(const std::string &name)
{
    if (name == "fused")
        return EpilogueMode::Fused;
    if (name == "unfused")
        return EpilogueMode::Unfused;
    if (name == "fast")
        return EpilogueMode::FusedFast;
    return std::nullopt;
}

Gemm::QuantMode
Gemm::quantMode()
{
    int cur = g_quantMode.load(std::memory_order_acquire);
    if (cur < 0) {
        int resolved = static_cast<int>(QuantMode::Off);
        const char *env = std::getenv("VITALITY_QUANT");
        if (env && *env) {
            const std::optional<QuantMode> wanted = parseQuantMode(env);
            if (wanted) {
                resolved = static_cast<int>(*wanted);
            } else {
                warn("VITALITY_QUANT=%s not recognized (want off|int8); "
                     "using off",
                     env);
            }
        }
        int expected = -1;
        g_quantMode.compare_exchange_strong(expected, resolved,
                                            std::memory_order_acq_rel);
        cur = g_quantMode.load(std::memory_order_acquire);
    }
    return static_cast<QuantMode>(cur);
}

void
Gemm::setQuantMode(QuantMode mode)
{
    g_quantMode.store(static_cast<int>(mode), std::memory_order_release);
}

const char *
Gemm::quantModeName(QuantMode mode)
{
    switch (mode) {
    case QuantMode::Off:
        return "off";
    case QuantMode::Int8:
        return "int8";
    }
    return "unknown";
}

std::optional<Gemm::QuantMode>
Gemm::parseQuantMode(const std::string &name)
{
    if (name == "off")
        return QuantMode::Off;
    if (name == "int8")
        return QuantMode::Int8;
    return std::nullopt;
}

} // namespace vitality
