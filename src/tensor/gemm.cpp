#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

namespace detail {

#if VITALITY_HAVE_AVX2
// Defined in gemm_avx2.cpp, compiled with -mavx2 -mfma. Must only be
// called after a runtime CPUID check: the whole translation unit is
// built for the AVX2 ISA.
void gemmAvx2(Matrix &dst, const Matrix &a, const Matrix &b,
              Gemm::Trans trans);
#endif

} // namespace detail

namespace {

// Block size for the scalar cache-tiled loops. 64 floats = 256 bytes
// per row strip, keeping three blocks comfortably within L1.
constexpr size_t kBlock = 64;

/** op(X) dimensions: rows(op(A)) x cols(op(A)) = m x k, op(B) = k x n. */
struct GemmDims
{
    size_t m, n, k;
};

GemmDims
checkedDims(const Matrix &a, const Matrix &b, Gemm::Trans trans)
{
    switch (trans) {
    case Gemm::Trans::None:
        if (a.cols() != b.rows()) {
            throw std::invalid_argument(
                strfmt("matmul: inner dims differ, %s vs %s",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.rows(), b.cols(), a.cols()};
    case Gemm::Trans::A:
        if (a.rows() != b.rows()) {
            throw std::invalid_argument(
                strfmt("matmulAT: inner dims differ, %s^T vs %s",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.cols(), b.cols(), a.rows()};
    case Gemm::Trans::B:
        if (a.cols() != b.cols()) {
            throw std::invalid_argument(
                strfmt("matmulBT: inner dims differ, %s vs %s^T",
                       a.shapeStr().c_str(), b.shapeStr().c_str()));
        }
        return {a.rows(), b.rows(), a.cols()};
    }
    throw std::invalid_argument("gemm: unknown transpose mode");
}

// The scalar reference backend: the original cache-blocked loops. Every
// variant accumulates each output element over k in ascending order, the
// order the AVX2 microkernel reproduces (see the tolerance note in
// gemm.h).

void
scalarNone(Matrix &dst, const Matrix &a, const Matrix &b)
{
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    dst.fill(0.0f);
    // Blocked i-k-j order: the innermost loop streams contiguous rows of
    // B and C, which vectorizes well.
    for (size_t i0 = 0; i0 < m; i0 += kBlock) {
        const size_t i1 = std::min(i0 + kBlock, m);
        for (size_t k0 = 0; k0 < k; k0 += kBlock) {
            const size_t k1 = std::min(k0 + kBlock, k);
            for (size_t i = i0; i < i1; ++i) {
                const float *arow = a.rowPtr(i);
                float *crow = dst.rowPtr(i);
                for (size_t kk = k0; kk < k1; ++kk) {
                    const float aik = arow[kk];
                    const float *brow = b.rowPtr(kk);
                    for (size_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }
}

void
scalarTransB(Matrix &dst, const Matrix &a, const Matrix &b)
{
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    // Row-by-row dot products: both operands stream contiguously.
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = dst.rowPtr(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
}

void
scalarTransA(Matrix &dst, const Matrix &a, const Matrix &b)
{
    const size_t m = a.cols(), k = a.rows(), n = b.cols();
    dst.fill(0.0f);
    // Accumulate rank-1 updates: for each shared row kk, C += a_kk^T b_kk.
    for (size_t kk = 0; kk < k; ++kk) {
        const float *arow = a.rowPtr(kk);
        const float *brow = b.rowPtr(kk);
        for (size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            float *crow = dst.rowPtr(i);
            for (size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
}

void
gemmScalar(Matrix &dst, const Matrix &a, const Matrix &b,
           Gemm::Trans trans)
{
    switch (trans) {
    case Gemm::Trans::None:
        scalarNone(dst, a, b);
        return;
    case Gemm::Trans::A:
        scalarTransA(dst, a, b);
        return;
    case Gemm::Trans::B:
        scalarTransB(dst, a, b);
        return;
    }
}

bool
cpuHasAvx2Fma()
{
#if VITALITY_HAVE_AVX2 && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

Gemm::Backend
resolveDefault()
{
    const Gemm::Backend best = Gemm::available(Gemm::Backend::Avx2)
                                   ? Gemm::Backend::Avx2
                                   : Gemm::Backend::Scalar;
    const char *env = std::getenv("VITALITY_GEMM");
    if (!env || !*env)
        return best;
    const std::optional<Gemm::Backend> wanted = Gemm::parseBackend(env);
    if (!wanted) {
        warn("VITALITY_GEMM=%s not recognized (want scalar|avx2); "
             "using %s",
             env, Gemm::backendName(best));
        return best;
    }
    if (!Gemm::available(*wanted)) {
        warn("VITALITY_GEMM=%s requested but unavailable here; using %s",
             env, Gemm::backendName(best));
        return best;
    }
    return *wanted;
}

// -1 = unresolved; otherwise holds a Backend value. Resolved lazily so
// the env override applies no matter when the first multiply happens.
std::atomic<int> g_active{-1};

} // namespace

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans)
{
    multiply(dst, a, b, trans, active());
}

void
Gemm::multiply(Matrix &dst, const Matrix &a, const Matrix &b, Trans trans,
               Backend backend)
{
    // Guard the explicit-backend path too: without this, requesting
    // Avx2 on a host without the ISA would reach the microkernel and
    // die on an illegal instruction instead of throwing as documented.
    if (!available(backend)) {
        throw std::invalid_argument(
            strfmt("gemm: backend %s is not available on this host",
                   backendName(backend)));
    }
    const GemmDims dims = checkedDims(a, b, trans);
    // Matrix always owns its storage, so object identity is the only
    // possible aliasing.
    if (&dst == &a || &dst == &b)
        throw std::invalid_argument("gemm: dst must not alias an input");
    dst.resize(dims.m, dims.n);
    if (dims.m == 0 || dims.n == 0)
        return;
    if (dims.k == 0) {
        dst.fill(0.0f);
        return;
    }
    switch (backend) {
    case Backend::Scalar:
        gemmScalar(dst, a, b, trans);
        return;
    case Backend::Avx2:
#if VITALITY_HAVE_AVX2
        detail::gemmAvx2(dst, a, b, trans);
        return;
#else
        throw std::invalid_argument(
            "gemm: AVX2 backend not compiled in "
            "(build with -DVITALITY_ENABLE_AVX2=ON)");
#endif
    }
    throw std::invalid_argument("gemm: unknown backend");
}

Gemm::Backend
Gemm::active()
{
    int cur = g_active.load(std::memory_order_acquire);
    if (cur < 0) {
        const Backend resolved = resolveDefault();
        // Several threads may race the first resolution; they all
        // compute the same value, so the first store wins harmlessly.
        int expected = -1;
        g_active.compare_exchange_strong(expected,
                                         static_cast<int>(resolved),
                                         std::memory_order_acq_rel);
        cur = g_active.load(std::memory_order_acquire);
    }
    return static_cast<Backend>(cur);
}

void
Gemm::setActive(Backend backend)
{
    if (!available(backend)) {
        throw std::invalid_argument(
            strfmt("gemm: backend %s is not available on this host",
                   backendName(backend)));
    }
    g_active.store(static_cast<int>(backend), std::memory_order_release);
}

bool
Gemm::available(Backend backend)
{
    switch (backend) {
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
        return cpuHasAvx2Fma();
    }
    return false;
}

const char *
Gemm::backendName(Backend backend)
{
    switch (backend) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    }
    return "unknown";
}

std::optional<Gemm::Backend>
Gemm::parseBackend(const std::string &name)
{
    if (name == "scalar")
        return Backend::Scalar;
    if (name == "avx2")
        return Backend::Avx2;
    return std::nullopt;
}

} // namespace vitality
