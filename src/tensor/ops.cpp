#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

namespace {

void
requireSameShape(const Matrix &a, const Matrix &b, const char *op)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument(
            strfmt("%s: shape mismatch %s vs %s", op, a.shapeStr().c_str(),
                   b.shapeStr().c_str()));
    }
}

// Block size for the cache-tiled GEMM inner loops. 64 floats = 256 bytes
// per row strip, keeping three blocks comfortably within L1.
constexpr size_t kBlock = 64;

} // namespace

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.rows()) {
        throw std::invalid_argument(
            strfmt("matmul: inner dims differ, %s vs %s",
                   a.shapeStr().c_str(), b.shapeStr().c_str()));
    }
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    Matrix c(m, n);
    // Blocked i-k-j order: the innermost loop streams contiguous rows of B
    // and C, which vectorizes well.
    for (size_t i0 = 0; i0 < m; i0 += kBlock) {
        const size_t i1 = std::min(i0 + kBlock, m);
        for (size_t k0 = 0; k0 < k; k0 += kBlock) {
            const size_t k1 = std::min(k0 + kBlock, k);
            for (size_t i = i0; i < i1; ++i) {
                const float *arow = a.rowPtr(i);
                float *crow = c.rowPtr(i);
                for (size_t kk = k0; kk < k1; ++kk) {
                    const float aik = arow[kk];
                    const float *brow = b.rowPtr(kk);
                    for (size_t j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
        }
    }
    return c;
}

Matrix
matmulBT(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols()) {
        throw std::invalid_argument(
            strfmt("matmulBT: inner dims differ, %s vs %s^T",
                   a.shapeStr().c_str(), b.shapeStr().c_str()));
    }
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    Matrix c(m, n);
    // Row-by-row dot products: both operands stream contiguously.
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    return c;
}

Matrix
matmulAT(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows()) {
        throw std::invalid_argument(
            strfmt("matmulAT: inner dims differ, %s^T vs %s",
                   a.shapeStr().c_str(), b.shapeStr().c_str()));
    }
    const size_t m = a.cols(), k = a.rows(), n = b.cols();
    Matrix c(m, n);
    // Accumulate rank-1 updates: for each shared row kk, C += a_kk^T b_kk.
    for (size_t kk = 0; kk < k; ++kk) {
        const float *arow = a.rowPtr(kk);
        const float *brow = b.rowPtr(kk);
        for (size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            float *crow = c.rowPtr(i);
            for (size_t j = 0; j < n; ++j)
                crow[j] += aki * brow[j];
        }
    }
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            t(c, r) = a(r, c);
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "add");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "sub");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] - b.data()[i];
    return c;
}

Matrix
hadamard(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "hadamard");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * b.data()[i];
    return c;
}

Matrix
divide(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "divide");
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] / b.data()[i];
    return c;
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

Matrix
addScalar(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + s;
    return c;
}

Matrix
rowSum(const Matrix &a)
{
    Matrix s(a.rows(), 1);
    for (size_t r = 0; r < a.rows(); ++r) {
        float acc = 0.0f;
        const float *row = a.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            acc += row[c];
        s(r, 0) = acc;
    }
    return s;
}

Matrix
colSum(const Matrix &a)
{
    Matrix s(1, a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *row = a.rowPtr(r);
        float *srow = s.rowPtr(0);
        for (size_t c = 0; c < a.cols(); ++c)
            srow[c] += row[c];
    }
    return s;
}

Matrix
rowMean(const Matrix &a)
{
    if (a.cols() == 0)
        throw std::invalid_argument("rowMean: zero columns");
    return scale(rowSum(a), 1.0f / static_cast<float>(a.cols()));
}

Matrix
colMean(const Matrix &a)
{
    if (a.rows() == 0)
        throw std::invalid_argument("colMean: zero rows");
    return scale(colSum(a), 1.0f / static_cast<float>(a.rows()));
}

Matrix
broadcastAddRow(const Matrix &a, const Matrix &v)
{
    if (v.rows() != 1 || v.cols() != a.cols()) {
        throw std::invalid_argument(
            strfmt("broadcastAddRow: %s vs row vector %s",
                   a.shapeStr().c_str(), v.shapeStr().c_str()));
    }
    Matrix c(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col) + v(0, col);
    return c;
}

Matrix
broadcastSubRow(const Matrix &a, const Matrix &v)
{
    return broadcastAddRow(a, scale(v, -1.0f));
}

Matrix
broadcastAddCol(const Matrix &a, const Matrix &v)
{
    if (v.cols() != 1 || v.rows() != a.rows()) {
        throw std::invalid_argument(
            strfmt("broadcastAddCol: %s vs col vector %s",
                   a.shapeStr().c_str(), v.shapeStr().c_str()));
    }
    Matrix c(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col) + v(r, 0);
    return c;
}

Matrix
scaleRows(const Matrix &a, const Matrix &v)
{
    if (v.cols() != 1 || v.rows() != a.rows()) {
        throw std::invalid_argument(
            strfmt("scaleRows: %s vs col vector %s", a.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
    Matrix c(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col) * v(r, 0);
    return c;
}

Matrix
divRows(const Matrix &a, const Matrix &v)
{
    if (v.cols() != 1 || v.rows() != a.rows()) {
        throw std::invalid_argument(
            strfmt("divRows: %s vs col vector %s", a.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
    Matrix c(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float inv = 1.0f / v(r, 0);
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col) * inv;
    }
    return c;
}

Matrix
softmaxRows(const Matrix &a)
{
    Matrix s(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *in = a.rowPtr(r);
        float *out = s.rowPtr(r);
        float maxv = in[0];
        for (size_t c = 1; c < a.cols(); ++c)
            maxv = std::max(maxv, in[c]);
        float denom = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c) {
            out[c] = std::exp(in[c] - maxv);
            denom += out[c];
        }
        const float inv = 1.0f / denom;
        for (size_t c = 0; c < a.cols(); ++c)
            out[c] *= inv;
    }
    return s;
}

Matrix
expElem(const Matrix &a)
{
    return mapElem(a, [](float x) { return std::exp(x); });
}

Matrix
mapElem(const Matrix &a, const std::function<float(float)> &fn)
{
    Matrix c(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        c.data()[i] = fn(a.data()[i]);
    return c;
}

Matrix
outer(const Matrix &u, const Matrix &v)
{
    if (u.cols() != 1 || v.cols() != 1)
        throw std::invalid_argument("outer: expects column vectors");
    Matrix c(u.rows(), v.rows());
    for (size_t r = 0; r < u.rows(); ++r)
        for (size_t col = 0; col < v.rows(); ++col)
            c(r, col) = u(r, 0) * v(col, 0);
    return c;
}

Matrix
concatRows(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols())
        throw std::invalid_argument("concatRows: column mismatch");
    Matrix c(a.rows() + b.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col);
    for (size_t r = 0; r < b.rows(); ++r)
        for (size_t col = 0; col < b.cols(); ++col)
            c(a.rows() + r, col) = b(r, col);
    return c;
}

Matrix
concatCols(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows())
        throw std::invalid_argument("concatCols: row mismatch");
    Matrix c(a.rows(), a.cols() + b.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col);
        for (size_t col = 0; col < b.cols(); ++col)
            c(r, a.cols() + col) = b(r, col);
    }
    return c;
}

float
maxAbs(const Matrix &a)
{
    float best = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a.data()[i]));
    return best;
}

float
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "maxAbsDiff");
    float best = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a.data()[i] - b.data()[i]));
    return best;
}

float
frobeniusNorm(const Matrix &a)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a.data()[i]) * a.data()[i];
    return static_cast<float>(std::sqrt(acc));
}

float
mean(const Matrix &a)
{
    if (a.empty())
        throw std::invalid_argument("mean: empty matrix");
    return sum(a) / static_cast<float>(a.size());
}

float
sum(const Matrix &a)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a.data()[i];
    return static_cast<float>(acc);
}

size_t
argmaxRow(const Matrix &a, size_t r)
{
    VITALITY_ASSERT(r < a.rows() && a.cols() > 0, "argmaxRow out of range");
    size_t best = 0;
    for (size_t c = 1; c < a.cols(); ++c) {
        if (a(r, c) > a(r, best))
            best = c;
    }
    return best;
}

float
fractionInRange(const Matrix &a, float lo, float hi)
{
    if (a.empty())
        return 0.0f;
    size_t count = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        const float x = a.data()[i];
        if (x >= lo && x < hi)
            ++count;
    }
    return static_cast<float>(count) / static_cast<float>(a.size());
}

float
sparsity(const Matrix &a)
{
    if (a.empty())
        return 0.0f;
    size_t zeros = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] == 0.0f)
            ++zeros;
    }
    return static_cast<float>(zeros) / static_cast<float>(a.size());
}

} // namespace vitality
