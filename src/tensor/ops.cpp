#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "base/check.h"
#include "base/logging.h"
#include "tensor/gemm.h"
#include "tensor/transcendental.h"

namespace vitality {

namespace {

void
requireSameShape(const Matrix &a, const Matrix &b, const char *op)
{
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument(
            strfmt("%s: shape mismatch %s vs %s", op, a.shapeStr().c_str(),
                   b.shapeStr().c_str()));
    }
}

void
requireRowVector(const Matrix &a, const Matrix &v, const char *op)
{
    if (v.rows() != 1 || v.cols() != a.cols()) {
        throw std::invalid_argument(
            strfmt("%s: %s vs row vector %s", op, a.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
}

void
requireColVector(const Matrix &a, const Matrix &v, const char *op)
{
    if (v.cols() != 1 || v.rows() != a.rows()) {
        throw std::invalid_argument(
            strfmt("%s: %s vs col vector %s", op, a.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
}

} // namespace

// --- matmul family ----------------------------------------------------------
//
// All three variants (and therefore every matmul in the library: the
// value-returning forms below are thin wrappers) funnel through the
// Gemm dispatcher, which picks the AVX2+FMA microkernel or the portable
// scalar loops at runtime. Shape and aliasing checks live in
// Gemm::multiply.

void
matmulInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    Gemm::multiply(dst, a, b, Gemm::Trans::None);
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulInto(c, a, b);
    return c;
}

void
matmulBTInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    Gemm::multiply(dst, a, b, Gemm::Trans::B);
}

Matrix
matmulBT(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulBTInto(c, a, b);
    return c;
}

void
matmulATInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    Gemm::multiply(dst, a, b, Gemm::Trans::A);
}

Matrix
matmulAT(const Matrix &a, const Matrix &b)
{
    Matrix c;
    matmulATInto(c, a, b);
    return c;
}

void
transposeInto(Matrix &dst, const Matrix &a)
{
    if (&dst == &a)
        throw std::invalid_argument("transposeInto: dst must not alias a");
    dst.resize(a.cols(), a.rows());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            dst(c, r) = a(r, c);
}

Matrix
transpose(const Matrix &a)
{
    Matrix t;
    transposeInto(t, a);
    return t;
}

// --- element-wise -----------------------------------------------------------

void
addInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "add");
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] + b.data()[i];
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    Matrix c;
    addInto(c, a, b);
    return c;
}

void
subInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "sub");
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] - b.data()[i];
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    Matrix c;
    subInto(c, a, b);
    return c;
}

void
hadamardInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "hadamard");
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] * b.data()[i];
}

Matrix
hadamard(const Matrix &a, const Matrix &b)
{
    Matrix c;
    hadamardInto(c, a, b);
    return c;
}

void
divideInto(Matrix &dst, const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "divide");
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] / b.data()[i];
}

Matrix
divide(const Matrix &a, const Matrix &b)
{
    Matrix c;
    divideInto(c, a, b);
    return c;
}

void
scaleInto(Matrix &dst, const Matrix &a, float s)
{
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] * s;
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c;
    scaleInto(c, a, s);
    return c;
}

void
addScalarInto(Matrix &dst, const Matrix &a, float s)
{
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = a.data()[i] + s;
}

Matrix
addScalar(const Matrix &a, float s)
{
    Matrix c;
    addScalarInto(c, a, s);
    return c;
}

// --- reductions -------------------------------------------------------------

void
rowSumInto(Matrix &dst, const Matrix &a)
{
    if (&dst == &a)
        throw std::invalid_argument("rowSumInto: dst must not alias a");
    dst.resize(a.rows(), 1);
    for (size_t r = 0; r < a.rows(); ++r) {
        float acc = 0.0f;
        const float *row = a.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            acc += row[c];
        dst(r, 0) = acc;
    }
}

Matrix
rowSum(const Matrix &a)
{
    Matrix s;
    rowSumInto(s, a);
    return s;
}

void
colSumInto(Matrix &dst, const Matrix &a)
{
    if (&dst == &a)
        throw std::invalid_argument("colSumInto: dst must not alias a");
    dst.resize(1, a.cols());
    dst.fill(0.0f);
    float *srow = dst.rowPtr(0);
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *row = a.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            srow[c] += row[c];
    }
}

Matrix
colSum(const Matrix &a)
{
    Matrix s;
    colSumInto(s, a);
    return s;
}

void
rowMeanInto(Matrix &dst, const Matrix &a)
{
    if (a.cols() == 0)
        throw std::invalid_argument("rowMean: zero columns");
    rowSumInto(dst, a);
    scaleInto(dst, dst, 1.0f / static_cast<float>(a.cols()));
}

Matrix
rowMean(const Matrix &a)
{
    Matrix m;
    rowMeanInto(m, a);
    return m;
}

void
colMeanInto(Matrix &dst, const Matrix &a)
{
    if (a.rows() == 0)
        throw std::invalid_argument("colMean: zero rows");
    colSumInto(dst, a);
    scaleInto(dst, dst, 1.0f / static_cast<float>(a.rows()));
}

Matrix
colMean(const Matrix &a)
{
    Matrix m;
    colMeanInto(m, a);
    return m;
}

// --- broadcasts -------------------------------------------------------------

void
broadcastAddRowInto(Matrix &dst, const Matrix &a, const Matrix &v)
{
    requireRowVector(a, v, "broadcastAddRow");
    if (&dst == &v)
        throw std::invalid_argument("broadcastAddRowInto: dst aliases v");
    dst.resize(a.rows(), a.cols());
    const float *vrow = v.rowPtr(0);
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *arow = a.rowPtr(r);
        float *drow = dst.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            drow[c] = arow[c] + vrow[c];
    }
}

Matrix
broadcastAddRow(const Matrix &a, const Matrix &v)
{
    Matrix c;
    broadcastAddRowInto(c, a, v);
    return c;
}

void
broadcastSubRowInto(Matrix &dst, const Matrix &a, const Matrix &v)
{
    requireRowVector(a, v, "broadcastSubRow");
    if (&dst == &v)
        throw std::invalid_argument("broadcastSubRowInto: dst aliases v");
    dst.resize(a.rows(), a.cols());
    const float *vrow = v.rowPtr(0);
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *arow = a.rowPtr(r);
        float *drow = dst.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            drow[c] = arow[c] - vrow[c];
    }
}

Matrix
broadcastSubRow(const Matrix &a, const Matrix &v)
{
    Matrix c;
    broadcastSubRowInto(c, a, v);
    return c;
}

void
broadcastAddColInto(Matrix &dst, const Matrix &a, const Matrix &v)
{
    requireColVector(a, v, "broadcastAddCol");
    if (&dst == &v)
        throw std::invalid_argument("broadcastAddColInto: dst aliases v");
    dst.resize(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float add_r = v(r, 0);
        const float *arow = a.rowPtr(r);
        float *drow = dst.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            drow[c] = arow[c] + add_r;
    }
}

Matrix
broadcastAddCol(const Matrix &a, const Matrix &v)
{
    Matrix c;
    broadcastAddColInto(c, a, v);
    return c;
}

void
scaleRowsInto(Matrix &dst, const Matrix &a, const Matrix &v)
{
    requireColVector(a, v, "scaleRows");
    if (&dst == &v)
        throw std::invalid_argument("scaleRowsInto: dst aliases v");
    dst.resize(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float s = v(r, 0);
        const float *arow = a.rowPtr(r);
        float *drow = dst.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            drow[c] = arow[c] * s;
    }
}

Matrix
scaleRows(const Matrix &a, const Matrix &v)
{
    Matrix c;
    scaleRowsInto(c, a, v);
    return c;
}

void
divRowsInto(Matrix &dst, const Matrix &a, const Matrix &v)
{
    requireColVector(a, v, "divRows");
    if (&dst == &v)
        throw std::invalid_argument("divRowsInto: dst aliases v");
    dst.resize(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float inv = 1.0f / v(r, 0);
        const float *arow = a.rowPtr(r);
        float *drow = dst.rowPtr(r);
        for (size_t c = 0; c < a.cols(); ++c)
            drow[c] = arow[c] * inv;
    }
}

Matrix
divRows(const Matrix &a, const Matrix &v)
{
    Matrix c;
    divRowsInto(c, a, v);
    return c;
}

// --- row-wise nonlinearities ------------------------------------------------

void
softmaxRowsInto(Matrix &dst, const Matrix &a)
{
    dst.resize(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *in = a.rowPtr(r);
        float *out = dst.rowPtr(r);
        float maxv = in[0];
        for (size_t c = 1; c < a.cols(); ++c)
            maxv = std::max(maxv, in[c]);
        float denom = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c) {
            out[c] = std::exp(in[c] - maxv);
            denom += out[c];
        }
        const float inv = 1.0f / denom;
        for (size_t c = 0; c < a.cols(); ++c)
            out[c] *= inv;
    }
}

Matrix
softmaxRows(const Matrix &a)
{
    Matrix s;
    softmaxRowsInto(s, a);
    return s;
}

void
layerNormRowsInto(Matrix &dst, const Matrix &a, const Matrix &gamma,
                  const Matrix &beta, float eps)
{
    requireRowVector(a, gamma, "layerNormRows(gamma)");
    requireRowVector(a, beta, "layerNormRows(beta)");
    if (&dst == &gamma || &dst == &beta)
        throw std::invalid_argument("layerNormRowsInto: dst aliases params");
    if (a.cols() == 0)
        throw std::invalid_argument("layerNormRows: zero columns");
    // A single NaN spreads through the whole row via mean/variance;
    // catch it on entry in checked builds rather than in the output.
    VITALITY_DCHECK(check::allFinite(a.data(), a.size()),
                    "layerNormRows: non-finite input %s",
                    a.shapeStr().c_str());
    VITALITY_DCHECK(check::allFinite(gamma.data(), gamma.size()) &&
                        check::allFinite(beta.data(), beta.size()),
                    "layerNormRows: non-finite gamma/beta");
    dst.resize(a.rows(), a.cols());
    const float inv_n = 1.0f / static_cast<float>(a.cols());
    const float *grow = gamma.rowPtr(0);
    const float *brow = beta.rowPtr(0);
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *in = a.rowPtr(r);
        float *out = dst.rowPtr(r);
        float mean_r = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c)
            mean_r += in[c];
        mean_r *= inv_n;
        float var_r = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c) {
            const float d = in[c] - mean_r;
            var_r += d * d;
        }
        var_r *= inv_n;
        const float inv_std = 1.0f / std::sqrt(var_r + eps);
        for (size_t c = 0; c < a.cols(); ++c)
            out[c] = (in[c] - mean_r) * inv_std * grow[c] + brow[c];
    }
}

Matrix
layerNormRows(const Matrix &a, const Matrix &gamma, const Matrix &beta,
              float eps)
{
    Matrix c;
    layerNormRowsInto(c, a, gamma, beta, eps);
    return c;
}

void
expElemInto(Matrix &dst, const Matrix &a)
{
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = std::exp(a.data()[i]);
}

Matrix
expElem(const Matrix &a)
{
    Matrix c;
    expElemInto(c, a);
    return c;
}

float
geluScalar(float x)
{
    const float kSqrt2OverPi = 0.7978845608f;
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

// --- polynomial transcendentals ---------------------------------------------
//
// The exp2 core shared by expApprox / tanhApprox / softmaxRowsApprox.
// Every step is a plain IEEE mul/add/compare (no FMA, no library
// call), so the sequence rounds identically wherever it is
// instantiated — which is what lets the AVX2 row kernels in
// gemm_avx2.cpp (the GELU epilogue, the approx softmax, the
// quantizer) replicate it lane by lane and stay bitwise-equal to
// these scalar fallbacks. Rounding to nearest-even uses the
// 1.5 * 2^23 magic-number trick instead of nearbyint, keeping the
// program free of rounding-mode library calls on every path.

namespace detail {

/**
 * 2^z with z clamped to [-126, 126] (normal-exponent range; the clamp
 * also absorbs NaN, which compares false and lands on -126). The two
 * selects mirror AVX2 max/min semantics — (a > b) ? a : b with NaN
 * taking the second operand — so the vector twin (exp2Core8 in
 * gemm_avx2.cpp) is the same program lane by lane.
 */
float
exp2CoreScalar(float z)
{
    float zc = (z > -kExp2Clamp) ? z : -kExp2Clamp;
    zc = (zc < kExp2Clamp) ? zc : kExp2Clamp;
    const float nf = (zc + kRoundMagic) - kRoundMagic;
    const float f = zc - nf;
    float p = kExp2C7;
    p = p * f + kExp2C6;
    p = p * f + kExp2C5;
    p = p * f + kExp2C4;
    p = p * f + kExp2C3;
    p = p * f + kExp2C2;
    p = p * f + kExp2C1;
    p = p * f + 1.0f;
    const int32_t n = static_cast<int32_t>(nf);
    const uint32_t bits = static_cast<uint32_t>(n + 127) << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    return p * scale;
}

#if VITALITY_HAVE_AVX2
// Defined in gemm_avx2.cpp (compiled with -mavx2 -mfma); only called
// after the Gemm dispatcher's runtime CPUID check selected the AVX2
// backend. Bitwise-identical to the scalar loops by the shared
// lane-program contract (and, for maxAbs, exact associativity of max).
void softmaxRowsApproxAvx2(Matrix &dst, const Matrix &a);
float maxAbsAvx2(const float *data, size_t count);
#endif

} // namespace detail

namespace {

using detail::kLog2e;
using detail::kTanhClamp;
using detail::kTwoLog2e;

inline float
tanhApproxCore(float x)
{
    float t = (x > -kTanhClamp) ? x : -kTanhClamp;
    t = (t < kTanhClamp) ? t : kTanhClamp;
    const float e2x = detail::exp2CoreScalar(t * kTwoLog2e);
    return (e2x - 1.0f) / (e2x + 1.0f);
}

} // namespace

float
expApprox(float x)
{
    return detail::exp2CoreScalar(x * kLog2e);
}

float
tanhApprox(float x)
{
    return tanhApproxCore(x);
}

float
geluApproxScalar(float x)
{
    // Same inner-polynomial order as the AVX2 lane program in
    // gemm_avx2.cpp: x^3 as (x * x) * x, inner as
    // kGeluSqrt2OverPi * (x + kGeluCubic * x^3), result as
    // (0.5 * x) * (1 + tanh).
    const float x3 = (x * x) * x;
    const float inner =
        detail::kGeluSqrt2OverPi * (x + detail::kGeluCubic * x3);
    return (0.5f * x) * (1.0f + tanhApproxCore(inner));
}

void
softmaxRowsApproxInto(Matrix &dst, const Matrix &a)
{
    if (a.size() == 0) {
        dst.resize(a.rows(), a.cols());
        return;
    }
#if VITALITY_HAVE_AVX2
    // Ride the Gemm dispatcher's CPUID-checked backend choice: when
    // the AVX2 backend is active, the 8-lane row kernel runs the same
    // program 8 elements at a time (bitwise-identical results, so the
    // predicted masks cannot depend on the backend).
    if (Gemm::active() == Gemm::Backend::Avx2) {
        detail::softmaxRowsApproxAvx2(dst, a);
        return;
    }
#endif
    dst.resize(a.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *in = a.rowPtr(r);
        float *out = dst.rowPtr(r);
        float maxv = in[0];
        for (size_t c = 1; c < a.cols(); ++c)
            maxv = std::max(maxv, in[c]);
        for (size_t c = 0; c < a.cols(); ++c)
            out[c] =
                detail::exp2CoreScalar((in[c] - maxv) * kLog2e);
        float denom = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c)
            denom += out[c];
        const float inv = 1.0f / denom;
        for (size_t c = 0; c < a.cols(); ++c)
            out[c] *= inv;
    }
}

void
geluInto(Matrix &dst, const Matrix &a)
{
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = geluScalar(a.data()[i]);
}

Matrix
gelu(const Matrix &a)
{
    Matrix c;
    geluInto(c, a);
    return c;
}

void
mapElemInto(Matrix &dst, const Matrix &a,
            const std::function<float(float)> &fn)
{
    dst.resize(a.rows(), a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        dst.data()[i] = fn(a.data()[i]);
}

Matrix
mapElem(const Matrix &a, const std::function<float(float)> &fn)
{
    Matrix c;
    mapElemInto(c, a, fn);
    return c;
}

// --- structural helpers -----------------------------------------------------

Matrix
outer(const Matrix &u, const Matrix &v)
{
    if (u.cols() != 1 || v.cols() != 1)
        throw std::invalid_argument("outer: expects column vectors");
    Matrix c(u.rows(), v.rows());
    for (size_t r = 0; r < u.rows(); ++r)
        for (size_t col = 0; col < v.rows(); ++col)
            c(r, col) = u(r, 0) * v(col, 0);
    return c;
}

Matrix
concatRows(const Matrix &a, const Matrix &b)
{
    if (a.cols() != b.cols())
        throw std::invalid_argument("concatRows: column mismatch");
    Matrix c(a.rows() + b.rows(), a.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col);
    for (size_t r = 0; r < b.rows(); ++r)
        for (size_t col = 0; col < b.cols(); ++col)
            c(a.rows() + r, col) = b(r, col);
    return c;
}

Matrix
concatCols(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows())
        throw std::invalid_argument("concatCols: row mismatch");
    Matrix c(a.rows(), a.cols() + b.cols());
    for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t col = 0; col < a.cols(); ++col)
            c(r, col) = a(r, col);
        for (size_t col = 0; col < b.cols(); ++col)
            c(r, a.cols() + col) = b(r, col);
    }
    return c;
}

// --- scalar summaries -------------------------------------------------------

float
maxAbs(const Matrix &a)
{
#if VITALITY_HAVE_AVX2
    // Max is exactly associative, so the 8-lane reduction returns the
    // same value as the scalar loop; the quantizer calls this per
    // sparse-branch forward, which is what makes it worth dispatching.
    if (Gemm::active() == Gemm::Backend::Avx2)
        return detail::maxAbsAvx2(a.data(), a.size());
#endif
    float best = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a.data()[i]));
    return best;
}

float
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    requireSameShape(a, b, "maxAbsDiff");
    float best = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a.data()[i] - b.data()[i]));
    return best;
}

float
frobeniusNorm(const Matrix &a)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a.data()[i]) * a.data()[i];
    return static_cast<float>(std::sqrt(acc));
}

float
mean(const Matrix &a)
{
    if (a.empty())
        throw std::invalid_argument("mean: empty matrix");
    return sum(a) / static_cast<float>(a.size());
}

float
sum(const Matrix &a)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a.data()[i];
    return static_cast<float>(acc);
}

size_t
argmaxRow(const Matrix &a, size_t r)
{
    VITALITY_ASSERT(r < a.rows() && a.cols() > 0, "argmaxRow out of range");
    size_t best = 0;
    for (size_t c = 1; c < a.cols(); ++c) {
        if (a(r, c) > a(r, best))
            best = c;
    }
    return best;
}

float
fractionInRange(const Matrix &a, float lo, float hi)
{
    if (a.empty())
        return 0.0f;
    size_t count = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        const float x = a.data()[i];
        if (x >= lo && x < hi)
            ++count;
    }
    return static_cast<float>(count) / static_cast<float>(a.size());
}

float
sparsity(const Matrix &a)
{
    if (a.empty())
        return 0.0f;
    size_t zeros = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a.data()[i] == 0.0f)
            ++zeros;
    }
    return static_cast<float>(zeros) / static_cast<float>(a.size());
}

} // namespace vitality
