#include "tensor/matrix.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "base/logging.h"
#include "base/rng.h"

namespace vitality {

Matrix::Matrix()
    : rows_(0), cols_(0)
{
}

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows)
    : rows_(rows.size()), cols_(0)
{
    for (const auto &r : rows) {
        if (cols_ == 0)
            cols_ = r.size();
        if (r.size() != cols_)
            throw std::invalid_argument("ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::zeros(size_t rows, size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::ones(size_t rows, size_t cols)
{
    return Matrix(rows, cols, 1.0f);
}

Matrix
Matrix::full(size_t rows, size_t cols, float value)
{
    return Matrix(rows, cols, value);
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0f;
    return m;
}

Matrix
Matrix::randn(size_t rows, size_t cols, Rng &rng, float mean, float stddev)
{
    Matrix m(rows, cols);
    for (auto &x : m.data_)
        x = rng.gaussian(mean, stddev);
    return m;
}

Matrix
Matrix::uniform(size_t rows, size_t cols, Rng &rng, float lo, float hi)
{
    Matrix m(rows, cols);
    for (auto &x : m.data_)
        x = rng.uniform(lo, hi);
    return m;
}

Matrix
Matrix::fromFlat(size_t rows, size_t cols, const std::vector<float> &flat)
{
    if (flat.size() != rows * cols)
        throw std::invalid_argument("fromFlat: buffer size mismatch");
    Matrix m(rows, cols);
    m.data_ = flat;
    return m;
}

float &
Matrix::operator()(size_t r, size_t c)
{
    VITALITY_ASSERT(r < rows_ && c < cols_,
                    "index (%zu, %zu) out of range for %s", r, c,
                    shapeStr().c_str());
    return data_[r * cols_ + c];
}

float
Matrix::operator()(size_t r, size_t c) const
{
    VITALITY_ASSERT(r < rows_ && c < cols_,
                    "index (%zu, %zu) out of range for %s", r, c,
                    shapeStr().c_str());
    return data_[r * cols_ + c];
}

Matrix
Matrix::row(size_t r) const
{
    VITALITY_ASSERT(r < rows_, "row %zu out of range for %s", r,
                    shapeStr().c_str());
    Matrix out(1, cols_);
    for (size_t c = 0; c < cols_; ++c)
        out(0, c) = (*this)(r, c);
    return out;
}

Matrix
Matrix::col(size_t c) const
{
    VITALITY_ASSERT(c < cols_, "col %zu out of range for %s", c,
                    shapeStr().c_str());
    Matrix out(rows_, 1);
    for (size_t r = 0; r < rows_; ++r)
        out(r, 0) = (*this)(r, c);
    return out;
}

Matrix
Matrix::rowRange(size_t r0, size_t r1) const
{
    if (r0 > r1 || r1 > rows_)
        throw std::invalid_argument("rowRange: bad range");
    Matrix out(r1 - r0, cols_);
    for (size_t r = r0; r < r1; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(r - r0, c) = (*this)(r, c);
    return out;
}

Matrix
Matrix::colRange(size_t c0, size_t c1) const
{
    if (c0 > c1 || c1 > cols_)
        throw std::invalid_argument("colRange: bad range");
    Matrix out(rows_, c1 - c0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = c0; c < c1; ++c)
            out(r, c - c0) = (*this)(r, c);
    return out;
}

void
Matrix::setRow(size_t r, const Matrix &values)
{
    if (values.rows() != 1 || values.cols() != cols_)
        throw std::invalid_argument("setRow: shape mismatch");
    for (size_t c = 0; c < cols_; ++c)
        (*this)(r, c) = values(0, c);
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

bool
Matrix::allClose(const Matrix &other, float tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

void
Matrix::reshape(size_t rows, size_t cols)
{
    if (rows * cols != size())
        throw std::invalid_argument("reshape: element count mismatch");
    rows_ = rows;
    cols_ = cols;
}

void
Matrix::resize(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
}

void
Matrix::copyFrom(const Matrix &other)
{
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.assign(other.data_.begin(), other.data_.end());
}

void
Matrix::fill(float value)
{
    for (auto &x : data_)
        x = value;
}

std::string
Matrix::shapeStr() const
{
    return strfmt("[%zu x %zu]", rows_, cols_);
}

std::string
Matrix::toString(int decimals) const
{
    std::ostringstream os;
    for (size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[[" : " [");
        for (size_t c = 0; c < cols_; ++c) {
            if (c)
                os << ", ";
            os << strfmt("%.*f", decimals, (*this)(r, c));
        }
        os << (r + 1 == rows_ ? "]]" : "],") << "\n";
    }
    return os.str();
}

} // namespace vitality
