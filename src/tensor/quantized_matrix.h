/**
 * @file
 * Affine-quantized int8 tensor for the INT8 dense execution mode.
 *
 * QuantizedMatrix is the int8 sibling of Matrix: a row-major int8_t
 * payload plus the affine parameters (scale, zero point) that map it
 * back to float, x_hat = (q - zeroPoint) * scale. Two kinds exist,
 * matching how the quantized GEMM consumes its operands:
 *
 *  - WeightS8: symmetric per-tensor quantization to [-127, 127] with
 *    zero point 0 (scale = maxAbs / 127). Weights are quantized once
 *    and cached for the life of the model, so the whole-tensor range
 *    scan is off the hot path.
 *  - ActivationU7: affine quantization to the unsigned [0, 127] range
 *    (scale = (hi - lo) / 127 over a range nudged to include zero,
 *    zero point = round(-lo / scale)), per tensor or per row. The
 *    7-bit domain is deliberate: with activations in [0, 127] and
 *    weights in [-127, 127], every adjacent int8 product pair sums to
 *    at most 2 * 127 * 127 = 32258 < 32767, so the AVX2 kernel's
 *    _mm256_maddubs_epi16 stage can never saturate and the integer
 *    accumulation is exact (see gemm.h, "INT8 quantized path").
 *
 * Both quantizers round to nearest-even through the same branch-free
 * kRoundMagic add/subtract core the sparse predictor and the AVX2
 * GEMM epilogue share (tensor/transcendental.h), so quantization is
 * backend-independent and auto-vectorizes under baseline SSE2.
 * Round-trip error per element is bounded by scale/2 (nearest
 * rounding), the term the int8 GEMM error bound is built from.
 *
 * assign* recycle their storage exactly like Matrix::resize, so
 * per-call activation quantization is allocation-free in steady state.
 */

#ifndef VITALITY_TENSOR_QUANTIZED_MATRIX_H
#define VITALITY_TENSOR_QUANTIZED_MATRIX_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace vitality {

/** A dense rows x cols int8 matrix with affine dequantization params. */
class QuantizedMatrix
{
  public:
    enum class Kind : unsigned char
    {
        /** Symmetric per-tensor weights in [-127, 127], zero point 0. */
        WeightS8,
        /** Affine activations in [0, 127] (7-bit unsigned domain). */
        ActivationU7,
    };

    /** Scale/zero-point granularity: one pair, or one pair per row. */
    enum class Granularity : unsigned char
    {
        PerTensor,
        PerRow,
    };

    /** An empty 0 x 0 weight matrix. */
    QuantizedMatrix() = default;

    /**
     * Quantize m as symmetric per-tensor int8 weights: scale =
     * maxAbs(m) / 127 (1 when m is all-zero), zero point 0, values
     * round-to-nearest-even then clamped to [-127, 127].
     */
    void assignWeights(const Matrix &m);

    /**
     * Quantize m as affine activations into [0, 127]: per group (the
     * whole tensor, or each row), lo = min(0, min m) and
     * hi = max(0, max m) — zero is always exactly representable, so
     * padded/ReLU-style entries survive the round trip — then
     * scale = (hi - lo) / 127, zero point = round(-lo / scale), and
     * q = round(x / scale + zeroPoint) clamped to [0, 127]. Because
     * the range is nudged around zero, the only degenerate group
     * (hi == lo) is the all-zero one, which quantizes to zeros with
     * scale 1 and zero point 0.
     */
    void assignActivations(const Matrix &m,
                           Granularity granularity = Granularity::PerRow);

    /** @name Factories wrapping the assign* forms */
    /// @{
    static QuantizedMatrix weights(const Matrix &m);
    static QuantizedMatrix
    activations(const Matrix &m,
                Granularity granularity = Granularity::PerRow);
    /// @}

    /** Reconstruct x_hat = (q - zeroPoint) * scale into dst. */
    void dequantizeInto(Matrix &dst) const;
    Matrix dequantize() const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return rows_ * cols_; }
    bool empty() const { return size() == 0; }
    Kind kind() const { return kind_; }
    Granularity granularity() const { return granularity_; }

    /** Raw row-major int8 storage. */
    const int8_t *data() const { return data_.data(); }
    int8_t *data() { return data_.data(); }

    /** Pointer to the start of row r. */
    const int8_t *rowPtr(size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Scale of row r (the tensor-wide scale under PerTensor). */
    float scale(size_t r) const
    {
        return scale_[granularity_ == Granularity::PerRow ? r : 0];
    }

    /** Zero point of row r (0 for weights by construction). */
    int32_t zeroPoint(size_t r) const
    {
        return zero_[granularity_ == Granularity::PerRow ? r : 0];
    }

    /** Human-readable shape, e.g. "[197 x 384]". */
    std::string shapeStr() const;

  private:
    void reshape(size_t rows, size_t cols, Kind kind,
                 Granularity granularity);

    size_t rows_ = 0;
    size_t cols_ = 0;
    Kind kind_ = Kind::WeightS8;
    Granularity granularity_ = Granularity::PerTensor;
    std::vector<int8_t> data_;
    std::vector<float> scale_;
    std::vector<int32_t> zero_;
};

} // namespace vitality

#endif // VITALITY_TENSOR_QUANTIZED_MATRIX_H
