/**
 * @file
 * Operand-panel packing shared by the GEMM backends and the prepack
 * path.
 *
 * The fp32 and INT8 AVX2 backends consume packed operand panels: op(A)
 * in microkernel-height row panels, op(B) in microkernel-width column
 * panels (fp32) or k-quad panels (int8), zero-padded so the
 * microkernels never see a ragged edge. These helpers used to live as
 * private copies inside gemm_avx2.cpp / gemm_int8_avx2.cpp; they are
 * hoisted here so the per-call backends and the weight-prepacking path
 * (tensor/packed_weights.h) produce byte-identical panels from ONE
 * definition — a prepacked panel is interchangeable with a per-call
 * one precisely because there is no second packing routine to drift.
 *
 * Everything here is plain scalar code (no intrinsics), compiled for
 * the baseline ISA; packing is exact element movement, so where the
 * loops run makes no numerical difference.
 *
 * Layouts (documented once, relied on by both backends):
 *
 *   fp32 A panel:  pa[kk * kMr + r]            kMr rows, zero-padded
 *   fp32 B panel:  pb[(kk - k0) * kNr + c]     kNr cols, zero-padded;
 *                  chunks [k0, k1) are contiguous in kk, so a full-k
 *                  panel's [k0, k1) slice starts at pb + k0 * kNr
 *   int8 A panel:  pa[q * kMr8 * 4 + r * 4 + t]  (k index 4q + t)
 *   int8 B panel:  pb[q * kNr8 * 4 + c * 4 + t]  (k index 4q + t)
 *
 * Internal to the tensor layer; not part of the public Gemm surface.
 */

#ifndef VITALITY_TENSOR_GEMM_PACK_H
#define VITALITY_TENSOR_GEMM_PACK_H

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.h"

namespace vitality {

class QuantizedMatrix;

namespace detail {

constexpr size_t kMr = 6;   ///< fp32 microkernel rows (A panel height).
constexpr size_t kNr = 16;  ///< fp32 microkernel cols (B panel width).
constexpr size_t kKc = 256; ///< fp32 k-dimension cache-block depth.
constexpr size_t kNc = 256; ///< fp32 n-dimension column-block width.

constexpr size_t kMr8 = 4;  ///< int8 microkernel rows (A panel height).
constexpr size_t kNr8 = 16; ///< int8 microkernel cols (B panel width).

/**
 * Pack op(A) rows [i0, i0+rows) into a kMr x k panel, layout
 * pa[kk * kMr + r], zero-padded to kMr rows.
 */
void packAPanel(float *pa, const Matrix &a, Gemm::Trans trans, size_t i0,
                size_t rows, size_t k);

/**
 * Pack the [k0, k1) slice of op(B) cols [j0, j0+cols) into a
 * (k1-k0) x kNr panel, layout pb[(kk-k0) * kNr + c], zero-padded to
 * kNr cols.
 */
void packBPanel(float *pb, const Matrix &b, Gemm::Trans trans, size_t j0,
                size_t cols, size_t k0, size_t k1);

/**
 * Pack op(A) rows [i0, i0+rows) into a panel of k-quads, layout
 * pa[q * 16 + r * 4 + t] for quad q, row r, byte t (k index 4q + t),
 * zero-padded to 4 rows and a whole quad.
 */
void packAPanelInt8(int8_t *pa, const QuantizedMatrix &a,
                    Gemm::Trans trans, size_t i0, size_t rows, size_t k,
                    size_t quads);

/**
 * Pack op(B) columns [j0, j0+cols) into a panel of k-quads, layout
 * pb[q * 64 + c * 4 + t] for quad q, column c, byte t (k index
 * 4q + t), zero-padded to 16 columns and a whole quad.
 */
void packBPanelInt8(int8_t *pb, const QuantizedMatrix &b,
                    Gemm::Trans trans, size_t j0, size_t cols, size_t k,
                    size_t quads);

} // namespace detail
} // namespace vitality

#endif // VITALITY_TENSOR_GEMM_PACK_H
