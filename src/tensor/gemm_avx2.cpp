/**
 * @file
 * AVX2+FMA GEMM backend: a 6x16 register-blocked microkernel over
 * packed operand panels, with kc cache-blocking and a fused epilogue.
 *
 * This translation unit is compiled with -mavx2 -mfma and is only ever
 * entered after Gemm's runtime CPUID check, so it may use the AVX2 ISA
 * freely. The classic BLIS-style structure, sized for this workload
 * (attention-shaped GEMMs plus the DeiT MLP projections, k up to 3072):
 *
 *   - op(B) is packed one kc x 16 column-panel chunk at a time, op(A)
 *     into 6 x k row panels, both zero-padded to full panel width so the
 *     microkernel never needs a ragged edge case. Panels live in a
 *     thread-local Workspace arena through acquireAligned(), so packed
 *     data starts on 32-byte boundaries (the kNr = 16 panel stride then
 *     keeps every B-panel row aligned; the loads stay _mm256_loadu_ps
 *     because an aligned loadu costs the same as an aligned load on
 *     AVX2 hardware, while C-tile pointers are never alignment-
 *     guaranteed anyway). After the first call with a given shape
 *     profile the packing buffers are recycled and the steady state
 *     performs no heap allocations (matching the AttentionContext
 *     design).
 *   - The n dimension is processed in nc = 256 column blocks (16 kNr
 *     panels), outermost loop, and the k dimension in kc = 256 chunks
 *     inside each block. Within a block, one kc chunk of every packed
 *     A panel (a few hundred KB for a full 197-row band) stays
 *     L2-resident across the block's column-panel sweep, where an
 *     unbroken k sweep re-streamed megabytes of packed A per column
 *     panel at the DeiT-Base MLP shapes; and because every kc chunk of
 *     a block completes before the next block starts, the C partials
 *     that round-trip between chunks are one mBand x nc tile — at
 *     n >> cache shapes (the deep-N MLP transposes) the old
 *     block-free sweep re-streamed the whole mBand x n band per chunk.
 *     The round-trip through float32 memory is exact, and per element
 *     the accumulation is still one ascending-k sum regardless of the
 *     blocking (blocks partition columns; chunks run in ascending
 *     order within each), so results are bitwise-unchanged and the
 *     cross-backend tolerance contract in gemm.h holds as before.
 *   - The microkernel holds a 6x16 tile of C in twelve ymm accumulators
 *     (optionally initialized from the previous chunk's partials) and
 *     walks k in ascending order with two FMAs per row per step — the
 *     same per-element accumulation order as the scalar backend, so
 *     backends differ only by FMA rounding (see gemm.h).
 *   - Full tiles store straight to C; edge tiles go through a 6x16
 *     scratch tile and copy only the valid region, so C is never read
 *     or written out of bounds.
 *   - On the final kc chunk the Epilogue (row-broadcast bias, tanh
 *     GELU, accumulate-into-C) is applied in the tile's write-back —
 *     one store pass instead of separate bias/activation/residual
 *     sweeps over the finished output. With an accumulate epilogue the
 *     inter-chunk partials are staged in a scratch band so the old C
 *     (the residual stream) survives until that final fused store.
 *
 * Only rows [rowBegin, rowEnd) of C are computed, so the dispatcher can
 * fan microkernel-aligned row bands across a thread pool; rowBegin is
 * always a multiple of the panel height.
 */

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/avx2_math.h"
#include "tensor/gemm.h"
#include "tensor/gemm_epilogue.h"
#include "tensor/gemm_pack.h"
#include "tensor/ops.h"
#include "tensor/transcendental.h"
#include "tensor/workspace.h"

namespace vitality {
namespace detail {

// Panel geometry (kMr, kNr, kKc, kNc) and the packAPanel/packBPanel
// helpers live in tensor/gemm_pack.h, shared with the weight-prepack
// path so both produce byte-identical panels. The vectorized
// polynomial GELU (Act::GeluFast) and its exp2/tanh cores live in
// tensor/avx2_math.h, shared with the int8 backend so both write-backs
// run the identical bitwise program.

/**
 * 8-lane twin of the scalar approx row softmax in tensor/ops.cpp
 * (which dispatches here when the AVX2 backend is active). Bitwise
 * equality with the scalar loop holds element by element: the max
 * reduction is exactly associative, the exp lanes run the shared
 * exp2 program (tails through the one scalar definition,
 * exp2CoreScalar), the denominator is accumulated scalar in index
 * order, and the normalize multiply is element-wise.
 */
void
softmaxRowsApproxAvx2(Matrix &dst, const Matrix &a)
{
    dst.resize(a.rows(), a.cols());
    const size_t n = a.cols();
    const __m256 vl2e = _mm256_set1_ps(kLog2e);
    for (size_t r = 0; r < a.rows(); ++r) {
        const float *in = a.rowPtr(r);
        float *out = dst.rowPtr(r);

        float maxv;
        size_t c;
        if (n >= 8) {
            __m256 vmax = _mm256_loadu_ps(in);
            for (c = 8; c + 8 <= n; c += 8)
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(in + c));
            __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                                  _mm256_extractf128_ps(vmax, 1));
            m = _mm_max_ps(m, _mm_movehl_ps(m, m));
            m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
            maxv = _mm_cvtss_f32(m);
        } else {
            maxv = in[0];
            c = 1;
        }
        for (; c < n; ++c)
            maxv = std::max(maxv, in[c]);

        const __m256 vmaxb = _mm256_set1_ps(maxv);
        size_t e = 0;
        for (; e + 8 <= n; e += 8) {
            const __m256 z = _mm256_mul_ps(
                _mm256_sub_ps(_mm256_loadu_ps(in + e), vmaxb), vl2e);
            _mm256_storeu_ps(out + e, exp2Core8(z));
        }
        for (; e < n; ++e)
            out[e] = exp2CoreScalar((in[e] - maxv) * kLog2e);

        float denom = 0.0f;
        for (size_t j = 0; j < n; ++j)
            denom += out[j];
        const float inv = 1.0f / denom;
        const __m256 vinv = _mm256_set1_ps(inv);
        size_t j = 0;
        for (; j + 8 <= n; j += 8)
            _mm256_storeu_ps(
                out + j, _mm256_mul_ps(_mm256_loadu_ps(out + j), vinv));
        for (; j < n; ++j)
            out[j] *= inv;
    }
}

/** 8-lane |max| reduction; max is exactly associative, so this equals
 * the scalar loop in ops.cpp for any lane grouping. */
float
maxAbsAvx2(const float *data, size_t count)
{
    const __m256 absMask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 vbest = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= count; i += 8)
        vbest = _mm256_max_ps(
            vbest, _mm256_and_ps(_mm256_loadu_ps(data + i), absMask));
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(vbest),
                          _mm256_extractf128_ps(vbest, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    float best = _mm_cvtss_f32(m);
    for (; i < count; ++i)
        best = std::max(best, std::fabs(data[i]));
    return best;
}

/**
 * 8-lane twin of the quantizer loop in sparse/predictor.cpp:
 * dst[i] = (src[i] * inv_step rounded to nearest-even) * step, the
 * magic-number rounding as two float adds. Lane program identical to
 * the scalar fallback, so quantized values are backend-independent.
 */
void
quantizeRowAvx2(float *dst, const float *src, size_t count,
                float inv_step, float step)
{
    const __m256 vinv = _mm256_set1_ps(inv_step);
    const __m256 vstep = _mm256_set1_ps(step);
    const __m256 vmagic = _mm256_set1_ps(kRoundMagic);
    size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256 x = _mm256_loadu_ps(src + i);
        const __m256 q = _mm256_sub_ps(
            _mm256_add_ps(_mm256_mul_ps(x, vinv), vmagic), vmagic);
        _mm256_storeu_ps(dst + i, _mm256_mul_ps(q, vstep));
    }
    for (; i < count; ++i) {
        const float q = (src[i] * inv_step + kRoundMagic) - kRoundMagic;
        dst[i] = q * step;
    }
}

namespace {

/**
 * cout[0:6, 0:16] = (cin ? cin : 0) + A-panel * B-panel over k steps.
 * cin carries the previous kc chunk's partial sums (row stride ldcin);
 * the raw result is stored to cout (row stride ldcout). cin may equal
 * cout: every load happens before the first store. Twelve ymm
 * accumulators, k ascending, FMA per step.
 */
void
microKernel6x16(size_t k, const float *pa, const float *pb,
                const float *cin, size_t ldcin, float *cout,
                size_t ldcout)
{
    __m256 acc00, acc01, acc10, acc11, acc20, acc21;
    __m256 acc30, acc31, acc40, acc41, acc50, acc51;
    if (cin) {
        acc00 = _mm256_loadu_ps(cin + 0 * ldcin);
        acc01 = _mm256_loadu_ps(cin + 0 * ldcin + 8);
        acc10 = _mm256_loadu_ps(cin + 1 * ldcin);
        acc11 = _mm256_loadu_ps(cin + 1 * ldcin + 8);
        acc20 = _mm256_loadu_ps(cin + 2 * ldcin);
        acc21 = _mm256_loadu_ps(cin + 2 * ldcin + 8);
        acc30 = _mm256_loadu_ps(cin + 3 * ldcin);
        acc31 = _mm256_loadu_ps(cin + 3 * ldcin + 8);
        acc40 = _mm256_loadu_ps(cin + 4 * ldcin);
        acc41 = _mm256_loadu_ps(cin + 4 * ldcin + 8);
        acc50 = _mm256_loadu_ps(cin + 5 * ldcin);
        acc51 = _mm256_loadu_ps(cin + 5 * ldcin + 8);
    } else {
        acc00 = acc01 = acc10 = acc11 = acc20 = acc21 =
            _mm256_setzero_ps();
        acc30 = acc31 = acc40 = acc41 = acc50 = acc51 =
            _mm256_setzero_ps();
    }
    for (size_t kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(pb + kk * kNr);
        const __m256 b1 = _mm256_loadu_ps(pb + kk * kNr + 8);
        const float *av = pa + kk * kMr;
        __m256 ar;
        ar = _mm256_broadcast_ss(av + 0);
        acc00 = _mm256_fmadd_ps(ar, b0, acc00);
        acc01 = _mm256_fmadd_ps(ar, b1, acc01);
        ar = _mm256_broadcast_ss(av + 1);
        acc10 = _mm256_fmadd_ps(ar, b0, acc10);
        acc11 = _mm256_fmadd_ps(ar, b1, acc11);
        ar = _mm256_broadcast_ss(av + 2);
        acc20 = _mm256_fmadd_ps(ar, b0, acc20);
        acc21 = _mm256_fmadd_ps(ar, b1, acc21);
        ar = _mm256_broadcast_ss(av + 3);
        acc30 = _mm256_fmadd_ps(ar, b0, acc30);
        acc31 = _mm256_fmadd_ps(ar, b1, acc31);
        ar = _mm256_broadcast_ss(av + 4);
        acc40 = _mm256_fmadd_ps(ar, b0, acc40);
        acc41 = _mm256_fmadd_ps(ar, b1, acc41);
        ar = _mm256_broadcast_ss(av + 5);
        acc50 = _mm256_fmadd_ps(ar, b0, acc50);
        acc51 = _mm256_fmadd_ps(ar, b1, acc51);
    }
    _mm256_storeu_ps(cout + 0 * ldcout, acc00);
    _mm256_storeu_ps(cout + 0 * ldcout + 8, acc01);
    _mm256_storeu_ps(cout + 1 * ldcout, acc10);
    _mm256_storeu_ps(cout + 1 * ldcout + 8, acc11);
    _mm256_storeu_ps(cout + 2 * ldcout, acc20);
    _mm256_storeu_ps(cout + 2 * ldcout + 8, acc21);
    _mm256_storeu_ps(cout + 3 * ldcout, acc30);
    _mm256_storeu_ps(cout + 3 * ldcout + 8, acc31);
    _mm256_storeu_ps(cout + 4 * ldcout, acc40);
    _mm256_storeu_ps(cout + 4 * ldcout + 8, acc41);
    _mm256_storeu_ps(cout + 5 * ldcout, acc50);
    _mm256_storeu_ps(cout + 5 * ldcout + 8, acc51);
}

/**
 * The fused write-back: push the finished raw-product tile through the
 * epilogue into dst. Full-width tiles take the vectorized path; ragged
 * edges go through the shared scalar helper (gemm_epilogue.h). The two
 * agree bitwise because a vector float add is the same rounding as a
 * scalar float add lane by lane — the vector path is the one
 * intentional second copy of the canonical element order. The exact
 * GELU (Act::Gelu) stays scalar — it is a std::tanh per element in
 * every path, fused or not — while Act::GeluFast runs the vectorized
 * polynomial above, whose lanes are bitwise-equal to the
 * geluApproxScalar fallback by construction.
 */
void
epilogueStoreTile(float *tile, Matrix &dst, size_t i0, size_t j0,
                  size_t mEff, size_t nEff, const Gemm::Epilogue &ep)
{
    const float *bias = ep.bias ? ep.bias->rowPtr(0) + j0 : nullptr;
    if (nEff == kNr) {
        __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
        if (bias) {
            b0 = _mm256_loadu_ps(bias);
            b1 = _mm256_loadu_ps(bias + 8);
        }
        for (size_t r = 0; r < mEff; ++r) {
            float *src = tile + r * kNr;
            __m256 v0 = _mm256_loadu_ps(src);
            __m256 v1 = _mm256_loadu_ps(src + 8);
            if (bias) {
                v0 = _mm256_add_ps(v0, b0);
                v1 = _mm256_add_ps(v1, b1);
            }
            if (ep.act == Gemm::Epilogue::Act::Gelu) {
                _mm256_storeu_ps(src, v0);
                _mm256_storeu_ps(src + 8, v1);
                for (size_t c = 0; c < kNr; ++c)
                    src[c] = geluScalar(src[c]);
                v0 = _mm256_loadu_ps(src);
                v1 = _mm256_loadu_ps(src + 8);
            } else if (ep.act == Gemm::Epilogue::Act::GeluFast) {
                // In-register polynomial GELU: no std::tanh, no store
                // round-trip; bitwise-equal to geluApproxScalar per
                // lane (see the vector-program comment above).
                v0 = geluApprox8(v0);
                v1 = geluApprox8(v1);
            }
            float *out = dst.rowPtr(i0 + r) + j0;
            if (ep.accumulate) {
                v0 = _mm256_add_ps(_mm256_loadu_ps(out), v0);
                v1 = _mm256_add_ps(_mm256_loadu_ps(out + 8), v1);
            }
            _mm256_storeu_ps(out, v0);
            _mm256_storeu_ps(out + 8, v1);
        }
        return;
    }
    for (size_t r = 0; r < mEff; ++r)
        epilogueApplyRow(dst.rowPtr(i0 + r) + j0, tile + r * kNr, bias,
                         nEff, ep.accumulate, ep.act);
}

} // namespace

void
gemmAvx2(Matrix &dst, const Matrix &a, const Matrix &b, Gemm::Trans trans,
         size_t rowBegin, size_t rowEnd, const Gemm::Epilogue &ep,
         const float *packedB)
{
    const size_t n = dst.cols();
    const size_t k = trans == Gemm::Trans::A ? a.rows() : a.cols();
    const size_t mBand = rowEnd - rowBegin;
    const size_t mPanels = (mBand + kMr - 1) / kMr;
    const size_t nPanels = (n + kNr - 1) / kNr;
    const size_t chunks = (k + kKc - 1) / kKc;

    // Gemm-private packing arena: per worker thread, recycled across
    // calls, so hot-path multiplies allocate nothing in steady state.
    // op(A) is packed whole (each kc chunk of it is swept once per B
    // panel); op(B) is packed one kc x kNr chunk at a time — unless the
    // caller supplies prepacked full-k panels (packedB, jp stride
    // k * kNr), in which case the pack loop is skipped and the
    // microkernel reads the [k0, k1) slice at packedB + jp * k * kNr +
    // k0 * kNr, byte-identical to what packBPanel would have written.
    static thread_local Workspace tls;
    Workspace::Frame frame(tls);
    float *packedA = tls.acquireAligned(mPanels * k * kMr);
    float *pb =
        packedB ? nullptr : tls.acquireAligned(std::min(k, kKc) * kNr);
    float *tile = tls.acquireAligned(kMr * kNr);
    // With an accumulate epilogue the old C must survive until the
    // fused store of the last chunk, so inter-chunk partials live in a
    // scratch band instead of dst.
    float *partial = (ep.accumulate && chunks > 1)
                         ? tls.acquireAligned(mBand * n)
                         : nullptr;
    // Raw-product row r (global index) of the partial storage.
    const auto prow = [&](size_t r) -> float * {
        return partial ? partial + (r - rowBegin) * n : dst.rowPtr(r);
    };

    for (size_t ip = 0; ip < mPanels; ++ip) {
        const size_t i0 = rowBegin + ip * kMr;
        packAPanel(packedA + ip * k * kMr, a, trans, i0,
                   std::min(kMr, rowEnd - i0), k);
    }

    // nc column blocks outermost, kc chunks inside: all of a block's
    // chunks finish before the next block starts, so inter-chunk C
    // partials stay one mBand x kNc tile, and within a chunk one kc
    // slice of all packed A panels stays cache-resident across the
    // block's column-panel sweep.
    constexpr size_t kNcPanels = kNc / kNr;
    static_assert(kNc % kNr == 0, "column block must be whole panels");
    for (size_t jcBegin = 0; jcBegin < nPanels; jcBegin += kNcPanels) {
      const size_t jcEnd = std::min(jcBegin + kNcPanels, nPanels);
      for (size_t chunk = 0; chunk < chunks; ++chunk) {
        const size_t k0 = chunk * kKc;
        const size_t k1 = std::min(k0 + kKc, k);
        const bool last = chunk + 1 == chunks;
        for (size_t jp = jcBegin; jp < jcEnd; ++jp) {
            const size_t j0 = jp * kNr;
            const size_t nEff = std::min(kNr, n - j0);
            const float *pbp;
            if (packedB) {
                pbp = packedB + jp * k * kNr + k0 * kNr;
            } else {
                packBPanel(pb, b, trans, j0, nEff, k0, k1);
                pbp = pb;
            }
            for (size_t ip = 0; ip < mPanels; ++ip) {
                const size_t i0 = rowBegin + ip * kMr;
                const size_t mEff = std::min(kMr, rowEnd - i0);
                const float *pa = packedA + ip * k * kMr + k0 * kMr;
                const bool fullTile = mEff == kMr && nEff == kNr;
                // The last chunk of a non-trivial epilogue goes through
                // the fused store; earlier chunks park raw partials.
                const bool fuse = last && !ep.trivial();

                const float *cin = nullptr;
                size_t ldcin = n;
                if (chunk > 0) {
                    if (fullTile) {
                        cin = prow(i0) + j0;
                    } else {
                        // Stage the valid region so the microkernel
                        // never reads past a ragged edge; the padded
                        // lanes hold garbage that only ever feeds
                        // discarded lanes.
                        for (size_t r = 0; r < mEff; ++r)
                            std::memcpy(tile + r * kNr,
                                        prow(i0 + r) + j0,
                                        nEff * sizeof(float));
                        cin = tile;
                        ldcin = kNr;
                    }
                }

                if (!fuse && fullTile) {
                    microKernel6x16(k1 - k0, pa, pbp, cin, ldcin,
                                    prow(i0) + j0, n);
                } else {
                    microKernel6x16(k1 - k0, pa, pbp, cin, ldcin, tile,
                                    kNr);
                    if (fuse) {
                        epilogueStoreTile(tile, dst, i0, j0, mEff, nEff,
                                          ep);
                    } else {
                        // Ragged edge: copy only the valid region so C
                        // is never written out of bounds.
                        for (size_t r = 0; r < mEff; ++r)
                            std::memcpy(prow(i0 + r) + j0,
                                        tile + r * kNr,
                                        nEff * sizeof(float));
                    }
                }
            }
        }
      }
    }
}

} // namespace detail
} // namespace vitality
