/**
 * @file
 * AVX2+FMA GEMM backend: a 6x16 register-blocked microkernel over
 * packed operand panels.
 *
 * This translation unit is compiled with -mavx2 -mfma and is only ever
 * entered after Gemm's runtime CPUID check, so it may use the AVX2 ISA
 * freely. The classic BLIS-style structure, sized for this workload
 * (attention-shaped GEMMs, k up to a few thousand):
 *
 *   - op(B) is packed once into k x 16 column panels, op(A) into 6 x k
 *     row panels, both zero-padded to full panel width so the microkernel
 *     never needs a ragged edge case. Panels live in a thread-local
 *     Workspace arena: after the first call with a given shape profile
 *     the packing buffers are recycled and the steady state performs no
 *     heap allocations (matching the AttentionContext design).
 *   - The microkernel holds a 6x16 tile of C in twelve ymm accumulators
 *     and walks k in ascending order with two FMAs per row per step —
 *     the same per-element accumulation order as the scalar backend, so
 *     backends differ only by FMA rounding (see gemm.h).
 *   - Full tiles store straight to C; edge tiles go through a 6x16
 *     scratch tile and copy only the valid region, so C is never written
 *     out of bounds.
 *
 * There is deliberately no k-blocking: one unbroken k sweep keeps the
 * accumulation order identical to scalar, and the panels this workload
 * produces (k <= ~3k, 16 floats wide) sit comfortably in L1/L2.
 */

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace vitality {
namespace detail {

namespace {

constexpr size_t kMr = 6;  ///< Microkernel rows (A panel height).
constexpr size_t kNr = 16; ///< Microkernel cols (B panel width, 2 ymm).

/**
 * Pack op(A) rows [i0, i0+rows) into a kMr x k panel, layout
 * pa[kk * kMr + r], zero-padded to kMr rows.
 */
void
packAPanel(float *pa, const Matrix &a, Gemm::Trans trans, size_t i0,
           size_t rows, size_t k)
{
    if (trans == Gemm::Trans::A) {
        // op(A)(i, kk) = a(kk, i): each kk reads kMr contiguous floats.
        for (size_t kk = 0; kk < k; ++kk) {
            const float *arow = a.rowPtr(kk) + i0;
            float *dst = pa + kk * kMr;
            size_t r = 0;
            for (; r < rows; ++r)
                dst[r] = arow[r];
            for (; r < kMr; ++r)
                dst[r] = 0.0f;
        }
        return;
    }
    // op(A)(i, kk) = a(i, kk): walk the panel's rows in parallel.
    for (size_t kk = 0; kk < k; ++kk) {
        float *dst = pa + kk * kMr;
        size_t r = 0;
        for (; r < rows; ++r)
            dst[r] = a.rowPtr(i0 + r)[kk];
        for (; r < kMr; ++r)
            dst[r] = 0.0f;
    }
}

/**
 * Pack op(B) cols [j0, j0+cols) into a k x kNr panel, layout
 * pb[kk * kNr + c], zero-padded to kNr cols.
 */
void
packBPanel(float *pb, const Matrix &b, Gemm::Trans trans, size_t j0,
           size_t cols, size_t k)
{
    if (trans == Gemm::Trans::B) {
        // op(B)(kk, j) = b(j, kk): each packed column is a row of b.
        for (size_t c = 0; c < cols; ++c) {
            const float *brow = b.rowPtr(j0 + c);
            for (size_t kk = 0; kk < k; ++kk)
                pb[kk * kNr + c] = brow[kk];
        }
        for (size_t c = cols; c < kNr; ++c)
            for (size_t kk = 0; kk < k; ++kk)
                pb[kk * kNr + c] = 0.0f;
        return;
    }
    // op(B)(kk, j) = b(kk, j): contiguous strips per kk.
    for (size_t kk = 0; kk < k; ++kk) {
        const float *brow = b.rowPtr(kk) + j0;
        float *dst = pb + kk * kNr;
        size_t c = 0;
        for (; c < cols; ++c)
            dst[c] = brow[c];
        for (; c < kNr; ++c)
            dst[c] = 0.0f;
    }
}

/**
 * C[0:6, 0:16] = A-panel * B-panel over k steps, C with row stride ldc.
 * Twelve ymm accumulators, k ascending, FMA per step.
 */
void
microKernel6x16(size_t k, const float *pa, const float *pb, float *c,
                size_t ldc)
{
    __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
    __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
    __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
    __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
    __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
    __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
    for (size_t kk = 0; kk < k; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(pb + kk * kNr);
        const __m256 b1 = _mm256_loadu_ps(pb + kk * kNr + 8);
        const float *av = pa + kk * kMr;
        __m256 ar;
        ar = _mm256_broadcast_ss(av + 0);
        acc00 = _mm256_fmadd_ps(ar, b0, acc00);
        acc01 = _mm256_fmadd_ps(ar, b1, acc01);
        ar = _mm256_broadcast_ss(av + 1);
        acc10 = _mm256_fmadd_ps(ar, b0, acc10);
        acc11 = _mm256_fmadd_ps(ar, b1, acc11);
        ar = _mm256_broadcast_ss(av + 2);
        acc20 = _mm256_fmadd_ps(ar, b0, acc20);
        acc21 = _mm256_fmadd_ps(ar, b1, acc21);
        ar = _mm256_broadcast_ss(av + 3);
        acc30 = _mm256_fmadd_ps(ar, b0, acc30);
        acc31 = _mm256_fmadd_ps(ar, b1, acc31);
        ar = _mm256_broadcast_ss(av + 4);
        acc40 = _mm256_fmadd_ps(ar, b0, acc40);
        acc41 = _mm256_fmadd_ps(ar, b1, acc41);
        ar = _mm256_broadcast_ss(av + 5);
        acc50 = _mm256_fmadd_ps(ar, b0, acc50);
        acc51 = _mm256_fmadd_ps(ar, b1, acc51);
    }
    _mm256_storeu_ps(c + 0 * ldc, acc00);
    _mm256_storeu_ps(c + 0 * ldc + 8, acc01);
    _mm256_storeu_ps(c + 1 * ldc, acc10);
    _mm256_storeu_ps(c + 1 * ldc + 8, acc11);
    _mm256_storeu_ps(c + 2 * ldc, acc20);
    _mm256_storeu_ps(c + 2 * ldc + 8, acc21);
    _mm256_storeu_ps(c + 3 * ldc, acc30);
    _mm256_storeu_ps(c + 3 * ldc + 8, acc31);
    _mm256_storeu_ps(c + 4 * ldc, acc40);
    _mm256_storeu_ps(c + 4 * ldc + 8, acc41);
    _mm256_storeu_ps(c + 5 * ldc, acc50);
    _mm256_storeu_ps(c + 5 * ldc + 8, acc51);
}

} // namespace

void
gemmAvx2(Matrix &dst, const Matrix &a, const Matrix &b, Gemm::Trans trans)
{
    const size_t m = dst.rows(), n = dst.cols();
    const size_t k = trans == Gemm::Trans::A ? a.rows() : a.cols();
    const size_t mPanels = (m + kMr - 1) / kMr;
    const size_t nPanels = (n + kNr - 1) / kNr;

    // Gemm-private packing arena: per worker thread, recycled across
    // calls, so hot-path multiplies allocate nothing in steady state.
    // op(A) is packed whole (it is swept once per B panel); op(B) is
    // packed one kNr-wide panel at a time — each panel is packed
    // exactly once either way, but the arena then holds k * 16 floats
    // of B instead of a full padded copy of the largest operand any
    // worker ever multiplied.
    static thread_local Workspace tls;
    Workspace::Frame frame(tls);
    float *packedA = tls.acquire(1, mPanels * k * kMr).data();
    float *pb = tls.acquire(1, k * kNr).data();
    float *tile = tls.acquire(1, kMr * kNr).data();

    for (size_t ip = 0; ip < mPanels; ++ip) {
        const size_t i0 = ip * kMr;
        packAPanel(packedA + ip * k * kMr, a, trans, i0,
                   std::min(kMr, m - i0), k);
    }

    for (size_t jp = 0; jp < nPanels; ++jp) {
        const size_t j0 = jp * kNr;
        const size_t nEff = std::min(kNr, n - j0);
        packBPanel(pb, b, trans, j0, nEff, k);
        for (size_t ip = 0; ip < mPanels; ++ip) {
            const size_t i0 = ip * kMr;
            const size_t mEff = std::min(kMr, m - i0);
            const float *pa = packedA + ip * k * kMr;
            if (mEff == kMr && nEff == kNr) {
                microKernel6x16(k, pa, pb, dst.rowPtr(i0) + j0, n);
            } else {
                // Ragged edge: land in the scratch tile, copy the
                // valid region so C is never written out of bounds.
                microKernel6x16(k, pa, pb, tile, kNr);
                for (size_t r = 0; r < mEff; ++r)
                    std::memcpy(dst.rowPtr(i0 + r) + j0, tile + r * kNr,
                                nEff * sizeof(float));
            }
        }
    }
}

} // namespace detail
} // namespace vitality
