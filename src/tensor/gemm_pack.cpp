/**
 * @file
 * Definitions of the shared operand-panel packers (see gemm_pack.h).
 * Bodies moved verbatim from gemm_avx2.cpp / gemm_int8_avx2.cpp —
 * exact element movement, bitwise-identical panels regardless of
 * which TU they are called from.
 */

#include "tensor/gemm_pack.h"

#include <cstring>

#include "tensor/matrix.h"
#include "tensor/quantized_matrix.h"

namespace vitality {
namespace detail {

void
packAPanel(float *pa, const Matrix &a, Gemm::Trans trans, size_t i0,
           size_t rows, size_t k)
{
    if (trans == Gemm::Trans::A) {
        // op(A)(i, kk) = a(kk, i): each kk reads kMr contiguous floats.
        for (size_t kk = 0; kk < k; ++kk) {
            const float *arow = a.rowPtr(kk) + i0;
            float *dst = pa + kk * kMr;
            size_t r = 0;
            for (; r < rows; ++r)
                dst[r] = arow[r];
            for (; r < kMr; ++r)
                dst[r] = 0.0f;
        }
        return;
    }
    // op(A)(i, kk) = a(i, kk): walk the panel's rows in parallel.
    for (size_t kk = 0; kk < k; ++kk) {
        float *dst = pa + kk * kMr;
        size_t r = 0;
        for (; r < rows; ++r)
            dst[r] = a.rowPtr(i0 + r)[kk];
        for (; r < kMr; ++r)
            dst[r] = 0.0f;
    }
}

void
packBPanel(float *pb, const Matrix &b, Gemm::Trans trans, size_t j0,
           size_t cols, size_t k0, size_t k1)
{
    if (trans == Gemm::Trans::B) {
        // op(B)(kk, j) = b(j, kk): each packed column is a row of b.
        for (size_t c = 0; c < cols; ++c) {
            const float *brow = b.rowPtr(j0 + c);
            for (size_t kk = k0; kk < k1; ++kk)
                pb[(kk - k0) * kNr + c] = brow[kk];
        }
        for (size_t c = cols; c < kNr; ++c)
            for (size_t kk = k0; kk < k1; ++kk)
                pb[(kk - k0) * kNr + c] = 0.0f;
        return;
    }
    // op(B)(kk, j) = b(kk, j): contiguous strips per kk.
    for (size_t kk = k0; kk < k1; ++kk) {
        const float *brow = b.rowPtr(kk) + j0;
        float *dst = pb + (kk - k0) * kNr;
        size_t c = 0;
        for (; c < cols; ++c)
            dst[c] = brow[c];
        for (; c < kNr; ++c)
            dst[c] = 0.0f;
    }
}

void
packAPanelInt8(int8_t *pa, const QuantizedMatrix &a, Gemm::Trans trans,
               size_t i0, size_t rows, size_t k, size_t quads)
{
    if (trans != Gemm::Trans::A && rows == kMr8 && k == quads * 4) {
        // Interior fast path: four aligned 4-byte row strips per quad.
        for (size_t q = 0; q < quads; ++q) {
            int8_t *dst = pa + q * kMr8 * 4;
            for (size_t r = 0; r < kMr8; ++r)
                std::memcpy(dst + r * 4, a.rowPtr(i0 + r) + q * 4, 4);
        }
        return;
    }
    for (size_t q = 0; q < quads; ++q) {
        int8_t *dst = pa + q * kMr8 * 4;
        for (size_t r = 0; r < kMr8; ++r) {
            for (size_t t = 0; t < 4; ++t) {
                const size_t kk = q * 4 + t;
                int8_t v = 0;
                if (r < rows && kk < k)
                    v = trans == Gemm::Trans::A
                            ? a.rowPtr(kk)[i0 + r]
                            : a.rowPtr(i0 + r)[kk];
                dst[r * 4 + t] = v;
            }
        }
    }
}

void
packBPanelInt8(int8_t *pb, const QuantizedMatrix &b, Gemm::Trans trans,
               size_t j0, size_t cols, size_t k, size_t quads)
{
    if (trans == Gemm::Trans::None && cols == kNr8 && k == quads * 4) {
        // Interior fast path: interleave four consecutive B rows.
        for (size_t q = 0; q < quads; ++q) {
            const int8_t *r0 = b.rowPtr(q * 4 + 0) + j0;
            const int8_t *r1 = b.rowPtr(q * 4 + 1) + j0;
            const int8_t *r2 = b.rowPtr(q * 4 + 2) + j0;
            const int8_t *r3 = b.rowPtr(q * 4 + 3) + j0;
            int8_t *dst = pb + q * kNr8 * 4;
            for (size_t c = 0; c < kNr8; ++c) {
                dst[c * 4 + 0] = r0[c];
                dst[c * 4 + 1] = r1[c];
                dst[c * 4 + 2] = r2[c];
                dst[c * 4 + 3] = r3[c];
            }
        }
        return;
    }
    for (size_t q = 0; q < quads; ++q) {
        int8_t *dst = pb + q * kNr8 * 4;
        for (size_t c = 0; c < kNr8; ++c) {
            for (size_t t = 0; t < 4; ++t) {
                const size_t kk = q * 4 + t;
                int8_t v = 0;
                if (c < cols && kk < k)
                    v = trans == Gemm::Trans::B
                            ? b.rowPtr(j0 + c)[kk]
                            : b.rowPtr(kk)[j0 + c];
                dst[c * 4 + t] = v;
            }
        }
    }
}

} // namespace detail
} // namespace vitality
