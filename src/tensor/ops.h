/**
 * @file
 * Free-function linear algebra over Matrix.
 *
 * These are the primitive operations used by every attention kernel and by
 * the autograd layer. All functions validate shapes and throw
 * std::invalid_argument on mismatch. The whole matmul family (matmul,
 * matmulBT, matmulAT and their *Into twins) routes through the Gemm
 * dispatcher in tensor/gemm.h, so every caller rides the runtime-selected
 * backend (AVX2+FMA microkernel or portable scalar loops) without
 * per-kernel changes; everything else is a straightforward single pass.
 *
 * Every hot operation comes in two forms:
 *   - a value-returning form (matmul, softmaxRows, ...) that allocates its
 *     result, kept for convenience and for cold paths; and
 *   - an out-parameter *Into form (matmulInto, softmaxRowsInto, ...) that
 *     resizes dst (recycling its storage) and writes the result there,
 *     used by the allocation-free forwardInto execution paths together
 *     with a Workspace.
 * The value forms are thin wrappers over the *Into forms, so both paths
 * produce bitwise-identical results.
 *
 * Aliasing: for the matmul family dst must not alias an input (checked,
 * throws). Element-wise, row-wise, and broadcast *Into ops allow dst to
 * alias the primary input a (they process entries in order), but never the
 * vector operand v.
 */

#ifndef VITALITY_TENSOR_OPS_H
#define VITALITY_TENSOR_OPS_H

#include <functional>

#include "tensor/matrix.h"

namespace vitality {

/**
 * Tanh-approximation GELU, the variant ViT/DeiT checkpoints use:
 *   0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
 * Deliberately defined once in ops.cpp (baseline ISA) rather than
 * inline: the GEMM backends call it from their fused write-back, and
 * an inline definition would also be emitted by the -mavx2 -mfma
 * translation unit — in unoptimized builds the linker may then keep
 * that VEX-encoded copy for every caller, breaking the scalar path on
 * hosts the runtime CPUID dispatch exists to support. The call cost is
 * noise next to the std::tanh inside, and a single definition makes
 * "fused epilogue matches the ops-layer GELU bitwise" true by
 * construction.
 */
float geluScalar(float x);

/**
 * @name Polynomial transcendental approximations
 *
 * One exp2 core — round-to-nearest argument split 2^z = 2^n * 2^f,
 * f in [-0.5, 0.5], degree-7 polynomial for 2^f, exponent-bit scale by
 * 2^n — backs all three functions. They exist because std::exp /
 * std::tanh are the encoder's largest non-GEMM costs (the predictor's
 * n^2 softmax and the GELU epilogue); the approximations are branch-free
 * mul/add/min/max sequences that auto-vectorize, and the AVX2 GELU
 * epilogue (gemm_avx2.cpp) replicates the exact same operation order
 * lane by lane, so the vector path and this scalar fallback are
 * bitwise-identical (asserted in test_gemm).
 *
 * Accuracy (verified over dense sweeps in test_ops):
 *   - expApprox: relative error <= 1e-5 over [-87, 87] and <= 6e-7
 *     over [-5, 5], the softmax regime (the polynomial contributes
 *     < 1e-8; the rest is the z = x * log2(e) argument rounding,
 *     which grows linearly in |x| — measured 7.6e-6 at |x| = 87).
 *   - tanhApprox: absolute error <= 4e-7 everywhere (measured
 *     1.4e-7) — about 2 ULP of the function's +/-1 range; |x| >= 10
 *     returns exactly +/-1.
 * Edge semantics: inputs are clamped before the exponent split, so
 * NaN does not propagate through expApprox / tanhApprox themselves
 * (NaN clamps like -inf), tanhApprox(-0) is +0, and expApprox
 * flushes to 2^-126 instead of 0 at the underflow end. Exact softmax
 * paths (SoftmaxAttention, maskedSoftmax*) keep std::exp; only the
 * quantized Sanger prediction front-end and the opt-in fast GELU
 * epilogue (VITALITY_EPILOGUE=fast) use these.
 */
/// @{

/** e^x via the exp2 core. */
float expApprox(float x);

/** tanh(x) = (e^2x - 1) / (e^2x + 1) via the exp2 core. */
float tanhApprox(float x);

/**
 * Tanh-approximation GELU with tanhApprox inside — the fast twin of
 * geluScalar, used by the GEMM write-back under VITALITY_EPILOGUE=fast
 * (and its bitwise scalar reference on every backend and edge path).
 */
float geluApproxScalar(float x);

/**
 * Row-wise softmax with expApprox inside — the low-precision softmax
 * of the Sanger prediction front-end (sparse/predictor.h), where the
 * estimate only feeds a threshold compare and Sanger hardware runs the
 * whole pass in 4 bits anyway. The per-row loop lives out of line so
 * the compiler vectorizes the polynomial; results match calling
 * expApprox per element bitwise.
 */
void softmaxRowsApproxInto(Matrix &dst, const Matrix &a);
/// @}

/** C = A * B. A is m x k, B is k x n. */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T without materializing the transpose. A is m x k, B is n x k. */
Matrix matmulBT(const Matrix &a, const Matrix &b);

/** C = A^T * B without materializing the transpose. A is k x m, B is k x n. */
Matrix matmulAT(const Matrix &a, const Matrix &b);

/** B = A^T. */
Matrix transpose(const Matrix &a);

/** Element-wise A + B. */
Matrix add(const Matrix &a, const Matrix &b);

/** Element-wise A - B. */
Matrix sub(const Matrix &a, const Matrix &b);

/** Element-wise (Hadamard) A .* B. */
Matrix hadamard(const Matrix &a, const Matrix &b);

/** Element-wise A ./ B. */
Matrix divide(const Matrix &a, const Matrix &b);

/** s * A. */
Matrix scale(const Matrix &a, float s);

/** A + s (every entry). */
Matrix addScalar(const Matrix &a, float s);

/** Column vector (rows x 1) of per-row sums. */
Matrix rowSum(const Matrix &a);

/** Row vector (1 x cols) of per-column sums; 1_n^T A in the paper. */
Matrix colSum(const Matrix &a);

/** Column vector of per-row means. */
Matrix rowMean(const Matrix &a);

/** Row vector of per-column means; the key-mean K-bar in Algorithm 1. */
Matrix colMean(const Matrix &a);

/** A + 1_n * v, adding the 1 x cols row vector v to every row. */
Matrix broadcastAddRow(const Matrix &a, const Matrix &v);

/** A - 1_n * v, subtracting the 1 x cols row vector v from every row. */
Matrix broadcastSubRow(const Matrix &a, const Matrix &v);

/** A + v * 1_n^T, adding the rows x 1 column vector v to every column. */
Matrix broadcastAddCol(const Matrix &a, const Matrix &v);

/** A .* (v * 1^T): scale row i of A by v(i, 0). */
Matrix scaleRows(const Matrix &a, const Matrix &v);

/** A ./ (v * 1^T): divide row i of A by v(i, 0) = diag(v)^-1 * A. */
Matrix divRows(const Matrix &a, const Matrix &v);

/** Row-wise numerically-stable softmax. */
Matrix softmaxRows(const Matrix &a);

/** Element-wise exp. */
Matrix expElem(const Matrix &a);

/** Element-wise tanh-approximation GELU (geluScalar per entry). */
Matrix gelu(const Matrix &a);

/** Apply fn to every element. */
Matrix mapElem(const Matrix &a, const std::function<float(float)> &fn);

/** Outer product u * v^T of a column vector u and column vector v. */
Matrix outer(const Matrix &u, const Matrix &v);

/** Stack A on top of B (same column count). */
Matrix concatRows(const Matrix &a, const Matrix &b);

/** Place A left of B (same row count). */
Matrix concatCols(const Matrix &a, const Matrix &b);

/** Largest |a_ij|. */
float maxAbs(const Matrix &a);

/** Largest |a_ij - b_ij|; shapes must match. */
float maxAbsDiff(const Matrix &a, const Matrix &b);

/** Frobenius norm. */
float frobeniusNorm(const Matrix &a);

/** Mean of all entries. */
float mean(const Matrix &a);

/** Sum of all entries. */
float sum(const Matrix &a);

/** Index of the max entry in row r. */
size_t argmaxRow(const Matrix &a, size_t r);

/** Fraction of entries within the half-open interval [lo, hi). */
float fractionInRange(const Matrix &a, float lo, float hi);

/** Fraction of exactly-zero entries. */
float sparsity(const Matrix &a);

/**
 * Row-wise layer normalization:
 *   dst(r, :) = (a(r, :) - mean_r) / sqrt(var_r + eps) .* gamma + beta
 * with gamma and beta 1 x cols row vectors (the affine parameters).
 */
Matrix layerNormRows(const Matrix &a, const Matrix &gamma,
                     const Matrix &beta, float eps = 1e-5f);

/** @name Allocation-free out-parameter variants
 * Each resizes dst and writes the same result as its value-returning twin.
 */
/// @{
void matmulInto(Matrix &dst, const Matrix &a, const Matrix &b);
void matmulBTInto(Matrix &dst, const Matrix &a, const Matrix &b);
void matmulATInto(Matrix &dst, const Matrix &a, const Matrix &b);
void transposeInto(Matrix &dst, const Matrix &a);
void addInto(Matrix &dst, const Matrix &a, const Matrix &b);
void subInto(Matrix &dst, const Matrix &a, const Matrix &b);
void hadamardInto(Matrix &dst, const Matrix &a, const Matrix &b);
void divideInto(Matrix &dst, const Matrix &a, const Matrix &b);
void scaleInto(Matrix &dst, const Matrix &a, float s);
void addScalarInto(Matrix &dst, const Matrix &a, float s);
void rowSumInto(Matrix &dst, const Matrix &a);
void colSumInto(Matrix &dst, const Matrix &a);
void rowMeanInto(Matrix &dst, const Matrix &a);
void colMeanInto(Matrix &dst, const Matrix &a);
void broadcastAddRowInto(Matrix &dst, const Matrix &a, const Matrix &v);
void broadcastSubRowInto(Matrix &dst, const Matrix &a, const Matrix &v);
void broadcastAddColInto(Matrix &dst, const Matrix &a, const Matrix &v);
void scaleRowsInto(Matrix &dst, const Matrix &a, const Matrix &v);
void divRowsInto(Matrix &dst, const Matrix &a, const Matrix &v);
void softmaxRowsInto(Matrix &dst, const Matrix &a);
void expElemInto(Matrix &dst, const Matrix &a);
void geluInto(Matrix &dst, const Matrix &a);
void mapElemInto(Matrix &dst, const Matrix &a,
                 const std::function<float(float)> &fn);
void layerNormRowsInto(Matrix &dst, const Matrix &a, const Matrix &gamma,
                       const Matrix &beta, float eps = 1e-5f);
/// @}

} // namespace vitality

#endif // VITALITY_TENSOR_OPS_H
