/**
 * @file
 * Internals shared by the two INT8 GEMM backends.
 *
 * The bitwise scalar == AVX2 contract of the quantized path (gemm.h,
 * "INT8 quantized path") rests on two facts: the int32 accumulation
 * of int8 products is exact, so any summation order yields the same
 * S; and the only floating-point program — the dequant + epilogue
 * write-back — is defined once here and executed element-wise
 * identically by both backends (the AVX2 TU's vectorized full-tile
 * store is the one intentional second copy, built from lane-wise
 * single-rounding operations that match these scalar ones exactly,
 * mirroring the epilogueStoreTile precedent in gemm_avx2.cpp).
 * geluScalar / geluApproxScalar are out-of-line baseline-ISA
 * functions and this header contains only float add/mul/convert, so
 * including it from the -mavx2 TU cannot introduce rounding
 * divergence (-ffp-contract=off build-wide).
 *
 * Internal to the tensor layer; not part of the public Gemm surface.
 */

#ifndef VITALITY_TENSOR_GEMM_INT8_H
#define VITALITY_TENSOR_GEMM_INT8_H

#include <cstddef>
#include <cstdint>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vitality {

class QuantizedMatrix;

namespace detail {

/**
 * Write n finished integer accumulators acc[0..n) through the dequant
 * epilogue into dst[0..n):
 *
 *   t = float(acc[j] - za * wsum[j]) * cs;   // exact int sub, one cvt
 *   t += bias[j] if bias; t = act(t); dst[j] = accumulate ? dst[j]+t : t
 *
 * cs is the combined scale sa_row * sw, za the activation row's zero
 * point, wsum the per-column weight sums (both computed by the
 * dispatcher). wsum and bias are pre-offset by the caller. The int32
 * subtraction cannot overflow (|acc| <= k * 127 * 127 and
 * |za * wsum| <= k * 127 * 127, with k bounded far below 2^31 / 2 /
 * 16129 ~ 66k — deeper K throws in the dispatcher) and the
 * int32 -> float conversion is correctly rounded, so this program is
 * deterministic and backend-independent.
 */
inline void
dequantEpilogueRow(float *dst, const int32_t *acc, const int32_t *wsum,
                   int32_t za, float cs, const float *bias, size_t n,
                   bool accumulate, Gemm::Epilogue::Act act)
{
    for (size_t j = 0; j < n; ++j) {
        float t = static_cast<float>(acc[j] - za * wsum[j]) * cs;
        if (bias)
            t += bias[j];
        if (act == Gemm::Epilogue::Act::Gelu)
            t = geluScalar(t);
        else if (act == Gemm::Epilogue::Act::GeluFast)
            t = geluApproxScalar(t);
        dst[j] = accumulate ? dst[j] + t : t;
    }
}

/**
 * One row band [rowBegin, rowEnd) of the INT8 product, scalar
 * reference backend: exact int32 accumulation then dequantEpilogueRow
 * per row. Operands are pre-validated by the dispatcher (kinds,
 * shapes, epilogue); wsum holds the n per-column sums of op(B).
 */
void gemmInt8Scalar(Matrix &dst, const QuantizedMatrix &a,
                    const QuantizedMatrix &b, Gemm::Trans trans,
                    size_t rowBegin, size_t rowEnd, const int32_t *wsum,
                    const Gemm::Epilogue &ep);

#if VITALITY_HAVE_AVX2
/**
 * Same contract on the AVX2 backend: 4x16 microkernel over packed
 * k-quad panels (maddubs/madd into int32 accumulators), vectorized
 * dequant write-back on full tiles, dequantEpilogueRow on ragged
 * edges. Bitwise-identical to gemmInt8Scalar by construction. A
 * non-null packedB supplies prepacked full-k op(B) panels (jp stride
 * quads * 64, the PackedMatrix layout) and skips the per-call B pack;
 * the panels are byte-identical to packBPanelInt8 output, so the
 * result is unchanged.
 */
void gemmInt8Avx2(Matrix &dst, const QuantizedMatrix &a,
                  const QuantizedMatrix &b, Gemm::Trans trans,
                  size_t rowBegin, size_t rowEnd, const int32_t *wsum,
                  const Gemm::Epilogue &ep,
                  const int8_t *packedB = nullptr);

/**
 * 8-lane twin of the scalar activation-quantization group loop in
 * QuantizedMatrix::assignActivations: the min/max range scan (exactly
 * associative, zero-seeded like the scalar fold), the scalar
 * zero-point derivation, and the per-element
 * (x * inv + zpf + magic) - magic round/clamp/cast program, run with
 * lane-wise single-rounding operations. Bitwise-identical codes,
 * scale, and zero point to the scalar loop, so quantized operands do
 * not depend on the backend. Only called when the AVX2 backend is
 * active.
 */
void quantizeActivationSpanAvx2(int8_t *dst, const float *src, size_t n,
                                float &scaleOut, int32_t &zeroOut);
#endif

} // namespace detail
} // namespace vitality

#endif // VITALITY_TENSOR_GEMM_INT8_H
