#include "tensor/batch.h"

#include <stdexcept>

#include "base/check.h"
#include "base/logging.h"
#include "base/rng.h"

namespace vitality {

Batch::Batch(size_t images, size_t rows, size_t cols)
{
    images_.reserve(images);
    for (size_t i = 0; i < images; ++i)
        images_.emplace_back(rows, cols);
}

Batch
Batch::fromMatrices(std::vector<Matrix> images)
{
    for (size_t i = 1; i < images.size(); ++i) {
        if (images[i].rows() != images[0].rows() ||
            images[i].cols() != images[0].cols()) {
            throw std::invalid_argument(
                strfmt("Batch: image %zu is %s, image 0 is %s", i,
                       images[i].shapeStr().c_str(),
                       images[0].shapeStr().c_str()));
        }
    }
    Batch b;
    b.images_ = std::move(images);
    return b;
}

Batch
Batch::randn(size_t images, size_t rows, size_t cols, Rng &rng, float mean,
             float stddev)
{
    Batch b;
    b.images_.reserve(images);
    for (size_t i = 0; i < images; ++i)
        b.images_.push_back(Matrix::randn(rows, cols, rng, mean, stddev));
    return b;
}

Matrix &
Batch::at(size_t i)
{
    if (i >= images_.size())
        throw std::out_of_range(
            strfmt("Batch: image %zu of %zu", i, images_.size()));
    return images_[i];
}

const Matrix &
Batch::at(size_t i) const
{
    if (i >= images_.size())
        throw std::out_of_range(
            strfmt("Batch: image %zu of %zu", i, images_.size()));
    return images_[i];
}

void
Batch::resize(size_t images, size_t rows, size_t cols)
{
    if (images_.size() > images)
        images_.resize(images);
    for (Matrix &m : images_)
        m.resize(rows, cols);
    while (images_.size() < images)
        images_.emplace_back(rows, cols);

    // Postcondition: the uniform-shape invariant every Batch consumer
    // (forwardBatch fan-outs, operator==) assumes — B images, each
    // exactly rows x cols.
    VITALITY_CHECK(images_.size() == images,
                   "Batch::resize left %zu images, wanted %zu",
                   images_.size(), images);
#if VITALITY_CHECKED
    for (const Matrix &m : images_)
        VITALITY_DCHECK(m.rows() == rows && m.cols() == cols,
                        "Batch::resize left image %s, wanted [%zu x %zu]",
                        m.shapeStr().c_str(), rows, cols);
#endif
}

void
Batch::copyFrom(const Batch &other)
{
    resize(other.size(), other.rows(), other.cols());
    for (size_t i = 0; i < images_.size(); ++i)
        images_[i].copyFrom(other.images_[i]);
}

bool
Batch::operator==(const Batch &other) const
{
    if (images_.size() != other.images_.size())
        return false;
    for (size_t i = 0; i < images_.size(); ++i) {
        if (images_[i] != other.images_[i])
            return false;
    }
    return true;
}

bool
Batch::allClose(const Batch &other, float tol) const
{
    if (images_.size() != other.images_.size())
        return false;
    for (size_t i = 0; i < images_.size(); ++i) {
        if (!images_[i].allClose(other.images_[i], tol))
            return false;
    }
    return true;
}

std::string
Batch::shapeStr() const
{
    return strfmt("[%zu x %zu x %zu]", size(), rows(), cols());
}

} // namespace vitality
