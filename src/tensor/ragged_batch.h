/**
 * @file
 * A variable-token batch: B images over one contiguous token buffer.
 *
 * Batch (tensor/batch.h) is uniform-shape by construction, so the
 * engine cannot express token-count diversity — the axis DynamicViT
 * token sparsification and mixed-resolution serving exploit. A
 * RaggedBatch is the variable-length counterpart: B images of n_i x
 * cols tokens stored back to back in one row-major buffer, described by
 * a cu_lens-style offsets array of B + 1 row offsets (offsets()[i] is
 * the first buffer row of image i; offsets()[B] is the total row
 * count). This is the layout LLMInfer's VarLenAttentionParams uses for
 * variable-length attention (SNIPPETS.md Snippet 1): consumers walk
 * [offsets()[i], offsets()[i+1]) instead of assuming a uniform n.
 *
 * The contiguous buffer is the load-bearing design choice: every
 * per-row dense stage (layer norm, GEMM projections, GELU, residuals,
 * per-row activation quantization) can run over the WHOLE concatenated
 * buffer as one Matrix, because those stages are row-independent — the
 * model layer relies on this to keep the ragged encoder path
 * bitwise-identical per image to the uniform one. Only attention needs
 * the per-image boundaries.
 *
 * Invariants: every image has >= 1 rows (token row 0 is the CLS token
 * by model-layer convention) and cols >= 1; established by resize()/
 * packFrom() and relied on by the runtime layer. Storage recycles on
 * resize exactly like Matrix/Batch, so steady-state reuse is
 * allocation-free. shrinkRows() supports in-place token pruning: after
 * a caller compacts kept rows toward the front of the buffer, it
 * replaces the row structure without touching storage.
 */

#ifndef VITALITY_TENSOR_RAGGED_BATCH_H
#define VITALITY_TENSOR_RAGGED_BATCH_H

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/batch.h"
#include "tensor/matrix.h"

namespace vitality {

/** B token matrices of per-image row counts over one buffer. */
class RaggedBatch
{
  public:
    /** An empty batch (0 images). */
    RaggedBatch() = default;

    /** Adopt copies of n mixed-shape matrices (packFrom contract). */
    static RaggedBatch fromMatrices(const Matrix *const *inputs,
                                    size_t n);

    /** A ragged copy of a uniform batch (same images, same values). */
    static RaggedBatch fromBatch(const Batch &batch);

    /** Number of images B. */
    size_t size() const
    {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    bool empty() const { return size() == 0; }

    /** Total token rows across all images. */
    size_t totalRows() const
    {
        return offsets_.empty() ? 0 : offsets_.back();
    }

    /** Columns of every image (0 for an empty batch). */
    size_t cols() const { return buffer_.cols(); }

    /** Token rows of image i. */
    size_t rowsOf(size_t i) const;

    /** First buffer row of image i (offsets()[i]). */
    size_t offset(size_t i) const;

    /**
     * The cu_lens array: B + 1 row offsets, offsets()[0] == 0,
     * offsets()[B] == totalRows(). Empty for an empty batch.
     */
    const std::vector<size_t> &offsets() const { return offsets_; }

    /**
     * The contiguous totalRows() x cols() token buffer. Handed out
     * mutably so dense stages can run over all images at once;
     * reshaping it breaks the offsets invariant and is a caller error
     * (the runtime re-validates and throws).
     */
    Matrix &buffer() { return buffer_; }
    const Matrix &buffer() const { return buffer_; }

    /** Pointer to token row r of image i. */
    float *rowPtr(size_t i, size_t r)
    {
        return buffer_.rowPtr(offset(i) + r);
    }
    const float *rowPtr(size_t i, size_t r) const
    {
        return buffer_.rowPtr(offset(i) + r);
    }

    /**
     * Resize to n images of rows[i] x cols tokens, recycling storage
     * (Matrix::resize semantics: contents unspecified). Every rows[i]
     * must be >= 1 and cols >= 1; n >= 1.
     */
    void resize(const size_t *rows, size_t n, size_t cols);

    /** Resize to other's image structure (values not copied). */
    void resizeLike(const RaggedBatch &other);

    /**
     * Pack n mixed-shape request matrices (resized, storage recycled).
     * All inputs must be non-null with cols equal and rows >= 1;
     * throws std::invalid_argument otherwise.
     */
    void packFrom(const Matrix *const *inputs, size_t n);

    /** Pack a uniform batch (resized, storage recycled). */
    void packFrom(const Batch &batch);

    /** Copy image i into dst (resized). std::out_of_range on bad i. */
    void unpackImage(size_t i, Matrix &dst) const;

    /** Resize to other's structure and copy its contents. */
    void copyFrom(const RaggedBatch &other);

    /**
     * Replace the row structure with smaller per-image counts after
     * the caller compacted the kept rows of every image toward the
     * front of the buffer (token pruning). newRows[i] must be in
     * [1, rowsOf(i)]; buffer storage is untouched — rows past the new
     * structure simply stop being addressable.
     */
    void shrinkRows(const size_t *newRows);

    /** True if structures, and all addressable entries, match. */
    bool operator==(const RaggedBatch &other) const;
    bool operator!=(const RaggedBatch &other) const
    {
        return !(*this == other);
    }

    /** True if structures match and entries differ by at most tol. */
    bool allClose(const RaggedBatch &other, float tol = 1e-5f) const;

    /** Human-readable shape, e.g. "[3 x {1,17,197} x 192]". */
    std::string shapeStr() const;

  private:
    void checkIndex(size_t i) const;

    Matrix buffer_;
    /** cu_lens row offsets, size B + 1 (empty for an empty batch). */
    std::vector<size_t> offsets_;
};

} // namespace vitality

#endif // VITALITY_TENSOR_RAGGED_BATCH_H
