/**
 * @file
 * PackedMatrix: a weight operand prepacked into the exact panel
 * layouts the GEMM microkernels consume, hoisting the op(B) pack loop
 * out of the per-call path.
 *
 * Every Gemm::multiply today re-packs op(B) into kc x 16 panels (fp32)
 * or k-quad panels (int8) on each call, even though model weights are
 * static across calls. PackedMatrix runs the same pack once, up front:
 *
 *   - packFp32() lays out full-k column panels, panel jp at offset
 *     jp * k * 16, byte-identical to what the AVX2 backend's per-call
 *     packBPanel would produce for each kc chunk (the chunk [k0, k1)
 *     of panel jp sits at jp * k * 16 + k0 * 16 — chunks are
 *     contiguous in k, see gemm_pack.h). The AVX2 backend therefore
 *     consumes prepacked panels through the identical microkernel
 *     program and the result is bitwise-identical to the eager call.
 *   - packInt8() lays out k-quad panels (panel jp at offset
 *     jp * quads * 64) plus the per-column weight sums (wsum) the
 *     dequant zero-point correction needs, computed at pack time with
 *     the dispatcher's exact integer loops.
 *
 * The source matrix is BORROWED, not copied: the scalar backend (and
 * any validation) reads the original operand directly — the unpack-
 * free reference path that keeps planned-vs-eager parity bitwise on
 * every backend — so the source must outlive the PackedMatrix and must
 * not be mutated after packing (same lifetime contract as
 * Gemm::Epilogue::bias). Repacking after a weight update is the
 * owner's job (EncoderPlan recompiles).
 *
 * The transpose mode of op(B) is baked at pack time (Trans::None or
 * Trans::B); the prepacked multiply() overloads then only accept a
 * transpose of the A operand. Thread-safety: packFp32/packInt8 are
 * setup-time mutations; once packed, all accessors are const and a
 * PackedMatrix may be read by any number of concurrent multiplies.
 */

#ifndef VITALITY_TENSOR_PACKED_WEIGHTS_H
#define VITALITY_TENSOR_PACKED_WEIGHTS_H

#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/matrix.h"

namespace vitality {

class QuantizedMatrix;

class PackedMatrix
{
  public:
    PackedMatrix() = default;

    /**
     * Pack op(b) into full-k fp32 column panels (trans None or B;
     * Trans::A throws — op(B) has no A side). b is borrowed: it must
     * outlive this object and stay unmodified. Calling again repacks
     * (a fresh source may have the same op-shape or a new one, but
     * must agree with any int8 pack already held).
     */
    void packFp32(const Matrix &b, Gemm::Trans trans = Gemm::Trans::None);

    /**
     * Pack op(b) into int8 k-quad panels plus per-column weight sums.
     * b must be WeightS8-kind (the only operand the quantized multiply
     * accepts on the RHS) and is borrowed like the fp32 source. The
     * op-shape and transpose must agree with any fp32 pack already
     * held (the two are views of the same logical weight).
     */
    void packInt8(const QuantizedMatrix &b,
                  Gemm::Trans trans = Gemm::Trans::None);

    bool hasFp32() const { return fp32Src_ != nullptr; }
    bool hasInt8() const { return int8Src_ != nullptr; }

    /** Rows of op(B) (the GEMM inner dimension). */
    size_t kDim() const { return k_; }
    /** Columns of op(B) (the GEMM output width). */
    size_t nDim() const { return n_; }
    /** The baked transpose mode (Trans::None or Trans::B). */
    Gemm::Trans trans() const { return trans_; }

    /** The borrowed fp32 source, or nullptr. */
    const Matrix *sourceFp32() const { return fp32Src_; }
    /** The borrowed int8 source, or nullptr. */
    const QuantizedMatrix *sourceInt8() const { return int8Src_; }

    /** Full-k fp32 panels, panel jp at jp * kDim() * 16. */
    const float *fp32Panels() const { return fp32Base_; }
    /** Int8 k-quad panels, panel jp at jp * quads * 64. */
    const int8_t *int8Panels() const { return int8Base_; }
    /** Per-column sums of op(B), nDim() entries (int8 pack only). */
    const int32_t *wsum() const { return wsum_.data(); }

    /** Bytes held by the packed panels (fp32 + int8 + wsum). */
    size_t packedBytes() const;

  private:
    void adoptShape(size_t k, size_t n, Gemm::Trans trans);

    size_t k_ = 0;
    size_t n_ = 0;
    Gemm::Trans trans_ = Gemm::Trans::None;
    const Matrix *fp32Src_ = nullptr;
    const QuantizedMatrix *int8Src_ = nullptr;
    // Panel storage is over-allocated and read through a 64-byte-
    // aligned base pointer: a panel row is exactly one cache line
    // (kNr x 4 bytes fp32, kNr8 x 4 quad bytes int8), and the per-call
    // scratch the microkernels otherwise read comes from
    // Workspace::acquireAligned — a merely vector-aligned base would
    // split every panel row across two lines and measurably slow the
    // prepacked path below the eager one it replaces.
    std::vector<float> fp32Panels_;
    std::vector<int8_t> int8Panels_;
    std::vector<int32_t> wsum_;
    float *fp32Base_ = nullptr;
    int8_t *int8Base_ = nullptr;
};

} // namespace vitality

#endif // VITALITY_TENSOR_PACKED_WEIGHTS_H
