/**
 * @file
 * RuntimeOptions: the one programmatic surface over the library's seven
 * execution knobs.
 *
 * Before this struct existed, pinning an execution mode meant knowing
 * the env variables (VITALITY_GEMM, VITALITY_THREADS,
 * VITALITY_EPILOGUE, VITALITY_SPARSE, VITALITY_QUANT, VITALITY_TOKENS,
 * and now VITALITY_LAYERS) and as many ad-hoc setters scattered across
 * layers (Gemm::setActive, Gemm::setMaxThreads, Gemm::setEpilogueMode,
 * setSparseExecMode, Gemm::setQuantMode, setTokenKeepRatio,
 * setLayerKernelSchedule).
 * RuntimeOptions gathers them into one struct of optional fields, and
 * defines THE resolution order, documented once, here:
 *
 *   explicit value  >  env variable  >  built-in default
 *
 * An engaged optional is an explicit value. A disengaged optional
 * defers to the process state, which the per-knob lazy resolvers
 * (Gemm::active(), Gemm::maxThreads(), Gemm::epilogueMode(),
 * sparseExecMode(), Gemm::quantMode()) initialize exactly once from
 * the env variable, falling back to the built-in default ("best
 * available backend", uncapped, fused, csr, off). The env variables
 * are therefore a fully supported back-compat layer, not a deprecated
 * one: options the caller leaves unset behave bitwise-identically to
 * the pre-RuntimeOptions library.
 *
 * The struct is plain data, so a ModelServer config (or any embedding
 * application) can carry a full execution mode per model and install
 * it at a well-defined point — globally via apply(), or temporarily
 * via the RAII Scoped guard, which ModelServer wraps around each batch
 * dispatch. The knobs themselves remain process-global (the GEMM
 * dispatch and the sparse execution path read global atomics), which
 * is why Scoped exists instead of a per-call parameter: the guard is
 * the narrow window in which "this model's options" are the process
 * state. Like the setters it wraps, apply()/Scoped are not
 * synchronized with in-flight multiplies — callers serialize
 * (ModelServer holds its dispatch gate across the guard).
 */

#ifndef VITALITY_RUNTIME_RUNTIME_OPTIONS_H
#define VITALITY_RUNTIME_RUNTIME_OPTIONS_H

#include <cstddef>
#include <optional>
#include <string>

#include "sparse/csr.h"
#include "tensor/gemm.h"

namespace vitality {

/**
 * @name Token keep-ratio knob (VITALITY_TOKENS)
 *
 * The global keep-ratio the ragged encoder path's token pruner applies
 * when a VitConfig carries no explicit per-layer schedule: the
 * fraction of non-CLS tokens kept at each default prune point
 * (model/token_pruner.h builds the staged schedule). In (0, 1];
 * 1.0 = keep everything (pruning disabled, the default). Lazily
 * resolved from VITALITY_TOKENS on first read, same contract as the
 * other knob resolvers; malformed or out-of-range text warns and
 * falls back to 1.0. The uniform Batch/Matrix paths never consult it.
 */
/// @{
float tokenKeepRatio();
/** Throws std::invalid_argument outside (0, 1]. */
void setTokenKeepRatio(float keep);
/** Parse "0.5"-style text; nullopt when malformed or out of range. */
std::optional<float> parseTokenKeep(const char *text);
/// @}

/**
 * @name Per-layer kernel schedule knob (VITALITY_LAYERS)
 *
 * The global per-layer attention-kernel schedule an EncoderPlan
 * compiles in when neither PlanOptions nor the model's VitConfig pins
 * one: a string in the attention/zoo.h grammar, e.g.
 * "taylor:0-7,softmax:8-11"; uncovered layers run the model's base
 * kernel. Empty = uniform (every layer runs the base kernel, the
 * default). Lazily resolved from VITALITY_LAYERS on first read, same
 * contract as the other knob resolvers; malformed text warns and falls
 * back to uniform. Eager (unplanned) execution never consults it.
 */
/// @{
std::string layerKernelSchedule();
/** Throws std::invalid_argument on malformed text ("" is valid). */
void setLayerKernelSchedule(const std::string &schedule);
/** Validate schedule text; nullopt when malformed. */
std::optional<std::string> parseLayerKernels(const char *text);
/// @}

struct RuntimeOptions
{
    /** GEMM backend (VITALITY_GEMM; default: best available). */
    std::optional<Gemm::Backend> gemmBackend;

    /**
     * Intra-GEMM row-band cap, 0 = uncapped (VITALITY_THREADS). Also
     * the default ThreadPool size when a pool is built with 0 workers.
     */
    std::optional<size_t> threads;

    /** Epilogue mode (VITALITY_EPILOGUE; default fused). */
    std::optional<Gemm::EpilogueMode> epilogueMode;

    /** Sparse-branch execution path (VITALITY_SPARSE; default csr). */
    std::optional<SparseExec> sparseMode;

    /** Dense-stage quantization (VITALITY_QUANT; default off). */
    std::optional<Gemm::QuantMode> quantMode;

    /** Token keep-ratio in (0, 1] (VITALITY_TOKENS; default 1.0). */
    std::optional<float> tokenKeep;

    /**
     * Per-layer kernel schedule for compiled plans (VITALITY_LAYERS;
     * default "" = uniform). Engaged-empty explicitly pins uniform.
     */
    std::optional<std::string> layerKernels;

    /** True when no field is engaged: apply() would be a no-op. */
    bool empty() const;

    /**
     * This options set with every disengaged field filled in from the
     * process state — the "explicit > env > default" resolution,
     * evaluated now. (The env half happens inside the per-knob lazy
     * resolvers; a knob some setter already overrode reports the
     * override, which is the truthful answer.) The result has every
     * field engaged.
     */
    RuntimeOptions resolved() const;

    /**
     * Install every engaged field into the process state via the
     * legacy setters; disengaged fields are left untouched (their lazy
     * env resolution still applies on first use). Throws
     * std::invalid_argument if gemmBackend names a backend that is
     * unavailable on this host (Gemm::setActive's contract). Not
     * synchronized with in-flight multiplies — see the file comment.
     */
    void apply() const;

    /** The current process state, every field engaged. */
    static RuntimeOptions current();

    /**
     * Parse the seven VITALITY_* variables into an options set:
     * engaged where the variable is set and well-formed, disengaged
     * otherwise (unset AND malformed — the lazy resolvers warn about
     * malformed text, this helper just skips it). Introspection /
     * logging helper; the library never needs it because disengaged
     * fields already defer to the env through the resolvers.
     */
    static RuntimeOptions fromEnv();

    /**
     * Human-readable one-liner, e.g.
     * "gemm=avx2 threads=0 epilogue=fused sparse=csr quant=off
     * tokens=1 layers=uniform" with "-" for disengaged fields.
     */
    std::string summary() const;

    class Scoped; // defined below (needs the complete struct)
};

/**
 * RAII guard: captures current(), applies opts, restores the capture
 * on destruction. The restore re-installs every knob (current() is
 * fully engaged), so nested guards unwind correctly. Callers must
 * serialize guards against concurrent multiplies — this is
 * ModelServer's dispatch-gate contract.
 */
class RuntimeOptions::Scoped
{
  public:
    explicit Scoped(const RuntimeOptions &opts);
    ~Scoped();

    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    RuntimeOptions saved_;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_RUNTIME_OPTIONS_H
