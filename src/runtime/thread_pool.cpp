#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "base/check.h"

namespace vitality {

namespace {

// Set inside workerLoop; lets the GEMM runner (and callers) detect that
// the current thread belongs to some pool, where nested fan-out must
// collapse to sequential execution.
thread_local bool t_onWorkerThread = false;

// Live pools in construction order. The newest live pool serves as the
// process's GEMM runner; when it is destroyed the role falls back to
// the previous live pool instead of silently leaving every later
// multiply sequential. The mutex also serializes the check-then-install
// so two pools constructed concurrently cannot both claim the role.
std::mutex g_poolRegistryMutex;
std::vector<ThreadPool *> g_livePools;

size_t
defaultThreadCount()
{
    // VITALITY_THREADS overrides the default worker count through the
    // same resolver that caps the GEMM band fan-out (Gemm::maxThreads,
    // 0 = unset), so one knob with one parse pins the whole process to
    // N threads.
    const size_t override = Gemm::maxThreads();
    if (override > 0)
        return override;
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0)
        num_threads = defaultThreadCount();
    workers_.reserve(num_threads);
    for (size_t w = 0; w < num_threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });

    // The newest pool becomes the process's intra-GEMM runner. Width 1
    // from a worker thread keeps nested GEMMs sequential (image-level
    // parallelism wins in the batched path); Gemm additionally applies
    // the VITALITY_THREADS cap and its size heuristic.
    //
    // The closures capture `state`, never `this`: a multiply can hold a
    // snapshot of this runner past the pool's destruction (see
    // RunnerState in the header), so everything they touch must stay
    // valid until the last snapshot drops.
    runnerState_ = std::make_shared<RunnerState>();
    runnerState_->pool = this;
    runnerState_->width = workers_.size();

    auto runner = std::make_shared<Gemm::ParallelRunner>();
    runner->width = [state = runnerState_]() -> size_t {
        // width is advisory (a band count, not an execution promise),
        // so the immutable worker count serves without taking the
        // gate: if the pool dies between here and run(), run() simply
        // executes that many bands sequentially.
        return onWorkerThread() ? 1 : state->width;
    };
    runner->run = [state = runnerState_](
                      size_t tasks, const std::function<void(size_t)> &fn) {
        std::shared_lock<std::shared_mutex> gate(state->gate);
        if (state->pool != nullptr) {
            state->pool->parallelFor(0, tasks,
                                     [&fn](size_t i, size_t) { fn(i); });
        } else {
            // The pool died after this runner was snapshotted: degrade
            // to sequential execution rather than fail the multiply.
            for (size_t i = 0; i < tasks; ++i)
                fn(i);
        }
    };
    gemmRunner_ = std::move(runner);
    {
        std::lock_guard<std::mutex> lock(g_poolRegistryMutex);
        g_livePools.push_back(this);
        Gemm::setParallelRunner(gemmRunner_);
    }
}

ThreadPool::~ThreadPool()
{
    // Un-install the runner before the workers go away so no later
    // multiply fans out into a dead pool; if another pool is still
    // alive, hand the role to the newest of them instead of dropping
    // intra-GEMM parallelism for the rest of the process.
    {
        std::lock_guard<std::mutex> lock(g_poolRegistryMutex);
        g_livePools.erase(
            std::find(g_livePools.begin(), g_livePools.end(), this));
        if (Gemm::parallelRunner() == gemmRunner_) {
            Gemm::setParallelRunner(
                g_livePools.empty() ? nullptr
                                    : g_livePools.back()->gemmRunner_);
        }
    }
    // Wait out multiplies that snapshotted our runner before the
    // un-install above: run() holds the gate shared for the duration of
    // its fan-out, so taking it exclusively blocks until they drain.
    // Nulling `pool` sends any *later* snapshot-holder down run()'s
    // sequential branch instead of into a joined pool.
    {
        std::unique_lock<std::shared_mutex> gate(runnerState_->gate);
        runnerState_->pool = nullptr;
    }
    // Runner-driven loops have drained above, so a nonzero count here
    // is a genuine caller bug: another thread is still inside a direct
    // parallelFor() on this pool while we tear it down.
    VITALITY_CHECK(inFlightLoops_.load() == 0,
                   "~ThreadPool while %zu parallelFor call(s) in flight",
                   inFlightLoops_.load());
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

bool
ThreadPool::onWorkerThread()
{
    return t_onWorkerThread;
}

void
ThreadPool::submit(std::function<void(size_t)> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop(size_t worker)
{
    t_onWorkerThread = true;
    for (;;) {
        std::function<void(size_t)> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(worker);
    }
}

void
ThreadPool::parallelForImpl(size_t begin, size_t end,
                            const std::function<void(size_t, size_t)> &body)
{
    VITALITY_CHECK(!onWorkerThread(),
                   "parallelFor from a pool worker would deadlock");

    // Belt-and-braces for release builds: if the pool is already
    // tearing down (a caller bug the checked build asserts on in the
    // destructor), run the loop inline rather than enqueue tasks no
    // worker may ever pop.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            for (size_t i = begin; i < end; ++i)
                body(i, 0);
            return;
        }
    }

    inFlightLoops_.fetch_add(1);

    // Shared loop state: a counter hands indices to whichever driver task
    // is free, and the last driver to finish wakes the caller.
    struct LoopState
    {
        std::atomic<size_t> next;
        std::atomic<size_t> pendingDrivers;
        std::exception_ptr error;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto state = std::make_shared<LoopState>();
    state->next.store(begin);

    const size_t drivers = std::min(size(), end - begin);
    state->pendingDrivers.store(drivers);

    for (size_t d = 0; d < drivers; ++d) {
        submit([state, end, &body](size_t worker) {
            for (;;) {
                const size_t i = state->next.fetch_add(1);
                if (i >= end)
                    break;
                try {
                    body(i, worker);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    // Drain remaining indices so the loop still ends.
                    state->next.store(end);
                    break;
                }
            }
            if (state->pendingDrivers.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done.notify_all();
            }
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->pendingDrivers.load() == 0; });
    inFlightLoops_.fetch_sub(1);
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace vitality
