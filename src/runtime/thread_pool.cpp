#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace vitality {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t w = 0; w < num_threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void(size_t)> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop(size_t worker)
{
    for (;;) {
        std::function<void(size_t)> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(worker);
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;

    // Shared loop state: a counter hands indices to whichever driver task
    // is free, and the last driver to finish wakes the caller.
    struct LoopState
    {
        std::atomic<size_t> next;
        std::atomic<size_t> pendingDrivers;
        std::exception_ptr error;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto state = std::make_shared<LoopState>();
    state->next.store(begin);

    const size_t drivers = std::min(size(), end - begin);
    state->pendingDrivers.store(drivers);

    for (size_t d = 0; d < drivers; ++d) {
        submit([state, end, &body](size_t worker) {
            for (;;) {
                const size_t i = state->next.fetch_add(1);
                if (i >= end)
                    break;
                try {
                    body(i, worker);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    // Drain remaining indices so the loop still ends.
                    state->next.store(end);
                    break;
                }
            }
            if (state->pendingDrivers.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done.notify_all();
            }
        });
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->pendingDrivers.load() == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace vitality
