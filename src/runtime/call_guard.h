/**
 * @file
 * RAII re-entrancy guard for single-caller runtime objects.
 *
 * MultiHeadAttention and VitEncoder own per-worker contexts and recycled
 * activation buffers, so concurrent forward calls on one instance would
 * silently corrupt shared state. CallGuard turns that misuse into a
 * deterministic std::logic_error: the first caller flips the in-flight
 * flag, any overlapping caller throws, and the flag is released on scope
 * exit (including exceptional exit).
 */

#ifndef VITALITY_RUNTIME_CALL_GUARD_H
#define VITALITY_RUNTIME_CALL_GUARD_H

#include <atomic>
#include <stdexcept>

namespace vitality {

/** Throws std::logic_error(what) if flag is already held; RAII release. */
class CallGuard
{
  public:
    CallGuard(std::atomic<bool> &flag, const char *what) : flag_(flag)
    {
        if (flag_.exchange(true, std::memory_order_acq_rel))
            throw std::logic_error(what);
    }

    ~CallGuard() { flag_.store(false, std::memory_order_release); }

    CallGuard(const CallGuard &) = delete;
    CallGuard &operator=(const CallGuard &) = delete;

  private:
    std::atomic<bool> &flag_;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_CALL_GUARD_H
