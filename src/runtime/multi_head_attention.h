/**
 * @file
 * Multi-head dispatch over any attention kernel.
 *
 * The paper states all of its model-level numbers for H heads x L layers
 * of DeiT/ViT; the kernels themselves are single-head. MultiHeadAttention
 * closes that gap: it slices packed n x (H * d_h) query/key/value
 * matrices into per-head views, fans the heads out across a ThreadPool
 * (each worker running the kernel's allocation-free forwardInto through
 * its own AttentionContext), and writes the per-head outputs back into
 * the packed n x (H * d_h) result — the concatenation step of standard
 * multi-head attention. The output projection W_O lives in the model
 * layer, matching where the paper draws the attention-vs-linear boundary.
 *
 * The batched entry points take a Batch of B packed images and fan
 * B x H independent work items across the pool, which is what keeps the
 * workers busy at small head counts (H=3 for DeiT-Tiny leaves most of a
 * pool idle when only one image is in flight). The ragged entry points
 * do the same over a RaggedBatch (tensor/ragged_batch.h): every kernel
 * invocation runs at its image's own token count, reading its row band
 * of the contiguous packed buffer — the variable-token execution the
 * token-pruning model path and mixed-resolution serving dispatch
 * through.
 *
 * Thread safety: one MultiHeadAttention instance owns per-worker
 * contexts, so concurrent forward calls on the same instance are not
 * allowed; the entry points detect that misuse and throw
 * std::logic_error instead of corrupting the shared contexts. Concurrent
 * calls on different instances are fine.
 */

#ifndef VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H
#define VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "attention/attention.h"
#include "runtime/call_guard.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/ragged_batch.h"

namespace vitality {

/** Fans H heads (x B images) of an attention kernel across a pool. */
class MultiHeadAttention
{
  public:
    /**
     * @param kernel Per-head kernel, shared across heads (kernels are
     * stateless with respect to the input).
     * @param heads Head count H; packed inputs carry H * d_h columns.
     */
    MultiHeadAttention(AttentionKernelPtr kernel, size_t heads);

    size_t heads() const { return heads_; }
    const AttentionKernel &kernel() const { return *kernel_; }

    /**
     * Parallel forward over packed inputs.
     *
     * @param pool Pool to fan heads across.
     * @param q,k,v Packed matrices, n x (heads * d_h), n >= 1, d_h >= 1.
     * @param out Packed result, resized to n x (heads * d_h).
     */
    void forwardInto(ThreadPool &pool, const Matrix &q, const Matrix &k,
                     const Matrix &v, Matrix &out);

    Matrix forward(ThreadPool &pool, const Matrix &q, const Matrix &k,
                   const Matrix &v);

    /**
     * Batched parallel forward: B x heads work items across the pool.
     *
     * @param pool Pool to fan (image, head) pairs across.
     * @param q,k,v Batches of B packed matrices (all three the same B).
     * @param out Resized to B x n x (heads * d_h); must not alias an
     * input batch. Bitwise-identical to B forwardInto calls, one per
     * image (each (image, head) pair is an independent float program;
     * only the scheduling differs).
     */
    void forwardBatchInto(ThreadPool &pool, const Batch &q, const Batch &k,
                          const Batch &v, Batch &out);

    Batch forwardBatch(ThreadPool &pool, const Batch &q, const Batch &k,
                       const Batch &v);

    /**
     * Ragged parallel forward: B x heads work items across the pool,
     * every kernel invocation at its image's own token count.
     *
     * @param pool Pool to fan (image, head) pairs across.
     * @param q,k,v Ragged batches over one contiguous buffer each
     * (tensor/ragged_batch.h). All three must agree on image count and
     * columns; k and v must share per-image row counts (q's may
     * differ, as in the Matrix overload).
     * @param out Resized to q's image structure; must not alias an
     * input. Image i is bitwise-identical to forwardInto on that
     * image's matrices — each (image, head) pair is the same float
     * program, reading a row band of the packed buffer instead of a
     * standalone Matrix.
     */
    void forwardRaggedInto(ThreadPool &pool, const RaggedBatch &q,
                           const RaggedBatch &k, const RaggedBatch &v,
                           RaggedBatch &out);

    RaggedBatch forwardRagged(ThreadPool &pool, const RaggedBatch &q,
                              const RaggedBatch &k, const RaggedBatch &v);

    /**
     * Reference path: identical computation, one head at a time on the
     * calling thread. Bitwise-identical to the pooled path.
     */
    void forwardSequentialInto(const Matrix &q, const Matrix &k,
                               const Matrix &v, Matrix &out);

    Matrix forwardSequential(const Matrix &q, const Matrix &k,
                             const Matrix &v);

    /** Batched sequential reference, bitwise-identical to the pooled
     * batch path. */
    void forwardBatchSequentialInto(const Batch &q, const Batch &k,
                                    const Batch &v, Batch &out);

    Batch forwardBatchSequential(const Batch &q, const Batch &k,
                                 const Batch &v);

    /** Ragged sequential reference, bitwise-identical to the pooled
     * ragged path. */
    void forwardRaggedSequentialInto(const RaggedBatch &q,
                                     const RaggedBatch &k,
                                     const RaggedBatch &v,
                                     RaggedBatch &out);

    RaggedBatch forwardRaggedSequential(const RaggedBatch &q,
                                        const RaggedBatch &k,
                                        const RaggedBatch &v);

    /**
     * Aggregate op counts for one multi-head invocation: the kernel's
     * per-head opCounts(n, d_model / heads) scaled by heads.
     */
    OpCounts opCounts(size_t n, size_t d_model) const;

  private:
    void checkShapes(const Matrix &q, const Matrix &k,
                     const Matrix &v) const;
    void checkBatchShapes(const Batch &q, const Batch &k,
                          const Batch &v) const;
    void checkRaggedShapes(const RaggedBatch &q, const RaggedBatch &k,
                           const RaggedBatch &v) const;
    /** Grow contexts_ to at least workers entries, under contextsMutex_. */
    void ensureContexts(size_t workers);
    /** Run one head through ctx and write its output slice into out. */
    void runHead(AttentionContext &ctx, size_t head, const Matrix &q,
                 const Matrix &k, const Matrix &v, Matrix &out);
    /**
     * The runHead core over raw row bands: qRows x packedCols queries
     * at q, kvRows x packedCols keys/values at k/v, output band at
     * out. The Matrix and ragged paths both land here, which is what
     * makes them bitwise-identical — a row band of a contiguous
     * row-major buffer IS the standalone matrix.
     */
    void runHeadRows(AttentionContext &ctx, size_t head, const float *q,
                     size_t qRows, const float *k, const float *v,
                     size_t kvRows, size_t packedCols, float *out);
    /** Ragged (image, head) work item: band lookup + runHeadRows. */
    void runRaggedItem(AttentionContext &ctx, size_t item,
                       const RaggedBatch &q, const RaggedBatch &k,
                       const RaggedBatch &v, RaggedBatch &out);

    AttentionKernelPtr kernel_;
    size_t heads_;
    /**
     * One context per pool worker, grown on demand. Growth is guarded by
     * contextsMutex_ so the vector itself stays intact even under the
     * (disallowed, detected) concurrent-caller misuse.
     */
    std::vector<std::unique_ptr<AttentionContext>> contexts_;
    std::mutex contextsMutex_;
    /**
     * Set while a forward entry point is executing; CallGuard turns a
     * concurrent same-instance call (which would share per-worker
     * contexts between two forwards) into std::logic_error.
     */
    std::atomic<bool> inFlight_{false};
    /** Context for the sequential reference path. */
    AttentionContext seqContext_;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H
