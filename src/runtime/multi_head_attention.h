/**
 * @file
 * Multi-head dispatch over any attention kernel.
 *
 * The paper states all of its model-level numbers for H heads x L layers
 * of DeiT/ViT; the kernels themselves are single-head. MultiHeadAttention
 * closes that gap: it slices packed n x (H * d_h) query/key/value
 * matrices into per-head views, fans the heads out across a ThreadPool
 * (each worker running the kernel's allocation-free forwardInto through
 * its own AttentionContext), and writes the per-head outputs back into
 * the packed n x (H * d_h) result — the concatenation step of standard
 * multi-head attention. The output projection W_O lives in the model
 * layer, matching where the paper draws the attention-vs-linear boundary.
 *
 * Thread safety: one MultiHeadAttention instance owns per-worker
 * contexts, so concurrent forward() calls on the same instance are not
 * allowed; concurrent calls on different instances are fine.
 */

#ifndef VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H
#define VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H

#include <memory>
#include <vector>

#include "attention/attention.h"
#include "runtime/thread_pool.h"

namespace vitality {

/** Fans H heads of an attention kernel across a thread pool. */
class MultiHeadAttention
{
  public:
    /**
     * @param kernel Per-head kernel, shared across heads (kernels are
     * stateless with respect to the input).
     * @param heads Head count H; packed inputs carry H * d_h columns.
     */
    MultiHeadAttention(AttentionKernelPtr kernel, size_t heads);

    size_t heads() const { return heads_; }
    const AttentionKernel &kernel() const { return *kernel_; }

    /**
     * Parallel forward over packed inputs.
     *
     * @param pool Pool to fan heads across.
     * @param q,k,v Packed matrices, n x (heads * d_h).
     * @param out Packed result, resized to n x (heads * d_h).
     */
    void forwardInto(ThreadPool &pool, const Matrix &q, const Matrix &k,
                     const Matrix &v, Matrix &out);

    Matrix forward(ThreadPool &pool, const Matrix &q, const Matrix &k,
                   const Matrix &v);

    /**
     * Reference path: identical computation, one head at a time on the
     * calling thread. Bitwise-identical to the pooled path (each head is
     * an independent float program; only the interleaving differs).
     */
    void forwardSequentialInto(const Matrix &q, const Matrix &k,
                               const Matrix &v, Matrix &out);

    Matrix forwardSequential(const Matrix &q, const Matrix &k,
                             const Matrix &v);

    /**
     * Aggregate op counts for one multi-head invocation: the kernel's
     * per-head opCounts(n, d_model / heads) scaled by heads.
     */
    OpCounts opCounts(size_t n, size_t d_model) const;

  private:
    void checkShapes(const Matrix &q, const Matrix &k,
                     const Matrix &v) const;
    /** Run one head through ctx and write its output slice into out. */
    void runHead(AttentionContext &ctx, size_t head, const Matrix &q,
                 const Matrix &k, const Matrix &v, Matrix &out);

    AttentionKernelPtr kernel_;
    size_t heads_;
    /** One context per pool worker, grown on demand. */
    std::vector<std::unique_ptr<AttentionContext>> contexts_;
    /** Context for the sequential reference path. */
    AttentionContext seqContext_;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_MULTI_HEAD_ATTENTION_H
