/**
 * @file
 * A fixed-size worker-thread pool.
 *
 * Deliberately simple — a mutex-guarded task queue, no work stealing —
 * because the workloads it serves (one task per attention head, a handful
 * of heads per layer, row bands of a GEMM) are coarse enough that queue
 * contention is noise. What the rest of the runtime relies on is the
 * dense worker numbering: every task body receives the index of the
 * worker executing it, in [0, size()), which is how MultiHeadAttention
 * hands each thread its own AttentionContext without locks or
 * thread-local state.
 *
 * Intra-GEMM parallelism: the most recently constructed live pool
 * serves as the Gemm parallel runner (tensor/gemm.h), so dense GEMMs
 * issued from non-worker threads — the single-image encoder path — fan
 * microkernel-aligned row bands across the workers. The runner reports
 * width 1 from inside a pool task (any pool's), which is the heuristic
 * that keeps the batched path on image-level parallelism: a GEMM inside
 * a per-image task runs sequentially instead of oversubscribing the
 * pool or deadlocking on nested parallelFor.
 *
 * Destruction ordering: ~ThreadPool first hands the runner role to the
 * newest remaining live pool (or un-installs it), then *blocks until
 * every multiply already fanned out through this pool's runner has
 * drained* — a multiply that snapshotted the runner concurrently with
 * destruction degrades to sequential execution on its own thread
 * instead of touching the dead pool. What remains a caller bug, and is
 * asserted in checked builds (-DVITALITY_CHECKED=ON, base/check.h), is
 * destroying a pool while another thread is inside one of its
 * parallelFor() calls directly.
 *
 * The VITALITY_THREADS environment variable overrides the default
 * worker count (ThreadPool(0)) and also caps the GEMM band fan-out
 * (Gemm::maxThreads); explicit constructor counts are never overridden.
 */

#ifndef VITALITY_RUNTIME_THREAD_POOL_H
#define VITALITY_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "tensor/gemm.h"

namespace vitality {

/** Fixed pool of worker threads with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 means the process thread
     * override if set — Gemm::maxThreads(), i.e. VITALITY_THREADS or a
     * Gemm::setMaxThreads() call — else hardware_concurrency() (at
     * least 1).
     */
    explicit ThreadPool(size_t num_threads = 0);

    /**
     * Drains nothing: pending tasks are completed before joining.
     * Blocks until multiplies fanned out through this pool's GEMM
     * runner have drained (see the file comment); direct parallelFor
     * callers must have returned already (checked-build contract).
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * True when the calling thread is a worker of any ThreadPool. The
     * GEMM runner uses this to refuse nested fan-out (parallelFor from
     * a worker would deadlock); callers can use it for the same
     * purpose.
     */
    static bool onWorkerThread();

    /**
     * Enqueue a task; returns immediately. The task receives the index of
     * the worker that runs it. There is no completion handle — use
     * parallelFor() when the caller must wait.
     */
    void submit(std::function<void(size_t worker)> task);

    /**
     * Run body(index, worker) for every index in [begin, end) across the
     * pool and block until all complete. Indices are handed out through a
     * shared counter, so an expensive index does not stall the others.
     * The first exception thrown by any body is rethrown on the calling
     * thread after the loop drains.
     *
     * Must not be called from a pool worker (the caller blocks on the
     * workers, so nesting would deadlock); checked builds assert this.
     *
     * Single-worker pools and single-index loops run the bodies inline
     * on the calling thread (worker index 0) without touching the task
     * queue: no heap allocation, no handoff latency. The steady-state
     * encoder paths rely on this for their zero-allocation contract
     * (tests/test_alloc.cpp), which is also why this is a template —
     * the inline path must not materialize a std::function.
     */
    template <class Body>
    void
    parallelFor(size_t begin, size_t end, Body &&body)
    {
        if (begin >= end)
            return;
        if (workers_.size() == 1 || end - begin == 1) {
            for (size_t i = begin; i < end; ++i)
                body(i, size_t{0});
            return;
        }
        parallelForImpl(begin, end, std::ref(body));
    }

  private:
    /**
     * Shared between the pool and the Gemm runner closures it installs,
     * and the one piece of pool state allowed to outlive the pool: a
     * multiply can snapshot the runner just before ~ThreadPool
     * un-installs it and invoke run() after. run() holds `gate` shared
     * while fanning out; the destructor takes it exclusively and nulls
     * `pool`, which (a) waits out every in-flight fan-out and (b) makes
     * any later run() call execute its bands sequentially on the
     * calling thread instead of dereferencing a dead pool.
     */
    struct RunnerState
    {
        std::shared_mutex gate;
        ThreadPool *pool = nullptr;
        size_t width = 0; ///< Worker count, immutable after construction.
    };

    void workerLoop(size_t worker);
    void parallelForImpl(size_t begin, size_t end,
                         const std::function<void(size_t index,
                                                  size_t worker)> &body);

    std::vector<std::thread> workers_;
    std::deque<std::function<void(size_t)>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    /** Direct parallelFor() calls currently fanned out on this pool. */
    std::atomic<size_t> inFlightLoops_{0};
    std::shared_ptr<RunnerState> runnerState_;
    /** The Gemm runner this pool installed, or nullptr. */
    std::shared_ptr<const Gemm::ParallelRunner> gemmRunner_;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_THREAD_POOL_H
