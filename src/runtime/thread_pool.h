/**
 * @file
 * A fixed-size worker-thread pool.
 *
 * Deliberately simple — a mutex-guarded task queue, no work stealing —
 * because the workloads it serves (one task per attention head, a handful
 * of heads per layer) are coarse enough that queue contention is noise.
 * What the rest of the runtime relies on is the dense worker numbering:
 * every task body receives the index of the worker executing it, in
 * [0, size()), which is how MultiHeadAttention hands each thread its own
 * AttentionContext without locks or thread-local state.
 */

#ifndef VITALITY_RUNTIME_THREAD_POOL_H
#define VITALITY_RUNTIME_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vitality {

/** Fixed pool of worker threads with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 means hardware_concurrency()
     * (at least 1).
     */
    explicit ThreadPool(size_t num_threads = 0);

    /** Drains nothing: pending tasks are completed before joining. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Enqueue a task; returns immediately. The task receives the index of
     * the worker that runs it. There is no completion handle — use
     * parallelFor() when the caller must wait.
     */
    void submit(std::function<void(size_t worker)> task);

    /**
     * Run body(index, worker) for every index in [begin, end) across the
     * pool and block until all complete. Indices are handed out through a
     * shared counter, so an expensive index does not stall the others.
     * The first exception thrown by any body is rethrown on the calling
     * thread after the loop drains.
     *
     * Must not be called from a pool worker (the caller blocks on the
     * workers, so nesting would deadlock).
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t index, size_t worker)>
                         &body);

  private:
    void workerLoop(size_t worker);

    std::vector<std::thread> workers_;
    std::deque<std::function<void(size_t)>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace vitality

#endif // VITALITY_RUNTIME_THREAD_POOL_H
