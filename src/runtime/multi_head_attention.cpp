#include "runtime/multi_head_attention.h"

#include <stdexcept>

#include "base/check.h"
#include "base/logging.h"

namespace vitality {

MultiHeadAttention::MultiHeadAttention(AttentionKernelPtr kernel,
                                       size_t heads)
    : kernel_(std::move(kernel)), heads_(heads)
{
    if (!kernel_)
        throw std::invalid_argument("MultiHeadAttention: null kernel");
    if (heads_ == 0)
        throw std::invalid_argument("MultiHeadAttention: zero heads");
}

namespace {

const char *const kConcurrentCall =
    "MultiHeadAttention: concurrent forward on one instance "
    "(per-worker contexts are not shareable; use one instance "
    "per caller)";

} // namespace

void
MultiHeadAttention::checkShapes(const Matrix &q, const Matrix &k,
                                const Matrix &v) const
{
    if (q.cols() != k.cols() || k.cols() != v.cols() ||
        k.rows() != v.rows()) {
        throw std::invalid_argument(
            strfmt("multi-head: packed shape mismatch Q=%s K=%s V=%s",
                   q.shapeStr().c_str(), k.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
    if (q.rows() == 0 || k.rows() == 0) {
        throw std::invalid_argument(
            strfmt("multi-head: empty token dimension Q=%s K=%s",
                   q.shapeStr().c_str(), k.shapeStr().c_str()));
    }
    // cols % heads == 0 with cols > 0 guarantees d_h >= 1, so this is
    // the only way to reach a zero head dimension.
    if (q.cols() == 0) {
        throw std::invalid_argument(
            "multi-head: zero-width packed input (head dim would be 0)");
    }
    if (q.cols() % heads_ != 0) {
        throw std::invalid_argument(
            strfmt("multi-head: %zu columns not divisible by %zu heads",
                   q.cols(), heads_));
    }
}

void
MultiHeadAttention::checkBatchShapes(const Batch &q, const Batch &k,
                                     const Batch &v) const
{
    if (q.size() == 0)
        throw std::invalid_argument("multi-head: empty batch");
    if (q.size() != k.size() || k.size() != v.size()) {
        throw std::invalid_argument(
            strfmt("multi-head: batch size mismatch Q=%zu K=%zu V=%zu",
                   q.size(), k.size(), v.size()));
    }
    // Batch establishes the uniform-shape invariant at construction, but
    // images are handed out mutably; re-validate so a reshaped image
    // fails loudly here rather than corrupting the head slicing.
    for (size_t b = 0; b < q.size(); ++b) {
        checkShapes(q[b], k[b], v[b]);
        if (q[b].rows() != q[0].rows() || q[b].cols() != q[0].cols() ||
            k[b].rows() != k[0].rows()) {
            throw std::invalid_argument(
                strfmt("multi-head: non-uniform batch at image %zu", b));
        }
    }
}

void
MultiHeadAttention::checkRaggedShapes(const RaggedBatch &q,
                                      const RaggedBatch &k,
                                      const RaggedBatch &v) const
{
    if (q.empty())
        throw std::invalid_argument("multi-head: empty ragged batch");
    if (q.size() != k.size() || k.size() != v.size()) {
        throw std::invalid_argument(
            strfmt("multi-head: ragged size mismatch Q=%zu K=%zu V=%zu",
                   q.size(), k.size(), v.size()));
    }
    if (q.cols() != k.cols() || k.cols() != v.cols()) {
        throw std::invalid_argument(
            strfmt("multi-head: ragged width mismatch Q=%s K=%s V=%s",
                   q.shapeStr().c_str(), k.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
    if (q.cols() == 0 || q.cols() % heads_ != 0) {
        throw std::invalid_argument(
            strfmt("multi-head: %zu columns not divisible by %zu heads",
                   q.cols(), heads_));
    }
    // RaggedBatch guarantees >= 1 rows per image; only the K/V row
    // agreement is left to check (q rows may differ, as in the Matrix
    // overload). The offsets are re-derived per work item, so a caller
    // that reshaped a buffer behind the offsets fails here, not there.
    for (size_t b = 0; b < k.size(); ++b) {
        if (k.rowsOf(b) != v.rowsOf(b)) {
            throw std::invalid_argument(
                strfmt("multi-head: ragged K/V rows differ at image "
                       "%zu (%zu vs %zu)",
                       b, k.rowsOf(b), v.rowsOf(b)));
        }
    }
    if (q.buffer().rows() != q.totalRows() ||
        k.buffer().rows() != k.totalRows() ||
        v.buffer().rows() != v.totalRows()) {
        throw std::invalid_argument(
            "multi-head: ragged buffer reshaped behind its offsets");
    }
}

void
MultiHeadAttention::ensureContexts(size_t workers)
{
    std::lock_guard<std::mutex> lock(contextsMutex_);
    while (contexts_.size() < workers)
        contexts_.emplace_back(std::make_unique<AttentionContext>());
}

void
MultiHeadAttention::runHead(AttentionContext &ctx, size_t head,
                            const Matrix &q, const Matrix &k,
                            const Matrix &v, Matrix &out)
{
    runHeadRows(ctx, head, q.rowPtr(0), q.rows(), k.rowPtr(0),
                v.rowPtr(0), k.rows(), q.cols(), out.rowPtr(0));
}

void
MultiHeadAttention::runHeadRows(AttentionContext &ctx, size_t head,
                                const float *q, size_t qRows,
                                const float *k, const float *v,
                                size_t kvRows, size_t packedCols,
                                float *out)
{
    const size_t dh = packedCols / heads_;
    const size_t c0 = head * dh;

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // Gather the head's column slice into contiguous per-head operands.
    auto slice = [&](const float *src, size_t rows) -> Matrix & {
        Matrix &dst = ws.acquire(rows, dh);
        for (size_t r = 0; r < rows; ++r) {
            const float *in = src + r * packedCols + c0;
            float *o = dst.rowPtr(r);
            for (size_t c = 0; c < dh; ++c)
                o[c] = in[c];
        }
        return dst;
    };
    Matrix &qh = slice(q, qRows);
    Matrix &kh = slice(k, kvRows);
    Matrix &vh = slice(v, kvRows);
    Matrix &oh = ws.acquire(qRows, dh);

    kernel_->forwardInto(ctx, qh, kh, vh, oh);

    // Scatter back into the packed output; heads own disjoint column
    // ranges, so concurrent writers never touch the same floats.
    for (size_t r = 0; r < qRows; ++r) {
        const float *in = oh.rowPtr(r);
        float *o = out + r * packedCols + c0;
        for (size_t c = 0; c < dh; ++c)
            o[c] = in[c];
    }
}

void
MultiHeadAttention::runRaggedItem(AttentionContext &ctx, size_t item,
                                  const RaggedBatch &q,
                                  const RaggedBatch &k,
                                  const RaggedBatch &v, RaggedBatch &out)
{
    const size_t image = item / heads_;
    const size_t head = item % heads_;
    runHeadRows(ctx, head, q.rowPtr(image, 0), q.rowsOf(image),
                k.rowPtr(image, 0), v.rowPtr(image, 0), k.rowsOf(image),
                q.cols(), out.rowPtr(image, 0));
}

void
MultiHeadAttention::forwardInto(ThreadPool &pool, const Matrix &q,
                                const Matrix &k, const Matrix &v,
                                Matrix &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkShapes(q, k, v);
    // out is resized before the heads read q/k/v, so aliasing an input
    // would corrupt it mid-flight.
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases an input");
    ensureContexts(pool.size());

    out.resize(q.rows(), q.cols());
    // A single-worker pool buys no overlap; run the heads on the
    // calling thread and skip H queue round-trips. Bitwise-identical:
    // heads write disjoint column ranges either way.
    if (pool.size() == 1) {
        for (size_t head = 0; head < heads_; ++head)
            runHead(*contexts_[0], head, q, k, v, out);
        return;
    }
    pool.parallelFor(0, heads_, [&](size_t head, size_t worker) {
        runHead(*contexts_[worker], head, q, k, v, out);
    });
}

Matrix
MultiHeadAttention::forward(ThreadPool &pool, const Matrix &q,
                            const Matrix &k, const Matrix &v)
{
    Matrix out;
    forwardInto(pool, q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardBatchInto(ThreadPool &pool, const Batch &q,
                                     const Batch &k, const Batch &v,
                                     Batch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkBatchShapes(q, k, v);
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases an input batch");
    ensureContexts(pool.size());

    out.resize(q.size(), q.rows(), q.cols());
    // One work item per (image, head) pair: B x H items keep the pool
    // busy even when H alone is smaller than the worker count. A
    // single-worker pool runs them inline instead (no overlap to buy).
    if (pool.size() == 1) {
        for (size_t item = 0; item < q.size() * heads_; ++item) {
            const size_t image = item / heads_;
            const size_t head = item % heads_;
            runHead(*contexts_[0], head, q[image], k[image], v[image],
                    out[image]);
        }
        return;
    }
    pool.parallelFor(0, q.size() * heads_, [&](size_t item, size_t worker) {
        const size_t image = item / heads_;
        const size_t head = item % heads_;
        runHead(*contexts_[worker], head, q[image], k[image], v[image],
                out[image]);
    });
}

Batch
MultiHeadAttention::forwardBatch(ThreadPool &pool, const Batch &q,
                                 const Batch &k, const Batch &v)
{
    Batch out;
    forwardBatchInto(pool, q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardRaggedInto(ThreadPool &pool,
                                      const RaggedBatch &q,
                                      const RaggedBatch &k,
                                      const RaggedBatch &v,
                                      RaggedBatch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkRaggedShapes(q, k, v);
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases a ragged input");
    ensureContexts(pool.size());

    out.resizeLike(q);
    // One work item per (image, head) pair, exactly like the uniform
    // batch path; only the band lookup differs. A single-worker pool
    // runs them inline (no overlap to buy).
    if (pool.size() == 1) {
        for (size_t item = 0; item < q.size() * heads_; ++item)
            runRaggedItem(*contexts_[0], item, q, k, v, out);
        return;
    }
    pool.parallelFor(0, q.size() * heads_, [&](size_t item, size_t worker) {
        runRaggedItem(*contexts_[worker], item, q, k, v, out);
    });
}

RaggedBatch
MultiHeadAttention::forwardRagged(ThreadPool &pool, const RaggedBatch &q,
                                  const RaggedBatch &k,
                                  const RaggedBatch &v)
{
    RaggedBatch out;
    forwardRaggedInto(pool, q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardSequentialInto(const Matrix &q, const Matrix &k,
                                          const Matrix &v, Matrix &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkShapes(q, k, v);
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases an input");
    out.resize(q.rows(), q.cols());
    for (size_t head = 0; head < heads_; ++head)
        runHead(seqContext_, head, q, k, v, out);
}

Matrix
MultiHeadAttention::forwardSequential(const Matrix &q, const Matrix &k,
                                      const Matrix &v)
{
    Matrix out;
    forwardSequentialInto(q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardBatchSequentialInto(const Batch &q,
                                               const Batch &k,
                                               const Batch &v, Batch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkBatchShapes(q, k, v);
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases an input batch");
    out.resize(q.size(), q.rows(), q.cols());
    for (size_t image = 0; image < q.size(); ++image) {
        for (size_t head = 0; head < heads_; ++head)
            runHead(seqContext_, head, q[image], k[image], v[image],
                    out[image]);
    }
}

Batch
MultiHeadAttention::forwardBatchSequential(const Batch &q, const Batch &k,
                                           const Batch &v)
{
    Batch out;
    forwardBatchSequentialInto(q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardRaggedSequentialInto(const RaggedBatch &q,
                                                const RaggedBatch &k,
                                                const RaggedBatch &v,
                                                RaggedBatch &out)
{
    CallGuard guard(inFlight_, kConcurrentCall);
    checkRaggedShapes(q, k, v);
    VITALITY_CHECK(&out != &q && &out != &k && &out != &v,
                   "multi-head: out aliases a ragged input");
    out.resizeLike(q);
    for (size_t item = 0; item < q.size() * heads_; ++item)
        runRaggedItem(seqContext_, item, q, k, v, out);
}

RaggedBatch
MultiHeadAttention::forwardRaggedSequential(const RaggedBatch &q,
                                            const RaggedBatch &k,
                                            const RaggedBatch &v)
{
    RaggedBatch out;
    forwardRaggedSequentialInto(q, k, v, out);
    return out;
}

OpCounts
MultiHeadAttention::opCounts(size_t n, size_t d_model) const
{
    if (d_model % heads_ != 0) {
        throw std::invalid_argument(
            "multi-head opCounts: d_model not divisible by heads");
    }
    return kernel_->opCounts(n, d_model / heads_) * heads_;
}

} // namespace vitality
