#include "runtime/multi_head_attention.h"

#include <stdexcept>

#include "base/logging.h"

namespace vitality {

MultiHeadAttention::MultiHeadAttention(AttentionKernelPtr kernel,
                                       size_t heads)
    : kernel_(std::move(kernel)), heads_(heads)
{
    if (!kernel_)
        throw std::invalid_argument("MultiHeadAttention: null kernel");
    if (heads_ == 0)
        throw std::invalid_argument("MultiHeadAttention: zero heads");
}

void
MultiHeadAttention::checkShapes(const Matrix &q, const Matrix &k,
                                const Matrix &v) const
{
    if (q.cols() != k.cols() || k.cols() != v.cols() ||
        k.rows() != v.rows()) {
        throw std::invalid_argument(
            strfmt("multi-head: packed shape mismatch Q=%s K=%s V=%s",
                   q.shapeStr().c_str(), k.shapeStr().c_str(),
                   v.shapeStr().c_str()));
    }
    if (q.cols() % heads_ != 0) {
        throw std::invalid_argument(
            strfmt("multi-head: %zu columns not divisible by %zu heads",
                   q.cols(), heads_));
    }
}

void
MultiHeadAttention::runHead(AttentionContext &ctx, size_t head,
                            const Matrix &q, const Matrix &k,
                            const Matrix &v, Matrix &out)
{
    const size_t dh = q.cols() / heads_;
    const size_t c0 = head * dh;

    Workspace &ws = ctx.workspace();
    Workspace::Frame frame(ws);

    // Gather the head's column slice into contiguous per-head operands.
    auto slice = [&](const Matrix &src) -> Matrix & {
        Matrix &dst = ws.acquire(src.rows(), dh);
        for (size_t r = 0; r < src.rows(); ++r) {
            const float *in = src.rowPtr(r) + c0;
            float *o = dst.rowPtr(r);
            for (size_t c = 0; c < dh; ++c)
                o[c] = in[c];
        }
        return dst;
    };
    Matrix &qh = slice(q);
    Matrix &kh = slice(k);
    Matrix &vh = slice(v);
    Matrix &oh = ws.acquire(q.rows(), dh);

    kernel_->forwardInto(ctx, qh, kh, vh, oh);

    // Scatter back into the packed output; heads own disjoint column
    // ranges, so concurrent writers never touch the same floats.
    for (size_t r = 0; r < out.rows(); ++r) {
        const float *in = oh.rowPtr(r);
        float *o = out.rowPtr(r) + c0;
        for (size_t c = 0; c < dh; ++c)
            o[c] = in[c];
    }
}

void
MultiHeadAttention::forwardInto(ThreadPool &pool, const Matrix &q,
                                const Matrix &k, const Matrix &v,
                                Matrix &out)
{
    checkShapes(q, k, v);
    while (contexts_.size() < pool.size())
        contexts_.emplace_back(std::make_unique<AttentionContext>());

    out.resize(q.rows(), q.cols());
    pool.parallelFor(0, heads_, [&](size_t head, size_t worker) {
        runHead(*contexts_[worker], head, q, k, v, out);
    });
}

Matrix
MultiHeadAttention::forward(ThreadPool &pool, const Matrix &q,
                            const Matrix &k, const Matrix &v)
{
    Matrix out;
    forwardInto(pool, q, k, v, out);
    return out;
}

void
MultiHeadAttention::forwardSequentialInto(const Matrix &q, const Matrix &k,
                                          const Matrix &v, Matrix &out)
{
    checkShapes(q, k, v);
    out.resize(q.rows(), q.cols());
    for (size_t head = 0; head < heads_; ++head)
        runHead(seqContext_, head, q, k, v, out);
}

Matrix
MultiHeadAttention::forwardSequential(const Matrix &q, const Matrix &k,
                                      const Matrix &v)
{
    Matrix out;
    forwardSequentialInto(q, k, v, out);
    return out;
}

OpCounts
MultiHeadAttention::opCounts(size_t n, size_t d_model) const
{
    if (d_model % heads_ != 0) {
        throw std::invalid_argument(
            "multi-head opCounts: d_model not divisible by heads");
    }
    return kernel_->opCounts(n, d_model / heads_) * heads_;
}

} // namespace vitality
