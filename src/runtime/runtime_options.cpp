#include "runtime/runtime_options.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "base/logging.h"

namespace vitality {

namespace {

std::optional<size_t>
parseThreads(const char *text)
{
    char *end = nullptr;
    const long parsed = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 0)
        return std::nullopt;
    return static_cast<size_t>(parsed);
}

} // namespace

bool
RuntimeOptions::empty() const
{
    return !gemmBackend && !threads && !epilogueMode && !sparseMode &&
           !quantMode;
}

RuntimeOptions
RuntimeOptions::resolved() const
{
    RuntimeOptions out = *this;
    if (!out.gemmBackend)
        out.gemmBackend = Gemm::active();
    if (!out.threads)
        out.threads = Gemm::maxThreads();
    if (!out.epilogueMode)
        out.epilogueMode = Gemm::epilogueMode();
    if (!out.sparseMode)
        out.sparseMode = sparseExecMode();
    if (!out.quantMode)
        out.quantMode = Gemm::quantMode();
    return out;
}

void
RuntimeOptions::apply() const
{
    // Validate before mutating anything, so a throw leaves the process
    // state untouched rather than half-applied.
    if (gemmBackend && !Gemm::available(*gemmBackend)) {
        throw std::invalid_argument(
            strfmt("RuntimeOptions: backend %s is not available on "
                   "this host",
                   Gemm::backendName(*gemmBackend)));
    }
    if (gemmBackend)
        Gemm::setActive(*gemmBackend);
    if (threads)
        Gemm::setMaxThreads(*threads);
    if (epilogueMode)
        Gemm::setEpilogueMode(*epilogueMode);
    if (sparseMode)
        setSparseExecMode(*sparseMode);
    if (quantMode)
        Gemm::setQuantMode(*quantMode);
}

RuntimeOptions
RuntimeOptions::current()
{
    return RuntimeOptions{}.resolved();
}

RuntimeOptions
RuntimeOptions::fromEnv()
{
    RuntimeOptions out;
    if (const char *env = std::getenv("VITALITY_GEMM"); env && *env)
        out.gemmBackend = Gemm::parseBackend(env);
    if (const char *env = std::getenv("VITALITY_THREADS"); env && *env)
        out.threads = parseThreads(env);
    if (const char *env = std::getenv("VITALITY_EPILOGUE"); env && *env)
        out.epilogueMode = Gemm::parseEpilogueMode(env);
    if (const char *env = std::getenv("VITALITY_SPARSE"); env && *env)
        out.sparseMode = parseSparseExec(env);
    if (const char *env = std::getenv("VITALITY_QUANT"); env && *env)
        out.quantMode = Gemm::parseQuantMode(env);
    return out;
}

std::string
RuntimeOptions::summary() const
{
    std::ostringstream os;
    os << "gemm="
       << (gemmBackend ? Gemm::backendName(*gemmBackend) : "-");
    os << " threads=";
    if (threads)
        os << *threads;
    else
        os << "-";
    os << " epilogue="
       << (epilogueMode ? Gemm::epilogueModeName(*epilogueMode) : "-");
    os << " sparse=" << (sparseMode ? sparseExecName(*sparseMode) : "-");
    os << " quant="
       << (quantMode ? Gemm::quantModeName(*quantMode) : "-");
    return os.str();
}

RuntimeOptions::Scoped::Scoped(const RuntimeOptions &opts)
    : saved_(RuntimeOptions::current())
{
    opts.apply();
}

RuntimeOptions::Scoped::~Scoped()
{
    saved_.apply();
}

} // namespace vitality
