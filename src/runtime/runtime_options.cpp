#include "runtime/runtime_options.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "attention/zoo.h"
#include "base/logging.h"

namespace vitality {

namespace {

std::optional<size_t>
parseThreads(const char *text)
{
    char *end = nullptr;
    const long parsed = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 0)
        return std::nullopt;
    return static_cast<size_t>(parsed);
}

// Token keep-ratio, -1 = not yet resolved from VITALITY_TOKENS. Valid
// values live in (0, 1], so the sentinel is unambiguous. Same lazy
// resolve-once contract as the Gemm knob atomics.
std::atomic<float> g_tokenKeep{-1.0f};

// Per-layer kernel schedule text. A string has no lock-free atomic, so
// this knob is mutex-guarded instead of following the atomic pattern;
// it is read once per plan compile, never on the hot path.
std::mutex g_layersMutex;
bool g_layersResolved = false;
std::string g_layers;

} // namespace

std::optional<float>
parseTokenKeep(const char *text)
{
    if (!text || !*text)
        return std::nullopt;
    char *end = nullptr;
    const float parsed = std::strtof(text, &end);
    if (end == text || *end != '\0' || !(parsed > 0.0f) || parsed > 1.0f)
        return std::nullopt;
    return parsed;
}

float
tokenKeepRatio()
{
    float cur = g_tokenKeep.load(std::memory_order_acquire);
    if (cur < 0.0f) {
        float resolved = 1.0f;
        const char *env = std::getenv("VITALITY_TOKENS");
        if (env && *env) {
            const std::optional<float> wanted = parseTokenKeep(env);
            if (wanted) {
                resolved = *wanted;
            } else {
                warn("VITALITY_TOKENS=%s not recognized (want a keep "
                     "ratio in (0, 1]); keeping every token",
                     env);
            }
        }
        float expected = cur;
        g_tokenKeep.compare_exchange_strong(expected, resolved,
                                            std::memory_order_acq_rel);
        cur = g_tokenKeep.load(std::memory_order_acquire);
    }
    return cur;
}

void
setTokenKeepRatio(float keep)
{
    if (!(keep > 0.0f) || keep > 1.0f) {
        throw std::invalid_argument(
            strfmt("setTokenKeepRatio: keep ratio %g outside (0, 1]",
                   static_cast<double>(keep)));
    }
    g_tokenKeep.store(keep, std::memory_order_release);
}

std::optional<std::string>
parseLayerKernels(const char *text)
{
    if (!text)
        return std::nullopt;
    try {
        (void)parseLayerSchedule(text);
    } catch (const std::invalid_argument &) {
        return std::nullopt;
    }
    return std::string(text);
}

std::string
layerKernelSchedule()
{
    std::lock_guard<std::mutex> lock(g_layersMutex);
    if (!g_layersResolved) {
        g_layersResolved = true;
        const char *env = std::getenv("VITALITY_LAYERS");
        if (env && *env) {
            const std::optional<std::string> wanted =
                parseLayerKernels(env);
            if (wanted) {
                g_layers = *wanted;
            } else {
                warn("VITALITY_LAYERS=%s not recognized (want "
                     "\"kernel:lo-hi,...\", e.g. "
                     "\"taylor:0-7,softmax:8-11\"); running every "
                     "layer on the model's kernel",
                     env);
            }
        }
    }
    return g_layers;
}

void
setLayerKernelSchedule(const std::string &schedule)
{
    // Throws on malformed text before taking the lock.
    (void)parseLayerSchedule(schedule);
    std::lock_guard<std::mutex> lock(g_layersMutex);
    g_layersResolved = true;
    g_layers = schedule;
}

bool
RuntimeOptions::empty() const
{
    return !gemmBackend && !threads && !epilogueMode && !sparseMode &&
           !quantMode && !tokenKeep && !layerKernels;
}

RuntimeOptions
RuntimeOptions::resolved() const
{
    RuntimeOptions out = *this;
    if (!out.gemmBackend)
        out.gemmBackend = Gemm::active();
    if (!out.threads)
        out.threads = Gemm::maxThreads();
    if (!out.epilogueMode)
        out.epilogueMode = Gemm::epilogueMode();
    if (!out.sparseMode)
        out.sparseMode = sparseExecMode();
    if (!out.quantMode)
        out.quantMode = Gemm::quantMode();
    if (!out.tokenKeep)
        out.tokenKeep = tokenKeepRatio();
    if (!out.layerKernels)
        out.layerKernels = layerKernelSchedule();
    return out;
}

void
RuntimeOptions::apply() const
{
    // Validate before mutating anything, so a throw leaves the process
    // state untouched rather than half-applied.
    if (gemmBackend && !Gemm::available(*gemmBackend)) {
        throw std::invalid_argument(
            strfmt("RuntimeOptions: backend %s is not available on "
                   "this host",
                   Gemm::backendName(*gemmBackend)));
    }
    if (tokenKeep && (!(*tokenKeep > 0.0f) || *tokenKeep > 1.0f)) {
        throw std::invalid_argument(
            strfmt("RuntimeOptions: token keep ratio %g outside (0, 1]",
                   static_cast<double>(*tokenKeep)));
    }
    if (layerKernels) {
        try {
            (void)parseLayerSchedule(*layerKernels);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                strfmt("RuntimeOptions: layer schedule: %s", e.what()));
        }
    }
    if (gemmBackend)
        Gemm::setActive(*gemmBackend);
    if (threads)
        Gemm::setMaxThreads(*threads);
    if (epilogueMode)
        Gemm::setEpilogueMode(*epilogueMode);
    if (sparseMode)
        setSparseExecMode(*sparseMode);
    if (quantMode)
        Gemm::setQuantMode(*quantMode);
    if (tokenKeep)
        setTokenKeepRatio(*tokenKeep);
    if (layerKernels)
        setLayerKernelSchedule(*layerKernels);
}

RuntimeOptions
RuntimeOptions::current()
{
    return RuntimeOptions{}.resolved();
}

RuntimeOptions
RuntimeOptions::fromEnv()
{
    RuntimeOptions out;
    if (const char *env = std::getenv("VITALITY_GEMM"); env && *env)
        out.gemmBackend = Gemm::parseBackend(env);
    if (const char *env = std::getenv("VITALITY_THREADS"); env && *env)
        out.threads = parseThreads(env);
    if (const char *env = std::getenv("VITALITY_EPILOGUE"); env && *env)
        out.epilogueMode = Gemm::parseEpilogueMode(env);
    if (const char *env = std::getenv("VITALITY_SPARSE"); env && *env)
        out.sparseMode = parseSparseExec(env);
    if (const char *env = std::getenv("VITALITY_QUANT"); env && *env)
        out.quantMode = Gemm::parseQuantMode(env);
    if (const char *env = std::getenv("VITALITY_TOKENS"); env && *env)
        out.tokenKeep = parseTokenKeep(env);
    if (const char *env = std::getenv("VITALITY_LAYERS"); env && *env)
        out.layerKernels = parseLayerKernels(env);
    return out;
}

std::string
RuntimeOptions::summary() const
{
    std::ostringstream os;
    os << "gemm="
       << (gemmBackend ? Gemm::backendName(*gemmBackend) : "-");
    os << " threads=";
    if (threads)
        os << *threads;
    else
        os << "-";
    os << " epilogue="
       << (epilogueMode ? Gemm::epilogueModeName(*epilogueMode) : "-");
    os << " sparse=" << (sparseMode ? sparseExecName(*sparseMode) : "-");
    os << " quant="
       << (quantMode ? Gemm::quantModeName(*quantMode) : "-");
    os << " tokens=";
    if (tokenKeep)
        os << *tokenKeep;
    else
        os << "-";
    os << " layers=";
    if (layerKernels)
        os << (layerKernels->empty() ? "uniform" : *layerKernels);
    else
        os << "-";
    return os.str();
}

RuntimeOptions::Scoped::Scoped(const RuntimeOptions &opts)
    : saved_(RuntimeOptions::current())
{
    opts.apply();
}

RuntimeOptions::Scoped::~Scoped()
{
    saved_.apply();
}

} // namespace vitality
