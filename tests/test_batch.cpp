/**
 * @file
 * Tensor-layer tests for Batch: construction, the uniform-shape
 * invariant, recycling resize, copy/equality, and seeded factories.
 */

#include <stdexcept>
#include <vector>

#include "base/rng.h"
#include "tensor/batch.h"
#include "testing.h"

using namespace vitality;

namespace {

void
testConstructionAndShape()
{
    const Batch empty;
    T_CHECK(empty.size() == 0 && empty.empty());
    T_CHECK(empty.rows() == 0 && empty.cols() == 0);

    Batch b(3, 5, 7);
    T_CHECK(b.size() == 3 && !b.empty());
    T_CHECK(b.rows() == 5 && b.cols() == 7);
    T_CHECK(b.shapeStr() == "[3 x 5 x 7]");
    for (const Matrix &m : b) {
        T_CHECK(m.rows() == 5 && m.cols() == 7);
        for (size_t i = 0; i < m.size(); ++i)
            T_CHECK(m.data()[i] == 0.0f);
    }

    T_CHECK_THROWS(b.at(3), std::out_of_range);
    b.at(2)(4, 6) = 1.5f;
    T_CHECK(b[2](4, 6) == 1.5f);
}

void
testFromMatricesEnforcesUniformity()
{
    std::vector<Matrix> ok;
    ok.emplace_back(4, 6);
    ok.emplace_back(4, 6);
    const Batch b = Batch::fromMatrices(std::move(ok));
    T_CHECK(b.size() == 2 && b.rows() == 4 && b.cols() == 6);

    std::vector<Matrix> bad;
    bad.emplace_back(4, 6);
    bad.emplace_back(5, 6);
    T_CHECK_THROWS(Batch::fromMatrices(std::move(bad)),
                   std::invalid_argument);

    std::vector<Matrix> bad_cols;
    bad_cols.emplace_back(4, 6);
    bad_cols.emplace_back(4, 7);
    T_CHECK_THROWS(Batch::fromMatrices(std::move(bad_cols)),
                   std::invalid_argument);
}

void
testRandnDeterminism()
{
    Rng a(0xabc1), b(0xabc1), c(0xdef2);
    const Batch ba = Batch::randn(3, 8, 4, a, 0.0f, 1.0f);
    const Batch bb = Batch::randn(3, 8, 4, b, 0.0f, 1.0f);
    const Batch bc = Batch::randn(3, 8, 4, c, 0.0f, 1.0f);
    T_CHECK(ba == bb);
    T_CHECK(ba != bc);
    T_CHECK(ba.allClose(bb, 0.0f));
    // Images within a batch are independent draws, not copies.
    T_CHECK(ba[0] != ba[1]);
}

void
testResizeRecyclesAndCopyFrom()
{
    Batch b(2, 10, 10);
    const float *storage0 = b[0].data();
    // Shrinking reuses each image's buffer (Matrix::resize contract).
    b.resize(2, 5, 8);
    T_CHECK(b.size() == 2 && b.rows() == 5 && b.cols() == 8);
    T_CHECK(b[0].data() == storage0);
    // Growing the image count appends fresh images at the new shape.
    b.resize(4, 5, 8);
    T_CHECK(b.size() == 4);
    T_CHECK(b[3].rows() == 5 && b[3].cols() == 8);
    // Shrinking the image count drops the tail.
    b.resize(1, 5, 8);
    T_CHECK(b.size() == 1);

    Rng rng(0x5151);
    const Batch src = Batch::randn(3, 4, 4, rng);
    Batch dst;
    dst.copyFrom(src);
    T_CHECK(dst == src);
    dst[1](0, 0) += 1.0f;
    T_CHECK(dst != src);
}

void
testEqualityAcrossShapes()
{
    const Batch a(2, 3, 3), b(3, 3, 3), c(2, 4, 3);
    T_CHECK(a != b);
    T_CHECK(a != c);
    T_CHECK(a == Batch(2, 3, 3));
    T_CHECK(!a.allClose(b));
}

} // namespace

int
main()
{
    testConstructionAndShape();
    testFromMatricesEnforcesUniformity();
    testRandnDeterminism();
    testResizeRecyclesAndCopyFrom();
    testEqualityAcrossShapes();
    return vitality::testing::finish("test_batch");
}
