/**
 * @file
 * Steady-state zero-allocation contracts, enforced with the counting
 * operator new/delete replacements in alloc_tracker.cpp.
 *
 * The *Into paths document that after warm-up (first call at a given
 * shape) they perform no heap allocations: every intermediate lives in
 * a recycled Workspace / Batch / CsrMask. This suite turns that
 * comment into a failing test: warm each path twice, then assert an
 * AllocationProbe around a third call observes zero allocations.
 *
 * All encoder runs use ThreadPool(1): the single-worker pool takes
 * parallelFor's inline fast path (no task-closure or loop-state
 * allocations) and installs a width-1 GEMM runner (no band fan-out),
 * so the only remaining allocation sources would be genuine contract
 * violations in the tensor/attention/model layers.
 */

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/vit_encoder.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"

#include "alloc_tracker.h"
#include "testing.h"

using namespace vitality;

namespace {

VitConfig
allocConfig()
{
    VitConfig cfg;
    cfg.name = "alloc-tiny";
    cfg.layers = 2;
    cfg.heads = 2;
    cfg.dModel = 32;
    cfg.tokens = 16;
    cfg.mlpHidden = 64;
    return cfg;
}

/**
 * The whole suite is vacuous if the replacement operators did not
 * actually link in, so first prove the probe sees a plain new/delete.
 */
void
testTrackerObservesAllocations()
{
    testing::AllocationProbe probe;
    // The volatile pointer stops the optimizer from eliding the
    // new/delete pair outright (allowed since C++14).
    int *volatile p = new int(7);
    T_CHECK(probe.allocations() >= 1);
    const uint64_t frees_before = testing::deallocationCount();
    delete p;
    T_CHECK(testing::deallocationCount() > frees_before);

    // Aligned news (Matrix storage is 32B-aligned) are counted too.
    testing::AllocationProbe aligned_probe;
    Matrix m(4, 8);
    T_CHECK(aligned_probe.allocations() >= 1);
    (void)m;
}

/** Every zoo kernel's forwardInto is allocation-free once warm. */
void
testZooForwardIntoAllocationFree()
{
    const size_t n = 24, d = 16;
    Rng rng(0xa110c);
    const Matrix q = Matrix::randn(n, d, rng, 0.0f, 0.5f);
    const Matrix k = Matrix::randn(n, d, rng, 0.0f, 0.5f);
    const Matrix v = Matrix::randn(n, d, rng);

    for (const AttentionKernelPtr &kernel : makeAttentionZoo()) {
        // name() builds a std::string; keep it outside the probe.
        const std::string name = kernel->name();
        AttentionContext ctx;
        Matrix out;
        kernel->forwardInto(ctx, q, k, v, out);
        kernel->forwardInto(ctx, q, k, v, out);

        testing::AllocationProbe probe;
        kernel->forwardInto(ctx, q, k, v, out);
        if (probe.allocations() != 0)
            testing::reportFailure(__FILE__, __LINE__, name.c_str());
    }
}

/** VitEncoder::forwardInto is allocation-free once warm. */
void
testEncoderForwardAllocationFree()
{
    const VitConfig cfg = allocConfig();
    Rng rng(0xa111);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);
    ThreadPool pool(1);

    for (AttentionType type :
         {AttentionType::Softmax, AttentionType::Taylor,
          AttentionType::SangerSparse}) {
        const std::string name = attentionTypeName(type);
        VitEncoder enc(cfg, makeAttention(type));
        Matrix out;
        enc.forwardInto(x, pool, out);
        enc.forwardInto(x, pool, out);

        testing::AllocationProbe probe;
        enc.forwardInto(x, pool, out);
        if (probe.allocations() != 0)
            testing::reportFailure(__FILE__, __LINE__, name.c_str());
    }
}

/** VitEncoder::forwardBatchInto is allocation-free once warm. */
void
testEncoderForwardBatchAllocationFree()
{
    const VitConfig cfg = allocConfig();
    const size_t images = 3;
    Rng rng(0xa112);
    const Batch x =
        Batch::randn(images, cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);
    ThreadPool pool(1);

    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    Batch out;
    enc.forwardBatchInto(x, pool, out);
    enc.forwardBatchInto(x, pool, out);

    testing::AllocationProbe probe;
    enc.forwardBatchInto(x, pool, out);
    T_CHECK(probe.allocations() == 0);
}

/**
 * The ragged path is allocation-free once warm at a lens profile —
 * including with token pruning active, where the pruner's ranking
 * scratch and the shrinking activation structures must all recycle.
 */
void
testEncoderForwardRaggedAllocationFree()
{
    const VitConfig cfg = allocConfig();
    Rng rng(0xa114);
    std::vector<Matrix> imgs;
    imgs.push_back(Matrix::randn(1, cfg.dModel, rng, 0.0f, 0.5f));
    imgs.push_back(Matrix::randn(9, cfg.dModel, rng, 0.0f, 0.5f));
    imgs.push_back(Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f));
    std::vector<const Matrix *> ptrs;
    for (const Matrix &m : imgs)
        ptrs.push_back(&m);
    const RaggedBatch x =
        RaggedBatch::fromMatrices(ptrs.data(), ptrs.size());
    ThreadPool pool(1);

    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    RaggedBatch out;
    enc.forwardRaggedInto(x, pool, out);
    enc.forwardRaggedInto(x, pool, out);

    testing::AllocationProbe probe;
    enc.forwardRaggedInto(x, pool, out);
    T_CHECK(probe.allocations() == 0);

    // Same contract with a pruning schedule engaged.
    VitConfig pruned = allocConfig();
    pruned.tokenKeep = {0.5f, 1.0f};
    VitEncoder encP(pruned, makeAttention(AttentionType::Taylor));
    encP.forwardRaggedInto(x, pool, out);
    encP.forwardRaggedInto(x, pool, out);

    testing::AllocationProbe probeP;
    encP.forwardRaggedInto(x, pool, out);
    T_CHECK(probeP.allocations() == 0);
}

/**
 * The INT8 dense path is allocation-free once warm too: the quantized
 * weight cache is built on the first int8 forward, and the per-call
 * activation quantization writes into recycled thread-local scratch.
 */
void
testEncoderInt8ForwardAllocationFree()
{
    const Gemm::QuantMode prev = Gemm::quantMode();
    Gemm::setQuantMode(Gemm::QuantMode::Int8);

    const VitConfig cfg = allocConfig();
    Rng rng(0xa113);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);
    ThreadPool pool(1);

    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    Matrix out;
    enc.forwardInto(x, pool, out); // builds the int8 weight cache
    enc.forwardInto(x, pool, out);

    testing::AllocationProbe probe;
    enc.forwardInto(x, pool, out);
    T_CHECK(probe.allocations() == 0);

    Gemm::setQuantMode(prev);
}

} // namespace

int
main()
{
    testTrackerObservesAllocations();
    testZooForwardIntoAllocationFree();
    testEncoderForwardAllocationFree();
    testEncoderForwardBatchAllocationFree();
    testEncoderForwardRaggedAllocationFree();
    testEncoderInt8ForwardAllocationFree();
    return vitality::testing::finish("test_alloc");
}
