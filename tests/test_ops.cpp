/**
 * @file
 * Tensor-layer tests: the matmul family against a naive reference,
 * broadcast/reduce shape behaviour, softmax numerical stability, and the
 * *Into variants against their value-returning twins (including slot
 * recycling through a Workspace).
 */

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "base/rng.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"
#include "testing.h"

using namespace vitality;

namespace {

/** Textbook triple loop, the reference all matmul variants must match. */
Matrix
naiveMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.cols(); ++j) {
            float acc = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += a(i, k) * b(k, j);
            c(i, j) = acc;
        }
    return c;
}

void
testMatmulFamily()
{
    Rng rng(0xabc1);
    // Odd sizes straddle the scalar block boundary (64) and the AVX2
    // microkernel panels (6 x 16); whichever backend the dispatcher
    // picked must match the naive reference. test_gemm drives both
    // backends explicitly over a full ragged-shape sweep.
    const Matrix a = Matrix::randn(67, 33, rng);
    const Matrix b = Matrix::randn(33, 71, rng);

    T_CHECK(maxAbsDiff(matmul(a, b), naiveMatmul(a, b)) < 1e-4f);
    T_CHECK(maxAbsDiff(matmulBT(a, transpose(b)), naiveMatmul(a, b)) <
            1e-4f);
    T_CHECK(maxAbsDiff(matmulAT(transpose(a), b), naiveMatmul(a, b)) <
            1e-4f);

    T_CHECK_THROWS(matmul(a, a), std::invalid_argument);
    T_CHECK_THROWS(matmulBT(a, b), std::invalid_argument);
    T_CHECK_THROWS(matmulAT(a, b), std::invalid_argument);

    // dst must not alias an input.
    Matrix c = a;
    T_CHECK_THROWS(matmulInto(c, c, b), std::invalid_argument);
}

void
testBroadcastAndReduceShapes()
{
    const Matrix a = {{1, 2, 3}, {4, 5, 6}};
    const Matrix rowv = {{10, 20, 30}};
    const Matrix colv = {{100}, {200}};

    const Matrix rs = rowSum(a);
    T_CHECK(rs.rows() == 2 && rs.cols() == 1);
    T_CHECK(rs(0, 0) == 6.0f && rs(1, 0) == 15.0f);

    const Matrix cs = colSum(a);
    T_CHECK(cs.rows() == 1 && cs.cols() == 3);
    T_CHECK(cs(0, 0) == 5.0f && cs(0, 2) == 9.0f);

    T_CHECK(rowMean(a)(1, 0) == 5.0f);
    T_CHECK(colMean(a)(0, 1) == 3.5f);

    const Matrix ar = broadcastAddRow(a, rowv);
    T_CHECK(ar(0, 0) == 11.0f && ar(1, 2) == 36.0f);
    const Matrix sr = broadcastSubRow(a, rowv);
    T_CHECK(sr(0, 0) == -9.0f && sr(1, 2) == -24.0f);
    const Matrix ac = broadcastAddCol(a, colv);
    T_CHECK(ac(0, 0) == 101.0f && ac(1, 0) == 204.0f);
    const Matrix dr = divRows(a, colv);
    T_CHECK_CLOSE(dr(1, 2), 0.03f, 1e-7f);

    // Vector-shape mismatches throw.
    T_CHECK_THROWS(broadcastAddRow(a, colv), std::invalid_argument);
    T_CHECK_THROWS(broadcastAddCol(a, rowv), std::invalid_argument);
    T_CHECK_THROWS(divRows(a, rowv), std::invalid_argument);
}

void
testSoftmaxStability()
{
    // Logits far outside float exp range must not overflow to inf/nan.
    const Matrix logits = {{10000.0f, 9999.0f, 0.0f},
                           {-10000.0f, -10000.0f, -10000.0f}};
    const Matrix s = softmaxRows(logits);
    for (size_t r = 0; r < s.rows(); ++r) {
        float sum_r = 0.0f;
        for (size_t c = 0; c < s.cols(); ++c) {
            T_CHECK(std::isfinite(s(r, c)));
            sum_r += s(r, c);
        }
        T_CHECK_CLOSE(sum_r, 1.0f, 1e-5f);
    }
    // Uniform logits give the uniform distribution.
    T_CHECK_CLOSE(s(1, 0), 1.0f / 3.0f, 1e-6f);
    // In-place form matches.
    Matrix t = logits;
    softmaxRowsInto(t, t);
    T_CHECK(t == s);
}

void
testLayerNorm()
{
    Rng rng(0xabc2);
    const Matrix x = Matrix::randn(5, 16, rng, 3.0f, 2.0f);
    const Matrix gamma = Matrix::ones(1, 16);
    const Matrix beta = Matrix::zeros(1, 16);
    const Matrix y = layerNormRows(x, gamma, beta);
    // Every row is standardized.
    for (size_t r = 0; r < y.rows(); ++r) {
        float m = 0.0f, var = 0.0f;
        for (size_t c = 0; c < y.cols(); ++c)
            m += y(r, c);
        m /= 16.0f;
        for (size_t c = 0; c < y.cols(); ++c)
            var += (y(r, c) - m) * (y(r, c) - m);
        var /= 16.0f;
        T_CHECK_CLOSE(m, 0.0f, 1e-5f);
        T_CHECK_CLOSE(var, 1.0f, 1e-3f);
    }
}

void
testIntoVariantsMatchValueTwins()
{
    Rng rng(0xabc3);
    const Matrix a = Matrix::randn(23, 17, rng);
    const Matrix b = Matrix::randn(17, 29, rng);
    const Matrix c = Matrix::randn(23, 17, rng);
    const Matrix rowv = Matrix::randn(1, 17, rng);
    const Matrix colv = Matrix::uniform(23, 1, rng, 0.5f, 2.0f);

    Workspace ws;
    // Two passes through the same workspace: the second recycles every
    // slot, which is exactly the steady state the kernels run in.
    for (int pass = 0; pass < 2; ++pass) {
        Workspace::Frame frame(ws);
        auto &d1 = ws.acquire(1, 1);
        matmulInto(d1, a, b);
        T_CHECK(d1 == matmul(a, b));
        auto &d2 = ws.acquire(1, 1);
        matmulBTInto(d2, a, c);
        T_CHECK(d2 == matmulBT(a, c));
        auto &d3 = ws.acquire(1, 1);
        matmulATInto(d3, a, c);
        T_CHECK(d3 == matmulAT(a, c));
        auto &d4 = ws.acquire(1, 1);
        transposeInto(d4, a);
        T_CHECK(d4 == transpose(a));
        auto &d5 = ws.acquire(1, 1);
        addInto(d5, a, c);
        T_CHECK(d5 == add(a, c));
        subInto(d5, a, c);
        T_CHECK(d5 == sub(a, c));
        hadamardInto(d5, a, c);
        T_CHECK(d5 == hadamard(a, c));
        scaleInto(d5, a, 1.75f);
        T_CHECK(d5 == scale(a, 1.75f));
        addScalarInto(d5, a, -0.25f);
        T_CHECK(d5 == addScalar(a, -0.25f));
        auto &d6 = ws.acquire(1, 1);
        rowSumInto(d6, a);
        T_CHECK(d6 == rowSum(a));
        colSumInto(d6, a);
        T_CHECK(d6 == colSum(a));
        rowMeanInto(d6, a);
        T_CHECK(d6 == rowMean(a));
        colMeanInto(d6, a);
        T_CHECK(d6 == colMean(a));
        broadcastAddRowInto(d5, a, rowv);
        T_CHECK(d5 == broadcastAddRow(a, rowv));
        broadcastSubRowInto(d5, a, rowv);
        T_CHECK(d5 == broadcastSubRow(a, rowv));
        broadcastAddColInto(d5, a, colv);
        T_CHECK(d5 == broadcastAddCol(a, colv));
        scaleRowsInto(d5, a, colv);
        T_CHECK(d5 == scaleRows(a, colv));
        divRowsInto(d5, a, colv);
        T_CHECK(d5 == divRows(a, colv));
        softmaxRowsInto(d5, a);
        T_CHECK(d5 == softmaxRows(a));
        expElemInto(d5, a);
        T_CHECK(d5 == expElem(a));
    }
    // Aliasing the primary input is supported for element-wise forms.
    Matrix inplace = a;
    addInto(inplace, inplace, c);
    T_CHECK(inplace == add(a, c));
}

void
testWorkspaceRecycling()
{
    Workspace ws;
    Matrix *first = nullptr;
    {
        Workspace::Frame frame(ws);
        Matrix &m = ws.acquire(8, 8);
        first = &m;
        T_CHECK(ws.slotsInUse() == 1);
        Matrix &m2 = ws.acquire(4, 4);
        T_CHECK(&m2 != &m);
        T_CHECK(ws.slotsInUse() == 2);
    }
    // Frame rewound: the same slot object comes back, storage retained.
    T_CHECK(ws.slotsInUse() == 0);
    Matrix &again = ws.acquire(6, 6);
    T_CHECK(&again == first);
    T_CHECK(again.rows() == 6 && again.cols() == 6);
    T_CHECK(ws.slotCount() == 2);

    // acquireZeroed really zeroes recycled storage.
    ws.reset();
    ws.acquire(3, 3).fill(7.0f);
    ws.reset();
    const Matrix &z = ws.acquireZeroed(3, 3);
    T_CHECK(maxAbs(z) == 0.0f);
}

void
testGelu()
{
    // geluScalar is the scalar reference the fused GEMM epilogue must
    // reproduce bitwise, so pin its closed form at a few points.
    T_CHECK(geluScalar(0.0f) == 0.0f);
    T_CHECK_CLOSE(geluScalar(10.0f), 10.0f, 1e-4);
    T_CHECK_CLOSE(geluScalar(-10.0f), 0.0f, 1e-4);
    // Published value of tanh-GELU at 1.0, and the reflection identity
    // gelu(x) - gelu(-x) == x (since gelu(x) = x * sigmoid-like(x)).
    T_CHECK_CLOSE(geluScalar(1.0f), 0.841192f, 1e-5);
    for (float x : {-3.0f, -0.7f, 0.3f, 2.5f})
        T_CHECK_CLOSE(geluScalar(x) - geluScalar(-x), x, 1e-5);
    // Against the formula computed independently in double precision.
    for (float x = -4.0f; x <= 4.0f; x += 0.37f) {
        const double pi = 3.14159265358979323846;
        const double inner =
            std::sqrt(2.0 / pi) * (x + 0.044715 * x * x * x);
        const double ref = 0.5 * x * (1.0 + std::tanh(inner));
        T_CHECK_CLOSE(geluScalar(x), ref, 1e-5);
    }

    Rng rng(0x6e1a);
    const Matrix a = Matrix::randn(7, 13, rng);
    const Matrix g = gelu(a);
    T_CHECK(g.rows() == a.rows() && g.cols() == a.cols());
    for (size_t i = 0; i < a.size(); ++i)
        T_CHECK(g.data()[i] == geluScalar(a.data()[i]));

    // The Into form matches its value twin and supports dst == a.
    Matrix into;
    geluInto(into, a);
    T_CHECK(into == g);
    Matrix inplace = a;
    geluInto(inplace, inplace);
    T_CHECK(inplace == g);
}

void
testWorkspaceAlignedAcquire()
{
    Workspace ws;
    Workspace::Frame frame(ws);
    // Packed GEMM panels ride this: every returned pointer must be
    // 32-byte aligned regardless of the requested count, and the whole
    // requested extent must be writable (ASan in CI verifies the
    // latter for real).
    for (size_t count : {1ul, 5ul, 96ul, 197ul * 16, 6ul * 3072}) {
        float *p = ws.acquireAligned(count);
        T_CHECK(reinterpret_cast<uintptr_t>(p) % 32 == 0);
        for (size_t i = 0; i < count; ++i)
            p[i] = static_cast<float>(i);
        T_CHECK(p[0] == 0.0f && p[count - 1] == float(count - 1));
    }
    // Other power-of-two alignments hold too; bad alignments throw.
    T_CHECK(reinterpret_cast<uintptr_t>(ws.acquireAligned(8, 64)) % 64 ==
            0);
    T_CHECK_THROWS(ws.acquireAligned(8, 0), std::invalid_argument);
    T_CHECK_THROWS(ws.acquireAligned(8, 48), std::invalid_argument);
    T_CHECK_THROWS(ws.acquireAligned(8, 2), std::invalid_argument);
}

void
testTranscendentalApprox()
{
    // The documented error bounds (ops.h): tanhApprox <= 4e-7 absolute
    // everywhere; expApprox <= 1e-5 relative on [-87, 87] and <= 6e-7
    // on [-5, 5] (the softmax regime). Dense sweeps against
    // double-precision references.
    double worst_tanh = 0.0;
    for (double x = -12.0; x <= 12.0; x += 1.1e-4) {
        const double err =
            std::fabs((double)tanhApprox((float)x) - std::tanh(x));
        worst_tanh = std::max(worst_tanh, err);
    }
    T_CHECK(worst_tanh <= 4e-7);

    double worst_exp = 0.0, worst_exp_small = 0.0;
    for (double x = -87.0; x <= 87.0; x += 7.9e-4) {
        const double ref = std::exp(x);
        const double err =
            std::fabs((double)expApprox((float)x) - ref) / ref;
        worst_exp = std::max(worst_exp, err);
        if (std::fabs(x) <= 5.0)
            worst_exp_small = std::max(worst_exp_small, err);
    }
    T_CHECK(worst_exp <= 1e-5);
    T_CHECK(worst_exp_small <= 6e-7);

    // Saturation, symmetry-ish edges, and the documented clamp
    // semantics (no NaN propagation, no Inf from overflow).
    T_CHECK(tanhApprox(10.0f) == 1.0f);
    T_CHECK(tanhApprox(-10.0f) == -1.0f);
    T_CHECK(tanhApprox(1e30f) == 1.0f);
    T_CHECK(tanhApprox(-1e30f) == -1.0f);
    T_CHECK(tanhApprox(0.0f) == 0.0f);
    T_CHECK(std::isfinite(expApprox(1e30f)));
    T_CHECK(expApprox(-1e30f) >= 0.0f);
    T_CHECK(std::isfinite(tanhApprox(NAN)));
    T_CHECK(std::isfinite(expApprox(NAN)));

    // geluApproxScalar tracks the exact tanh-GELU within the tanh
    // bound scaled by |x| / 2 (the derivative of the outer form).
    for (double x = -8.0; x <= 8.0; x += 3.3e-4) {
        const double ref = (double)geluScalar((float)x);
        const double err = std::fabs((double)geluApproxScalar((float)x) - ref);
        T_CHECK(err <= 4e-7 * (1.0 + std::fabs(x) / 2.0));
    }

    // The approx softmax is a softmax: rows sum to 1, entries positive,
    // and it tracks the exact softmax closely.
    Rng rng(0x7a94);
    const Matrix a = Matrix::randn(13, 37, rng, 0.0f, 3.0f);
    Matrix approx, exact;
    softmaxRowsApproxInto(approx, a);
    softmaxRowsInto(exact, a);
    for (size_t r = 0; r < a.rows(); ++r) {
        float sum = 0.0f;
        for (size_t c = 0; c < a.cols(); ++c) {
            T_CHECK(approx(r, c) >= 0.0f);
            sum += approx(r, c);
        }
        T_CHECK_CLOSE(sum, 1.0f, 1e-5);
    }
    T_CHECK(maxAbsDiff(approx, exact) <= 1e-5f);

    // Backend independence: when the AVX2 backend is available, the
    // 8-lane row kernel must produce bitwise-identical results to the
    // scalar core (this is what makes predicted masks
    // backend-independent). Ragged widths cover the vector tails.
    if (Gemm::available(Gemm::Backend::Avx2)) {
        const Gemm::Backend before = Gemm::active();
        for (size_t cols : {1ul, 3ul, 7ul, 8ul, 9ul, 31ul, 197ul}) {
            const Matrix m = Matrix::randn(5, cols, rng, 0.0f, 2.0f);
            Matrix va, vs;
            Gemm::setActive(Gemm::Backend::Avx2);
            softmaxRowsApproxInto(va, m);
            const float maxabs_avx2 = maxAbs(m);
            Gemm::setActive(Gemm::Backend::Scalar);
            softmaxRowsApproxInto(vs, m);
            T_CHECK(va == vs);
            T_CHECK(maxabs_avx2 == maxAbs(m));
        }
        Gemm::setActive(before);
    }
}

} // namespace

int
main()
{
    testMatmulFamily();
    testBroadcastAndReduceShapes();
    testSoftmaxStability();
    testLayerNorm();
    testIntoVariantsMatchValueTwins();
    testWorkspaceRecycling();
    testGelu();
    testTranscendentalApprox();
    testWorkspaceAlignedAcquire();
    return vitality::testing::finish("test_ops");
}
