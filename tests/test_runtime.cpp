/**
 * @file
 * Runtime-layer tests: ThreadPool scheduling and exception propagation,
 * MultiHeadAttention's pooled path against both its own sequential
 * reference and a hand-rolled per-head loop over the legacy forward(),
 * the batched (B x heads) dispatch against per-image execution, the
 * concurrent-caller guard, and degenerate-shape rejection.
 */

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "runtime/call_guard.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

void
testThreadPoolRunsEverything()
{
    ThreadPool pool(4);
    T_CHECK(pool.size() == 4);

    std::atomic<int> count{0};
    std::atomic<uint64_t> index_sum{0};
    pool.parallelFor(0, 1000, [&](size_t i, size_t worker) {
        T_CHECK(worker < 4);
        count.fetch_add(1);
        index_sum.fetch_add(i);
    });
    T_CHECK(count.load() == 1000);
    T_CHECK(index_sum.load() == 999ull * 1000 / 2);

    // Empty range is a no-op; more drivers than indices is fine.
    pool.parallelFor(5, 5, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 1000);
    pool.parallelFor(0, 2, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 1002);
}

void
testThreadPoolPropagatesExceptions()
{
    ThreadPool pool(2);
    bool caught = false;
    try {
        pool.parallelFor(0, 64, [&](size_t i, size_t) {
            if (i == 13)
                throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
        caught = true;
    }
    T_CHECK(caught);
    // The pool is still healthy afterwards.
    std::atomic<int> count{0};
    pool.parallelFor(0, 8, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 8);
}

void
testWorkerThreadFlag()
{
    T_CHECK(!ThreadPool::onWorkerThread());
    ThreadPool pool(2);
    std::atomic<int> onWorker{0};
    pool.parallelFor(0, 8, [&](size_t, size_t) {
        if (ThreadPool::onWorkerThread())
            onWorker.fetch_add(1);
    });
    T_CHECK(onWorker.load() == 8);
    T_CHECK(!ThreadPool::onWorkerThread());
}

void
testThreadPoolSingleWorkerInlinePath()
{
    // A single-worker pool runs parallelFor bodies inline on the
    // calling thread (worker index 0), without touching the task
    // queue — the contract tests/test_alloc.cpp's zero-allocation
    // assertions lean on.
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    int ran = 0;
    pool.parallelFor(0, 5, [&](size_t i, size_t worker) {
        T_CHECK(worker == 0);
        T_CHECK(std::this_thread::get_id() == caller);
        T_CHECK(!ThreadPool::onWorkerThread());
        ran += static_cast<int>(i) + 1;
    });
    T_CHECK(ran == 15);

    // Empty range stays a no-op, and exceptions still propagate from
    // the inline path.
    pool.parallelFor(3, 3, [&](size_t, size_t) { ran = -1; });
    T_CHECK(ran == 15);
    T_CHECK_THROWS(pool.parallelFor(0, 4,
                                    [](size_t, size_t) {
                                        throw std::runtime_error("inline");
                                    }),
                   std::runtime_error);

    // A single-index loop takes the same inline path even on a
    // multi-worker pool.
    ThreadPool wide(4);
    bool inline_run = false;
    wide.parallelFor(7, 8, [&](size_t i, size_t worker) {
        T_CHECK(i == 7 && worker == 0);
        inline_run = std::this_thread::get_id() == caller;
    });
    T_CHECK(inline_run);
}

void
testThreadCountOverridePrecedence()
{
    // ThreadPool(0) resolves through Gemm::maxThreads() — the
    // VITALITY_THREADS / setMaxThreads() knob — while explicit
    // constructor counts are never overridden.
    const size_t prevCap = Gemm::maxThreads();
    Gemm::setMaxThreads(3);
    {
        ThreadPool defaulted(0);
        T_CHECK(defaulted.size() == 3);
        ThreadPool explicit_count(2);
        T_CHECK(explicit_count.size() == 2);
    }
    Gemm::setMaxThreads(prevCap);
    {
        ThreadPool defaulted(0);
        T_CHECK(defaulted.size() >= 1);
        if (prevCap > 0)
            T_CHECK(defaulted.size() == prevCap);
    }
}

void
testCallGuardBasics()
{
    std::atomic<bool> busy{false};

    // Entering sets the flag; a second guard on the same flag throws
    // without disturbing the holder; leaving releases it.
    {
        CallGuard guard(busy, "occupied");
        T_CHECK(busy.load());
        T_CHECK_THROWS(CallGuard(busy, "occupied"), std::logic_error);
        T_CHECK(busy.load());
    }
    T_CHECK(!busy.load());

    // Reusable after release, including after a rejected attempt.
    {
        CallGuard guard(busy, "again");
        T_CHECK(busy.load());
    }
    T_CHECK(!busy.load());
}

void
testIntraGemmRowBands()
{
    const size_t prevCap = Gemm::maxThreads();
    {
        ThreadPool pool(4);
        // The first live pool installs itself as the Gemm runner.
        T_CHECK(Gemm::parallelRunner() != nullptr);

        Rng rng(0x99c0);
        // Large enough to clear the size heuristic and band across the
        // pool (when no VITALITY_THREADS cap pins the suite to 1).
        const Matrix a = Matrix::randn(197, 384, rng);
        const Matrix b = Matrix::randn(384, 512, rng);

        Matrix banded;
        Gemm::multiply(banded, a, b);
        // Row bands partition the output; every element is still one
        // ascending-k sum, so any band count is bitwise-identical to
        // the sequential call.
        Gemm::setMaxThreads(1);
        Matrix sequential;
        Gemm::multiply(sequential, a, b);
        Gemm::setMaxThreads(prevCap);
        T_CHECK(banded == sequential);

        // Banding composes with the fused epilogue, still bitwise.
        const Matrix bias = Matrix::randn(1, 512, rng);
        const Matrix init = Matrix::randn(197, 512, rng);
        Gemm::Epilogue ep;
        ep.accumulate = true;
        ep.bias = &bias;
        ep.act = Gemm::Epilogue::Act::Gelu;
        Matrix fusedBanded = init;
        Gemm::multiply(fusedBanded, a, b, Gemm::Trans::None, ep);
        Gemm::setMaxThreads(1);
        Matrix fusedSeq = init;
        Gemm::multiply(fusedSeq, a, b, Gemm::Trans::None, ep);
        Gemm::setMaxThreads(prevCap);
        T_CHECK(fusedBanded == fusedSeq);

        // GEMMs issued from inside a pool task must not fan out again
        // (the runner reports width 1 there): this completing at all
        // proves no nested-parallelFor deadlock, and results match.
        pool.parallelFor(0, 8, [&](size_t, size_t) {
            Matrix c;
            Gemm::multiply(c, a, b);
            T_CHECK(c == sequential);
        });

        // The test-hook cap clamps the advertised width.
        Gemm::setMaxThreads(1);
        T_CHECK(Gemm::parallelWidth() == 1);
        Gemm::setMaxThreads(prevCap);
    }
    // Destruction un-installs the runner; multiplies fall back to
    // sequential execution instead of fanning into a dead pool.
    T_CHECK(Gemm::parallelRunner() == nullptr);
    T_CHECK(Gemm::parallelWidth() == 1);

    // With several pools alive, the newest serves; destroying it hands
    // the role back to the survivor rather than dropping parallelism
    // for the rest of the process.
    {
        ThreadPool outer(2);
        const auto outerRunner = Gemm::parallelRunner();
        T_CHECK(outerRunner != nullptr);
        {
            ThreadPool inner(3);
            T_CHECK(Gemm::parallelRunner() != outerRunner);
        }
        T_CHECK(Gemm::parallelRunner() == outerRunner);
    }
    T_CHECK(Gemm::parallelRunner() == nullptr);
}

void
testMultiHeadMatchesSequentialAndLegacy()
{
    const size_t n = 29, heads = 3, dh = 16, dm = heads * dh;
    Rng rng(0x99a1);
    const Matrix q = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix k = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix v = Matrix::randn(n, dm, rng);

    ThreadPool pool(4);
    for (const AttentionKernelPtr &kernel : makeAttentionZoo()) {
        MultiHeadAttention mha(kernel, heads);

        // Pooled vs sequential: the per-head programs are identical, so
        // the packed outputs are bitwise equal regardless of scheduling.
        const Matrix parallel_out = mha.forward(pool, q, k, v);
        const Matrix sequential_out = mha.forwardSequential(q, k, v);
        T_CHECK(parallel_out == sequential_out);

        // And against a hand-rolled loop over the legacy forward().
        Matrix reference(n, dm);
        for (size_t h = 0; h < heads; ++h) {
            const Matrix zh = kernel->forward(
                q.colRange(h * dh, (h + 1) * dh),
                k.colRange(h * dh, (h + 1) * dh),
                v.colRange(h * dh, (h + 1) * dh));
            for (size_t r = 0; r < n; ++r)
                for (size_t c = 0; c < dh; ++c)
                    reference(r, h * dh + c) = zh(r, c);
        }
        if (maxAbsDiff(parallel_out, reference) > 1e-5f) {
            vitality::testing::reportFailure(__FILE__, __LINE__,
                                             kernel->name().c_str());
        }

        // Aggregate counts are per-head counts scaled by H.
        const OpCounts agg = mha.opCounts(n, dm);
        const OpCounts per_head = kernel->opCounts(n, dh);
        T_CHECK(agg.mul == per_head.mul * heads);
        T_CHECK(agg.add == per_head.add * heads);
        T_CHECK(agg.div == per_head.div * heads);
        T_CHECK(agg.exp == per_head.exp * heads);
    }
}

void
testMultiHeadDeterministicAcrossPoolSizes()
{
    const size_t n = 19, heads = 4, dm = 32;
    Rng rng(0x99b2);
    const Matrix q = Matrix::randn(n, dm, rng);
    const Matrix k = Matrix::randn(n, dm, rng);
    const Matrix v = Matrix::randn(n, dm, rng);

    AttentionKernelPtr kernel = makeAttention(AttentionType::Taylor);
    ThreadPool one(1), many(8);
    MultiHeadAttention mha_one(kernel, heads), mha_many(kernel, heads);
    const Matrix a = mha_one.forward(one, q, k, v);
    const Matrix b = mha_many.forward(many, q, k, v);
    T_CHECK(a == b);

    // Repeated calls on the same instance recycle and stay identical.
    const Matrix c = mha_many.forward(many, q, k, v);
    T_CHECK(b == c);
}

void
testMultiHeadShapeValidation()
{
    ThreadPool pool(2);
    AttentionKernelPtr kernel = makeAttention(AttentionType::Softmax);
    MultiHeadAttention mha(kernel, 3);
    Rng rng(0x99c3);
    const Matrix bad = Matrix::randn(8, 16, rng); // 16 % 3 != 0
    T_CHECK_THROWS(mha.forward(pool, bad, bad, bad),
                   std::invalid_argument);
    T_CHECK_THROWS(MultiHeadAttention(kernel, 0), std::invalid_argument);
    T_CHECK_THROWS(MultiHeadAttention(nullptr, 2), std::invalid_argument);

    // Degenerate packed inputs are rejected loudly instead of silently
    // producing empty output: zero tokens and zero width (d_h = 0 —
    // 0 % heads == 0, so the divisibility check alone would pass it).
    const Matrix no_tokens(0, 12);
    T_CHECK_THROWS(mha.forward(pool, no_tokens, no_tokens, no_tokens),
                   std::invalid_argument);
    const Matrix no_width(8, 0);
    T_CHECK_THROWS(mha.forward(pool, no_width, no_width, no_width),
                   std::invalid_argument);
    // Empty keys with non-empty queries likewise.
    const Matrix good_q = Matrix::randn(8, 12, rng);
    const Matrix no_kv(0, 12);
    T_CHECK_THROWS(mha.forward(pool, good_q, no_kv, no_kv),
                   std::invalid_argument);
}

void
testMultiHeadBatchMatchesPerImage()
{
    const size_t n = 23, heads = 3, dh = 8, dm = heads * dh, images = 4;
    Rng rng(0x99d4);
    const Batch qb = Batch::randn(images, n, dm, rng, 0.0f, 0.5f);
    const Batch kb = Batch::randn(images, n, dm, rng, 0.0f, 0.5f);
    const Batch vb = Batch::randn(images, n, dm, rng);

    ThreadPool pool(4);
    for (AttentionType type :
         {AttentionType::Softmax, AttentionType::Taylor,
          AttentionType::Unified}) {
        MultiHeadAttention mha(makeAttention(type), heads);

        // Batched output is bitwise-identical to B per-image forwards.
        const Batch out = mha.forwardBatch(pool, qb, kb, vb);
        T_CHECK(out.size() == images && out.rows() == n &&
                out.cols() == dm);
        for (size_t b = 0; b < images; ++b) {
            const Matrix ref = mha.forward(pool, qb[b], kb[b], vb[b]);
            T_CHECK(out[b] == ref);
        }

        // And to the sequential batch reference.
        const Batch seq = mha.forwardBatchSequential(qb, kb, vb);
        T_CHECK(out == seq);

        // Recycled rerun stays identical.
        const Batch out2 = mha.forwardBatch(pool, qb, kb, vb);
        T_CHECK(out == out2);
    }
}

void
testMultiHeadBatchShapeValidation()
{
    ThreadPool pool(2);
    MultiHeadAttention mha(makeAttention(AttentionType::Taylor), 2);
    Rng rng(0x99e5);
    const Batch q = Batch::randn(3, 9, 8, rng);
    const Batch k = Batch::randn(2, 9, 8, rng); // batch size mismatch
    T_CHECK_THROWS(mha.forwardBatch(pool, q, k, k),
                   std::invalid_argument);
    const Batch empty;
    T_CHECK_THROWS(mha.forwardBatch(pool, empty, empty, empty),
                   std::invalid_argument);

    // An image reshaped behind the Batch's back is caught on entry.
    Batch broken = Batch::randn(3, 9, 8, rng);
    broken[1].resize(7, 8);
    const Batch v = Batch::randn(3, 9, 8, rng);
    T_CHECK_THROWS(mha.forwardBatch(pool, broken, v, v),
                   std::invalid_argument);
}

/**
 * A kernel whose forwardInto blocks until released, so the test can hold
 * one forward call in flight while probing the concurrent-caller guard.
 */
class BlockingKernel : public AttentionKernel
{
  public:
    AttentionType type() const override { return AttentionType::Softmax; }
    std::string name() const override { return "Blocking"; }

    Matrix forward(const Matrix &, const Matrix &,
                   const Matrix &v) const override
    {
        return v;
    }

    void forwardInto(AttentionContext &, const Matrix &, const Matrix &,
                     const Matrix &v, Matrix &out) const override
    {
        std::unique_lock<std::mutex> lock(m);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
        out.copyFrom(v);
    }

    OpCounts opCounts(size_t, size_t) const override { return {}; }
    std::vector<ProcessorKind> processors() const override { return {}; }

    void waitEntered() const
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return entered; });
    }

    void release() const
    {
        {
            std::lock_guard<std::mutex> lock(m);
            released = true;
        }
        cv.notify_all();
    }

  private:
    mutable std::mutex m;
    mutable std::condition_variable cv;
    mutable bool entered = false;
    mutable bool released = false;
};

void
testMultiHeadRejectsConcurrentCalls()
{
    auto kernel = std::make_shared<BlockingKernel>();
    MultiHeadAttention mha(kernel, 1);
    ThreadPool pool(2);
    Rng rng(0x99f6);
    const Matrix q = Matrix::randn(4, 8, rng);

    // First call parks inside the kernel on a pool worker...
    std::thread first([&] {
        Matrix out;
        mha.forwardInto(pool, q, q, q, out);
    });
    kernel->waitEntered();

    // ...so a second call on the same instance must be refused rather
    // than silently sharing the per-worker contexts.
    Matrix out2;
    T_CHECK_THROWS(mha.forwardInto(pool, q, q, q, out2),
                   std::logic_error);
    T_CHECK_THROWS(mha.forwardSequentialInto(q, q, q, out2),
                   std::logic_error);

    kernel->release();
    first.join();

    // Once the first call drains, the instance is usable again.
    Matrix out3;
    mha.forwardInto(pool, q, q, q, out3);
    T_CHECK(out3 == q);
}

} // namespace

int
main()
{
    testThreadPoolRunsEverything();
    testThreadPoolPropagatesExceptions();
    testWorkerThreadFlag();
    testThreadPoolSingleWorkerInlinePath();
    testThreadCountOverridePrecedence();
    testCallGuardBasics();
    testIntraGemmRowBands();
    testMultiHeadMatchesSequentialAndLegacy();
    testMultiHeadDeterministicAcrossPoolSizes();
    testMultiHeadShapeValidation();
    testMultiHeadBatchMatchesPerImage();
    testMultiHeadBatchShapeValidation();
    testMultiHeadRejectsConcurrentCalls();
    return vitality::testing::finish("test_runtime");
}
