/**
 * @file
 * Runtime-layer tests: ThreadPool scheduling and exception propagation,
 * and MultiHeadAttention's pooled path against both its own sequential
 * reference and a hand-rolled per-head loop over the legacy forward().
 */

#include <atomic>
#include <stdexcept>

#include "attention/zoo.h"
#include "base/rng.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

void
testThreadPoolRunsEverything()
{
    ThreadPool pool(4);
    T_CHECK(pool.size() == 4);

    std::atomic<int> count{0};
    std::atomic<uint64_t> index_sum{0};
    pool.parallelFor(0, 1000, [&](size_t i, size_t worker) {
        T_CHECK(worker < 4);
        count.fetch_add(1);
        index_sum.fetch_add(i);
    });
    T_CHECK(count.load() == 1000);
    T_CHECK(index_sum.load() == 999ull * 1000 / 2);

    // Empty range is a no-op; more drivers than indices is fine.
    pool.parallelFor(5, 5, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 1000);
    pool.parallelFor(0, 2, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 1002);
}

void
testThreadPoolPropagatesExceptions()
{
    ThreadPool pool(2);
    bool caught = false;
    try {
        pool.parallelFor(0, 64, [&](size_t i, size_t) {
            if (i == 13)
                throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
        caught = true;
    }
    T_CHECK(caught);
    // The pool is still healthy afterwards.
    std::atomic<int> count{0};
    pool.parallelFor(0, 8, [&](size_t, size_t) { count.fetch_add(1); });
    T_CHECK(count.load() == 8);
}

void
testMultiHeadMatchesSequentialAndLegacy()
{
    const size_t n = 29, heads = 3, dh = 16, dm = heads * dh;
    Rng rng(0x99a1);
    const Matrix q = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix k = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix v = Matrix::randn(n, dm, rng);

    ThreadPool pool(4);
    for (const AttentionKernelPtr &kernel : makeAttentionZoo()) {
        MultiHeadAttention mha(kernel, heads);

        // Pooled vs sequential: the per-head programs are identical, so
        // the packed outputs are bitwise equal regardless of scheduling.
        const Matrix parallel_out = mha.forward(pool, q, k, v);
        const Matrix sequential_out = mha.forwardSequential(q, k, v);
        T_CHECK(parallel_out == sequential_out);

        // And against a hand-rolled loop over the legacy forward().
        Matrix reference(n, dm);
        for (size_t h = 0; h < heads; ++h) {
            const Matrix zh = kernel->forward(
                q.colRange(h * dh, (h + 1) * dh),
                k.colRange(h * dh, (h + 1) * dh),
                v.colRange(h * dh, (h + 1) * dh));
            for (size_t r = 0; r < n; ++r)
                for (size_t c = 0; c < dh; ++c)
                    reference(r, h * dh + c) = zh(r, c);
        }
        if (maxAbsDiff(parallel_out, reference) > 1e-5f) {
            vitality::testing::reportFailure(__FILE__, __LINE__,
                                             kernel->name().c_str());
        }

        // Aggregate counts are per-head counts scaled by H.
        const OpCounts agg = mha.opCounts(n, dm);
        const OpCounts per_head = kernel->opCounts(n, dh);
        T_CHECK(agg.mul == per_head.mul * heads);
        T_CHECK(agg.add == per_head.add * heads);
        T_CHECK(agg.div == per_head.div * heads);
        T_CHECK(agg.exp == per_head.exp * heads);
    }
}

void
testMultiHeadDeterministicAcrossPoolSizes()
{
    const size_t n = 19, heads = 4, dm = 32;
    Rng rng(0x99b2);
    const Matrix q = Matrix::randn(n, dm, rng);
    const Matrix k = Matrix::randn(n, dm, rng);
    const Matrix v = Matrix::randn(n, dm, rng);

    AttentionKernelPtr kernel = makeAttention(AttentionType::Taylor);
    ThreadPool one(1), many(8);
    MultiHeadAttention mha_one(kernel, heads), mha_many(kernel, heads);
    const Matrix a = mha_one.forward(one, q, k, v);
    const Matrix b = mha_many.forward(many, q, k, v);
    T_CHECK(a == b);

    // Repeated calls on the same instance recycle and stay identical.
    const Matrix c = mha_many.forward(many, q, k, v);
    T_CHECK(b == c);
}

void
testMultiHeadShapeValidation()
{
    ThreadPool pool(2);
    AttentionKernelPtr kernel = makeAttention(AttentionType::Softmax);
    MultiHeadAttention mha(kernel, 3);
    Rng rng(0x99c3);
    const Matrix bad = Matrix::randn(8, 16, rng); // 16 % 3 != 0
    T_CHECK_THROWS(mha.forward(pool, bad, bad, bad),
                   std::invalid_argument);
    T_CHECK_THROWS(MultiHeadAttention(kernel, 0), std::invalid_argument);
    T_CHECK_THROWS(MultiHeadAttention(nullptr, 2), std::invalid_argument);
}

} // namespace

int
main()
{
    testThreadPoolRunsEverything();
    testThreadPoolPropagatesExceptions();
    testMultiHeadMatchesSequentialAndLegacy();
    testMultiHeadDeterministicAcrossPoolSizes();
    testMultiHeadShapeValidation();
    return vitality::testing::finish("test_runtime");
}
