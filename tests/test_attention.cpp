/**
 * @file
 * Attention-layer tests: the unified kernel's decoupling identity at the
 * two ends of the paper's Fig. 15 threshold sweep, Taylor-vs-softmax
 * closeness in the small-logit regime, and forwardInto/forward parity
 * for every kernel in the zoo (with context reuse across shapes).
 */

#include <cmath>

#include "attention/softmax_attention.h"
#include "attention/taylor_attention.h"
#include "attention/unified_attention.h"
#include "attention/zoo.h"
#include "base/rng.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

struct Qkv
{
    Matrix q, k, v;
};

Qkv
randomQkv(size_t n, size_t d, uint64_t seed, float qk_scale = 1.0f)
{
    Rng rng(seed);
    return {Matrix::randn(n, d, rng, 0.0f, qk_scale),
            Matrix::randn(n, d, rng, 0.0f, qk_scale),
            Matrix::randn(n, d, rng)};
}

void
testUnifiedDecouplingIdentity()
{
    const auto [q, k, v] = randomQkv(24, 8, 0x77a1);

    // Threshold 0 keeps every predicted connection (softmax entries are
    // all >= 0): the strong branch restores the full residual and the
    // unified output IS the softmax attention. Mean-centering leaves
    // softmax unchanged (Property 1), so compare against plain softmax.
    UnifiedAttention all_ones(0.0f);
    const auto detailed_ones = all_ones.forwardDetailed(q, k, v);
    T_CHECK(detailed_ones.sparseBranchDensity == 1.0);
    const Matrix softmax_z = SoftmaxAttention().forward(q, k, v);
    T_CHECK(maxAbsDiff(detailed_ones.z, softmax_z) <= 1e-5f);

    // Threshold 1 prunes everything (every softmax entry over n=24 keys
    // is strictly < 1): the strong branch vanishes and the unified
    // output IS the linear Taylor attention.
    UnifiedAttention all_zero(1.0f);
    const auto detailed_zero = all_zero.forwardDetailed(q, k, v);
    T_CHECK(detailed_zero.sparseBranchDensity == 0.0);
    const Matrix taylor_z = TaylorAttention().forward(q, k, v);
    T_CHECK(maxAbsDiff(detailed_zero.z, taylor_z) <= 1e-5f);
}

void
testTaylorTracksSoftmaxOnSmallLogits()
{
    // Mean-centering pushes the query-key similarities into the regime
    // where exp(x) ~ 1 + x, so on moderate inputs the linear Taylor
    // attention should track the softmax baseline closely (the premise
    // of the paper's Section III-B).
    const auto [q, k, v] = randomQkv(32, 16, 0x77b2, 0.5f);
    const Matrix zt = TaylorAttention().forward(q, k, v);
    const Matrix zs = SoftmaxAttention().forward(q, k, v);
    T_CHECK(maxAbsDiff(zt, zs) < 0.25f);
    // And far closer than predicting the mean value everywhere.
    const Matrix vbar = colMean(v);
    float mean_err = 0.0f;
    for (size_t r = 0; r < zs.rows(); ++r)
        for (size_t c = 0; c < zs.cols(); ++c)
            mean_err = std::max(mean_err,
                                std::fabs(zs(r, c) - vbar(0, c)));
    T_CHECK(maxAbsDiff(zt, zs) < mean_err);
}

void
testForwardIntoMatchesForwardAcrossZoo()
{
    for (const AttentionKernelPtr &kernel : makeAttentionZoo()) {
        AttentionContext ctx;
        Matrix out;
        // Two shapes, repeated: the second pass at each shape runs fully
        // recycled, and the shape switch exercises slot resizing.
        const size_t shapes[][2] = {{24, 8}, {37, 16}, {24, 8}};
        uint64_t seed = 0x77c3;
        for (const auto &shape : shapes) {
            const auto [q, k, v] =
                randomQkv(shape[0], shape[1], seed++, 0.5f);
            const Matrix legacy = kernel->forward(q, k, v);
            kernel->forwardInto(ctx, q, k, v, out);
            T_CHECK(out.rows() == legacy.rows() &&
                    out.cols() == legacy.cols());
            if (maxAbsDiff(out, legacy) > 1e-5f) {
                vitality::testing::reportFailure(
                    __FILE__, __LINE__, kernel->name().c_str());
            }
        }
    }
}

void
testTaylorDenominatorGuard()
{
    // With mean-centering disabled, ksum = colSum(K) is nonzero, so a
    // query row can drive t_D = n sqrt(d) + q . ksum to zero or below.
    // K = ones(2, 4) gives ksum = (2, 2, 2, 2); q0 = -0.5 * ones hits
    // t_D = 4 - 4 = 0 exactly, and q1 = -ones lands at -4. Unguarded,
    // the row division would emit Inf/NaN scores.
    const size_t n = 2, d = 4;
    Matrix q(n, d);
    for (size_t c = 0; c < d; ++c) {
        q(0, c) = -0.5f;
        q(1, c) = -1.0f;
    }
    const Matrix k = Matrix::ones(n, d);
    Rng rng(0x77e6);
    const Matrix v = Matrix::randn(n, d, rng);

    const TaylorAttention taylor(/*mean_center=*/false);
    const auto im = taylor.forwardDetailed(q, k, v);
    for (size_t r = 0; r < n; ++r)
        T_CHECK(std::fabs(im.td(r, 0)) >= TaylorAttention::kDenomFloor);
    // The zero row is pushed to +floor; the well-negative row keeps its
    // sign and value (sign-preserving clamp, no 1e6x blow-up).
    T_CHECK(im.td(0, 0) == TaylorAttention::kDenomFloor);
    T_CHECK(im.td(1, 0) == -4.0f);
    for (size_t i = 0; i < im.z.size(); ++i)
        T_CHECK(std::isfinite(im.z.data()[i]));

    // The allocation-free path applies the same guard.
    AttentionContext ctx;
    Matrix out;
    taylor.forwardInto(ctx, q, k, v, out);
    T_CHECK(out == im.z);

    // The explicit weak map shares the guarded denominator.
    const Matrix weak = TaylorAttention::weakAttentionMap(q, k);
    for (size_t i = 0; i < weak.size(); ++i)
        T_CHECK(std::isfinite(weak.data()[i]));

    // Well-conditioned inputs are bitwise unaffected: the clamp only
    // touches the near-zero band, and preserves sign there.
    Matrix td = {{5.0f},
                 {TaylorAttention::kDenomFloor},
                 {-3.0f},
                 {1e-8f},
                 {-1e-8f},
                 {0.0f}};
    TaylorAttention::clampDenominator(td);
    T_CHECK(td(0, 0) == 5.0f);
    T_CHECK(td(1, 0) == TaylorAttention::kDenomFloor);
    T_CHECK(td(2, 0) == -3.0f);
    T_CHECK(td(3, 0) == TaylorAttention::kDenomFloor);
    T_CHECK(td(4, 0) == -TaylorAttention::kDenomFloor);
    T_CHECK(td(5, 0) == TaylorAttention::kDenomFloor);
}

void
testTaylorDenominatorProperty()
{
    // Column sums of mean-centered keys vanish, so the Taylor
    // denominator is n * sqrt(d) for every row (see taylor_attention.h).
    const auto [q, k, v] = randomQkv(20, 8, 0x77d4);
    const auto im = TaylorAttention().forwardDetailed(q, k, v);
    const float expect = 20.0f * std::sqrt(8.0f);
    for (size_t r = 0; r < im.td.rows(); ++r)
        T_CHECK_CLOSE(im.td(r, 0), expect, 0.05f);
}

} // namespace

int
main()
{
    testUnifiedDecouplingIdentity();
    testTaylorTracksSoftmaxOnSmallLogits();
    testForwardIntoMatchesForwardAcrossZoo();
    testTaylorDenominatorProperty();
    testTaylorDenominatorGuard();
    return vitality::testing::finish("test_attention");
}
