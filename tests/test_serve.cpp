/**
 * @file
 * Serving-engine suite: DynamicBatcher policy edges, bitwise identity
 * of served results vs direct forwards (for every zoo kernel),
 * ModelServer registry/error paths, RuntimeOptions resolution, and
 * the zoo kernel-id round-trip.
 *
 * Timing-dependent edges are asserted structurally, not by wall
 * clock: the max-wait test proves a partial batch dispatches at all
 * (a lone request completes — if the window never fired it would hang
 * forever, which the harness would report as a timeout), the burst
 * test proves no dispatched batch ever exceeded maxBatch via the
 * maxBatchObserved stat, and the queue-full test drives submissions
 * until the typed rejection appears rather than assuming a scheduler
 * interleaving.
 */

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/request_batch.h"
#include "model/token_pruner.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "serve/dynamic_batcher.h"
#include "serve/latency_reservoir.h"
#include "serve/model_server.h"
#include "tensor/gemm.h"
#include "testing.h"

using namespace vitality;

namespace {

/** Small config so every-kernel sweeps stay fast on one core. */
VitConfig
tinyConfig()
{
    VitConfig cfg = VitConfig::deitTiny();
    cfg.layers = 2;
    return cfg;
}

Matrix
randomTokens(const VitConfig &cfg, uint64_t seed)
{
    Rng rng(seed);
    return Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f);
}

/**
 * The direct-forward twin of one served request: a single-image ragged
 * forward. This is the reference the serving layer promises bitwise
 * identity against — it honors whatever token-keep schedule is in
 * effect, so the identity assertions below hold unchanged when the
 * suite runs under a VITALITY_TOKENS pruning sweep (the CI keep-ratio
 * legs), where served outputs carry fewer rows than inputs.
 */
Matrix
refForward(VitEncoder &encoder, const Matrix &in, ThreadPool &pool)
{
    const Matrix *ptr = &in;
    const RaggedBatch out =
        encoder.forwardRagged(RaggedBatch::fromMatrices(&ptr, 1), pool);
    Matrix img;
    out.unpackImage(0, img);
    return img;
}

// ---------------------------------------------------------------- zoo

void
testKernelNameRoundTrip()
{
    for (AttentionType type : allAttentionTypes()) {
        const std::string name = kernelName(type);
        T_CHECK(!name.empty());
        const std::optional<AttentionType> back = kernelFromName(name);
        T_CHECK(back && *back == type);
    }
    // Case-insensitive, and unknown text is nullopt not a throw.
    T_CHECK(kernelFromName("taylor") &&
            *kernelFromName("taylor") == AttentionType::Taylor);
    T_CHECK(kernelFromName("SOFTMAX") &&
            *kernelFromName("SOFTMAX") == AttentionType::Softmax);
    T_CHECK(!kernelFromName("does-not-exist"));
    T_CHECK(!kernelFromName(""));
}

void
testMakeAttentionThreshold()
{
    // The threshold overload builds only the sparse-branch kernels.
    T_CHECK(makeAttention(AttentionType::SangerSparse, 0.1f)->type() ==
            AttentionType::SangerSparse);
    T_CHECK(makeAttention(AttentionType::Unified, 0.1f)->type() ==
            AttentionType::Unified);
    T_CHECK_THROWS(makeAttention(AttentionType::Taylor, 0.1f),
                   std::invalid_argument);
    T_CHECK_THROWS(makeAttention(AttentionType::Softmax, 0.1f),
                   std::invalid_argument);
}

// ---------------------------------------------- pack/unpack helpers

void
testPackUnpack()
{
    Rng rng(7);
    std::vector<Matrix> imgs;
    for (int i = 0; i < 3; ++i)
        imgs.push_back(Matrix::randn(4, 5, rng));
    std::vector<const Matrix *> ptrs;
    for (const Matrix &m : imgs)
        ptrs.push_back(&m);

    Batch packed;
    packRequests(packed, ptrs.data(), ptrs.size());
    T_CHECK(packed.size() == 3 && packed.rows() == 4 &&
            packed.cols() == 5);
    for (size_t i = 0; i < 3; ++i)
        T_CHECK(packed[i] == imgs[i]);

    Matrix out;
    unpackImage(packed, 2, out);
    T_CHECK(out == imgs[2]);
    T_CHECK_THROWS(unpackImage(packed, 3, out), std::out_of_range);

    T_CHECK_THROWS(packRequests(packed, ptrs.data(), 0),
                   std::invalid_argument);
    const Matrix odd(4, 6);
    ptrs[1] = &odd;
    T_CHECK_THROWS(packRequests(packed, ptrs.data(), ptrs.size()),
                   std::invalid_argument);
    ptrs[1] = nullptr;
    T_CHECK_THROWS(packRequests(packed, ptrs.data(), ptrs.size()),
                   std::invalid_argument);
}

// ------------------------------------------------ latency reservoir

void
testLatencyReservoir()
{
    LatencyReservoir res(8, 42);
    T_CHECK(res.count() == 0 && res.quantile(0.5) == 0.0);
    for (int i = 1; i <= 8; ++i)
        res.record(i);
    // Below capacity the reservoir holds everything: exact quantiles.
    T_CHECK(res.size() == 8 && res.count() == 8);
    T_CHECK_CLOSE(res.quantile(0.0), 1.0, 1e-12);
    T_CHECK_CLOSE(res.quantile(1.0), 8.0, 1e-12);
    for (int i = 0; i < 1000; ++i)
        res.record(100.0);
    // Past capacity it stays bounded and samples drift to the stream.
    T_CHECK(res.size() == 8 && res.count() == 1008);
    T_CHECK(res.quantile(0.5) > 1.0);
    // Deterministic: same seed, same records, same quantiles.
    LatencyReservoir a(16, 9), b(16, 9);
    for (int i = 0; i < 500; ++i) {
        a.record(i % 37);
        b.record(i % 37);
    }
    T_CHECK_CLOSE(a.quantile(0.95), b.quantile(0.95), 0.0);
    T_CHECK_THROWS(LatencyReservoir(0), std::invalid_argument);
}

// ------------------------------------------------- RuntimeOptions

void
testRuntimeOptionsResolution()
{
    // current() is fully engaged and reflects the process state.
    const RuntimeOptions cur = RuntimeOptions::current();
    T_CHECK(cur.gemmBackend && cur.threads && cur.epilogueMode &&
            cur.sparseMode && cur.quantMode);
    T_CHECK(!cur.empty());
    T_CHECK(*cur.gemmBackend == Gemm::active());

    // resolved() keeps explicit values and fills the rest in.
    RuntimeOptions opts;
    T_CHECK(opts.empty());
    opts.sparseMode = SparseExec::Dense;
    const RuntimeOptions r = opts.resolved();
    T_CHECK(*r.sparseMode == SparseExec::Dense);
    T_CHECK(*r.quantMode == *cur.quantMode);

    // apply() installs engaged fields only; Scoped restores.
    const SparseExec before = sparseExecMode();
    {
        RuntimeOptions pin;
        pin.sparseMode = before == SparseExec::Csr ? SparseExec::Dense
                                                   : SparseExec::Csr;
        RuntimeOptions::Scoped scoped(pin);
        T_CHECK(sparseExecMode() == *pin.sparseMode);
        T_CHECK(Gemm::quantMode() == *cur.quantMode); // untouched
    }
    T_CHECK(sparseExecMode() == before);

    // Nested guards unwind in order.
    {
        RuntimeOptions outer;
        outer.epilogueMode = Gemm::EpilogueMode::Unfused;
        RuntimeOptions::Scoped s1(outer);
        T_CHECK(Gemm::epilogueMode() == Gemm::EpilogueMode::Unfused);
        {
            RuntimeOptions inner;
            inner.epilogueMode = Gemm::EpilogueMode::Fused;
            RuntimeOptions::Scoped s2(inner);
            T_CHECK(Gemm::epilogueMode() == Gemm::EpilogueMode::Fused);
        }
        T_CHECK(Gemm::epilogueMode() == Gemm::EpilogueMode::Unfused);
    }
    T_CHECK(Gemm::epilogueMode() == *cur.epilogueMode);

    // Unavailable backend: apply throws, nothing half-applied.
    if (!Gemm::available(Gemm::Backend::Avx2)) {
        RuntimeOptions bad;
        bad.gemmBackend = Gemm::Backend::Avx2;
        bad.quantMode = Gemm::QuantMode::Int8;
        T_CHECK_THROWS(bad.apply(), std::invalid_argument);
        T_CHECK(Gemm::quantMode() == *cur.quantMode);
    }

    // summary() mentions engaged fields and dashes the rest.
    RuntimeOptions one;
    one.quantMode = Gemm::QuantMode::Int8;
    T_CHECK(one.summary().find("quant=int8") != std::string::npos);
    T_CHECK(one.summary().find("gemm=-") != std::string::npos);
    T_CHECK(RuntimeOptions::fromEnv().summary().size() > 0);
}

void
testParseHelpers()
{
    T_CHECK(Gemm::parseEpilogueMode("fused") ==
            Gemm::EpilogueMode::Fused);
    T_CHECK(Gemm::parseEpilogueMode("unfused") ==
            Gemm::EpilogueMode::Unfused);
    T_CHECK(Gemm::parseEpilogueMode("fast") ==
            Gemm::EpilogueMode::FusedFast);
    T_CHECK(!Gemm::parseEpilogueMode("bogus"));
    T_CHECK(parseSparseExec("csr") == SparseExec::Csr);
    T_CHECK(parseSparseExec("dense") == SparseExec::Dense);
    T_CHECK(!parseSparseExec("bogus"));
}

// ------------------------------------------------- DynamicBatcher

void
testPolicyValidation()
{
    BatchPolicy p;
    p.maxBatch = 0;
    T_CHECK_THROWS(p.validate(), std::invalid_argument);
    p.maxBatch = 8;
    p.queueCapacity = 4; // < maxBatch
    T_CHECK_THROWS(p.validate(), std::invalid_argument);
    p.queueCapacity = 8;
    p.validate(); // does not throw
}

/**
 * The acceptance criterion: a request served through the batcher is
 * bitwise-identical to a direct single-image ragged forward with the
 * same config/kernel/seed — for EVERY kernel in the zoo, and
 * regardless of what the request was batched with.
 */
void
testServedBitwiseIdentity()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    for (AttentionType type : allAttentionTypes()) {
        VitEncoder reference(cfg, makeAttention(type), 0xabc);
        const Matrix in0 = randomTokens(cfg, 11);
        const Matrix in1 = randomTokens(cfg, 22);
        const Matrix want0 = refForward(reference, in0, pool);
        const Matrix want1 = refForward(reference, in1, pool);

        VitEncoder served(cfg, makeAttention(type), 0xabc);
        BatchPolicy policy;
        policy.maxBatch = 4;
        policy.maxWaitMicros = 5000;
        DynamicBatcher batcher(served, pool, policy);
        // Two concurrent requests: they may ride one batch or two.
        std::future<InferenceResponse> f0 = batcher.submit(in0);
        std::future<InferenceResponse> f1 = batcher.submit(in1);
        const InferenceResponse r0 = f0.get();
        const InferenceResponse r1 = f1.get();
        T_CHECK(r0.output == want0);
        T_CHECK(r1.output == want1);
        T_CHECK(r0.requestId != r1.requestId);
        T_CHECK(r0.batchSize >= 1 && r0.batchSize <= 4);
        T_CHECK(r0.totalMs >= r0.computeMs);
        batcher.shutdown();
        const BatcherStats s = batcher.stats();
        T_CHECK(s.submitted == 2 && s.served == 2 && s.errors == 0);
    }
}

/** Max-wait edge: a lone request dispatches as a partial batch. */
void
testMaxWaitFiresPartialBatch()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor));
    BatchPolicy policy;
    policy.maxBatch = 64; // never reachable with one submitter
    policy.maxWaitMicros = 500;
    policy.queueCapacity = 64;
    DynamicBatcher batcher(encoder, pool, policy);
    // If the wait window never fired, this get() would hang (ctest
    // timeout); completing proves the timer path.
    const InferenceResponse r =
        batcher.submit(randomTokens(cfg, 1)).get();
    T_CHECK(r.batchSize == 1);
    const BatcherStats s = batcher.stats();
    T_CHECK(s.batches == 1 && s.maxBatchObserved == 1);
}

/** Burst edge: many queued requests dispatch in <= maxBatch chunks. */
void
testMaxBatchCutoffUnderBurst()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor));
    BatchPolicy policy;
    policy.maxBatch = 3;
    policy.maxWaitMicros = 200000; // only the cutoff ends a window
    policy.queueCapacity = 32;
    DynamicBatcher batcher(encoder, pool, policy);
    const Matrix in = randomTokens(cfg, 2);
    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(batcher.submit(in));
    for (std::future<InferenceResponse> &f : futures) {
        const InferenceResponse r = f.get();
        T_CHECK(r.batchSize >= 1 && r.batchSize <= 3);
    }
    batcher.shutdown();
    const BatcherStats s = batcher.stats();
    T_CHECK(s.served == 10);
    T_CHECK(s.maxBatchObserved <= 3);
    // 10 requests in <=3-sized batches needs at least 4 dispatches.
    T_CHECK(s.batches >= 4);
    T_CHECK(s.queueDepth == 0);
}

/** Queue-full edge: the bounded queue rejects with the typed error. */
void
testQueueFullRejection()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor));
    BatchPolicy policy;
    policy.maxBatch = 2;
    policy.maxWaitMicros = 200000; // slow drain: windows stay open
    policy.queueCapacity = 4;
    DynamicBatcher batcher(encoder, pool, policy);
    const Matrix in = randomTokens(cfg, 3);
    std::vector<std::future<InferenceResponse>> futures;
    bool sawFull = false;
    // The dispatcher drains while we flood, so a fixed submit count
    // can't assert an exact rejection tally; submit until the typed
    // rejection appears (bounded — the encoder can't keep up with a
    // tight submit loop for long).
    for (int i = 0; i < 10000 && !sawFull; ++i) {
        try {
            futures.push_back(batcher.submit(in));
        } catch (const ServeError &e) {
            T_CHECK(e.code() == ServeErrorCode::QueueFull);
            sawFull = true;
        }
    }
    T_CHECK(sawFull);
    const BatcherStats mid = batcher.stats();
    T_CHECK(mid.rejectedFull >= 1);
    // Everything accepted still completes.
    for (std::future<InferenceResponse> &f : futures)
        (void)f.get();
    batcher.shutdown();
    const BatcherStats s = batcher.stats();
    T_CHECK(s.served == futures.size());
    T_CHECK(s.errors == 0);
}

/** Shutdown drains: accepted requests complete, late ones reject. */
void
testShutdownDrainsInFlight()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor));
    BatchPolicy policy;
    policy.maxBatch = 2;
    policy.maxWaitMicros = 100000;
    policy.queueCapacity = 32;
    DynamicBatcher batcher(encoder, pool, policy);
    const Matrix in = randomTokens(cfg, 4);
    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < 7; ++i)
        futures.push_back(batcher.submit(in));
    batcher.shutdown(); // returns only after the queue drained
    for (std::future<InferenceResponse> &f : futures)
        (void)f.get(); // no future was dropped or failed
    const BatcherStats s = batcher.stats();
    T_CHECK(s.served == 7 && s.errors == 0 && s.queueDepth == 0);
    T_CHECK_THROWS(batcher.submit(in), ServeError);
    try {
        batcher.submit(in);
    } catch (const ServeError &e) {
        T_CHECK(e.code() == ServeErrorCode::Stopping);
    }
    batcher.shutdown(); // idempotent
}

void
testSubmitShapeValidation()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(1);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor));
    DynamicBatcher batcher(encoder, pool, BatchPolicy{});
    // Token-count-incompatible inputs get the typed BadRequest at the
    // ingress: too many rows, zero rows, or a wrong embedding width.
    const Matrix tooTall(cfg.tokens + 1, cfg.dModel);
    const Matrix zeroRows(0, cfg.dModel);
    const Matrix wrongCols(cfg.tokens, cfg.dModel + 1);
    for (const Matrix *bad : {&tooTall, &zeroRows, &wrongCols}) {
        try {
            batcher.submit(*bad);
            T_CHECK(false && "submit accepted an incompatible input");
        } catch (const ServeError &e) {
            T_CHECK(e.code() == ServeErrorCode::BadRequest);
        }
    }
    const BatcherStats s = batcher.stats();
    T_CHECK(s.submitted == 0 && s.tokensSubmitted == 0);
    // Fewer rows than the preset is NOT an error — mixed token counts
    // are the point.
    Rng rng(0x51ff);
    const Matrix small = Matrix::randn(3, cfg.dModel, rng);
    (void)batcher.submit(small).get();
    // Pinned options without a gate are a construction error.
    RuntimeOptions pin;
    pin.quantMode = Gemm::QuantMode::Off;
    T_CHECK_THROWS(
        DynamicBatcher(encoder, pool, BatchPolicy{}, pin, nullptr),
        std::invalid_argument);
}

/**
 * Mixed token counts ride one batcher: every request's result equals
 * its own single-image ragged forward (whatever it was batched with),
 * and the token-level stats account for the accepted input rows.
 */
void
testMixedTokenCountServing()
{
    const VitConfig cfg = tinyConfig();
    ThreadPool pool(2);
    VitEncoder reference(cfg, makeAttention(AttentionType::Taylor), 0x9);
    Rng rng(0x3117);
    std::vector<Matrix> inputs;
    const size_t lens[] = {1, 7, cfg.tokens, 3, cfg.tokens};
    size_t totalTokens = 0;
    for (size_t n : lens) {
        inputs.push_back(Matrix::randn(n, cfg.dModel, rng, 0.0f, 1.0f));
        totalTokens += n;
    }
    std::vector<Matrix> wants;
    for (const Matrix &in : inputs)
        wants.push_back(refForward(reference, in, pool));

    VitEncoder served(cfg, makeAttention(AttentionType::Taylor), 0x9);
    BatchPolicy policy;
    policy.maxBatch = 3; // force at least two mixed batches
    policy.maxWaitMicros = 5000;
    DynamicBatcher batcher(served, pool, policy);
    std::vector<std::future<InferenceResponse>> futures;
    for (const Matrix &in : inputs)
        futures.push_back(batcher.submit(in));
    for (size_t i = 0; i < futures.size(); ++i)
        T_CHECK(futures[i].get().output == wants[i]);
    batcher.shutdown();

    const BatcherStats s = batcher.stats();
    T_CHECK(s.served == 5 && s.errors == 0);
    T_CHECK(s.tokensSubmitted == totalTokens);
    T_CHECK(s.tokensServed == totalTokens);
    T_CHECK(s.tokensPerSec > 0.0);
}

// --------------------------------------------------- ModelServer

void
testModelServerRegistryAndRouting()
{
    const VitConfig cfg = tinyConfig();
    ModelServer server(2);

    ModelConfig taylor;
    taylor.preset = cfg;
    taylor.kernel = AttentionType::Taylor;
    taylor.seed = 0x111;
    const std::string kTaylor = server.addModel(taylor);
    T_CHECK(kTaylor == cfg.name + "/Taylor");

    ModelConfig softmax = taylor;
    softmax.kernel = AttentionType::Softmax;
    const std::string kSoftmax = server.addModel(softmax);

    T_CHECK_THROWS(server.addModel(taylor), std::invalid_argument);
    T_CHECK(server.models().size() == 2);

    // Routing: each key reaches its own model (different kernels give
    // different outputs on the same input).
    const Matrix in = randomTokens(cfg, 5);
    const Matrix outT = server.submit(kTaylor, in).get().output;
    const Matrix outS = server.submit(kSoftmax, in).get().output;
    T_CHECK(outT != outS);

    // And each equals its direct-encoder twin, bitwise.
    ThreadPool pool(2);
    VitEncoder ref(cfg, makeAttention(AttentionType::Taylor), 0x111);
    T_CHECK(outT == refForward(ref, in, pool));

    T_CHECK_THROWS(server.submit("nope/Nope", in), ServeError);
    T_CHECK_THROWS(server.stats("nope/Nope"), ServeError);
    const BatcherStats s = server.stats(kTaylor);
    T_CHECK(s.served == 1 && s.submitted == 1);
    T_CHECK(s.p50Ms > 0.0 && s.p99Ms >= s.p50Ms);

    server.shutdown();
    T_CHECK_THROWS(server.submit(kTaylor, in), ServeError);
    T_CHECK_THROWS(server.addModel(softmax), ServeError);
    server.shutdown(); // idempotent
}

void
testModelServerConfigValidation()
{
    const VitConfig cfg = tinyConfig();
    ModelServer server(1);

    // Threshold on a kernel without one.
    ModelConfig bad;
    bad.preset = cfg;
    bad.kernel = AttentionType::Taylor;
    bad.threshold = 0.5f;
    T_CHECK_THROWS(server.addModel(bad), std::invalid_argument);

    // Threshold on a sparse kernel works and serves.
    ModelConfig sparse;
    sparse.preset = cfg;
    sparse.kernel = AttentionType::SangerSparse;
    sparse.threshold = 0.02f;
    const std::string key = server.addModel(sparse);
    const InferenceResponse r =
        server.submit(key, randomTokens(cfg, 6)).get();
    // Under a token-keep sweep the response may carry fewer rows.
    T_CHECK(r.output.rows() >= 1 && r.output.rows() <= cfg.tokens);
    T_CHECK(r.output.cols() == cfg.dModel);

    // Unavailable pinned backend is a registration-time error.
    if (!Gemm::available(Gemm::Backend::Avx2)) {
        ModelConfig pinned;
        pinned.preset = cfg;
        pinned.kernel = AttentionType::Softmax;
        pinned.options.gemmBackend = Gemm::Backend::Avx2;
        T_CHECK_THROWS(server.addModel(pinned), std::invalid_argument);
    }
}

/**
 * Per-model pinned options: a model pinned to the dense sparse path
 * must produce the dense-path result even when the ambient process
 * mode is csr, and the ambient mode must be restored after dispatch.
 */
void
testModelServerPinnedOptions()
{
    const VitConfig cfg = tinyConfig();
    const SparseExec ambient = sparseExecMode();

    // Reference outputs under each forced mode, computed directly.
    ThreadPool pool(2);
    const Matrix in = randomTokens(cfg, 9);
    Matrix wantDense;
    {
        setSparseExecMode(SparseExec::Dense);
        VitEncoder ref(cfg, makeAttention(AttentionType::Unified), 0x7);
        wantDense = refForward(ref, in, pool);
        setSparseExecMode(ambient);
    }

    ModelServer server(2);
    ModelConfig pinned;
    pinned.preset = cfg;
    pinned.kernel = AttentionType::Unified;
    pinned.seed = 0x7;
    pinned.options.sparseMode = SparseExec::Dense;
    const std::string key = server.addModel(pinned);
    const Matrix got = server.submit(key, in).get().output;
    T_CHECK(got == wantDense);
    // Dispatch restored the ambient mode.
    T_CHECK(sparseExecMode() == ambient);
    server.shutdown();
}

/**
 * A model pinned to a token-keep policy prunes exactly per the staged
 * schedule analytics, while the ambient process keep ratio is
 * untouched after dispatch.
 */
void
testModelServerPinnedTokenKeep()
{
    const VitConfig cfg = tinyConfig();
    const float ambient = tokenKeepRatio();

    ModelServer server(2);
    ModelConfig pruned;
    pruned.preset = cfg;
    pruned.kernel = AttentionType::Taylor;
    pruned.options.tokenKeep = 0.5f;
    const std::string key = server.addModel(pruned);

    const Matrix in = randomTokens(cfg, 17);
    const Matrix out = server.submit(key, in).get().output;
    // tinyConfig has 2 layers: the staged schedule prunes once (after
    // layer 0), so the survivors are one keptTokens application.
    std::vector<float> sched;
    TokenPruner::buildSchedule(sched, cfg.layers, 0.5f);
    size_t want = cfg.tokens;
    for (float keep : sched)
        want = TokenPruner::keptTokens(want, keep);
    T_CHECK(want < cfg.tokens); // the policy actually prunes
    T_CHECK(out.rows() == want);
    T_CHECK(tokenKeepRatio() == ambient);
    server.shutdown();
}

/** Concurrent submitters: many threads, one server, no losses. */
void
testConcurrentSubmitStress()
{
    const VitConfig cfg = tinyConfig();
    ModelServer server(2);
    ModelConfig mc;
    mc.preset = cfg;
    mc.kernel = AttentionType::Taylor;
    mc.policy.maxBatch = 4;
    mc.policy.maxWaitMicros = 1000;
    mc.policy.queueCapacity = 128;
    const std::string key = server.addModel(mc);

    ThreadPool refPool(2);
    VitEncoder ref(cfg, makeAttention(AttentionType::Taylor));
    const Matrix in = randomTokens(cfg, 13);
    const Matrix want = refForward(ref, in, refPool);

    constexpr int kThreads = 4, kPerThread = 6;
    std::atomic<int> matches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                const InferenceResponse r =
                    server.submit(key, in).get();
                if (r.output == want)
                    matches.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    T_CHECK(matches.load() == kThreads * kPerThread);
    const BatcherStats s = server.stats(key);
    T_CHECK(s.served == kThreads * kPerThread);
    T_CHECK(s.errors == 0 && s.rejectedFull == 0);
    T_CHECK(s.maxBatchObserved <= 4);
    server.shutdown();
}

} // namespace

int
main()
{
    testKernelNameRoundTrip();
    testMakeAttentionThreshold();
    testPackUnpack();
    testLatencyReservoir();
    testRuntimeOptionsResolution();
    testParseHelpers();
    testPolicyValidation();
    testServedBitwiseIdentity();
    testMaxWaitFiresPartialBatch();
    testMaxBatchCutoffUnderBurst();
    testQueueFullRejection();
    testShutdownDrainsInFlight();
    testSubmitShapeValidation();
    testMixedTokenCountServing();
    testModelServerRegistryAndRouting();
    testModelServerConfigValidation();
    testModelServerPinnedOptions();
    testModelServerPinnedTokenKeep();
    testConcurrentSubmitStress();
    return vitality::testing::finish("test_serve");
}
