/**
 * @file
 * Compiled-plan suite: PackedMatrix / prepacked-GEMM parity, the
 * EncoderPlan compile step, and planned VitEncoder execution.
 *
 * The acceptance-grade assertion lives here: a planned encoder with a
 * uniform schedule is BITWISE-identical to the eager encoder — for
 * every kernel in the zoo, under fp32 and int8 dense stages, with
 * pruning off (keep 1.0) and on (keep 0.5), across the Matrix, Batch,
 * and Ragged forward paths. The prepacked weight panels are the same
 * bytes the per-call pack loop would have produced and the scalar
 * backend runs an unpack-free reference path, so "prepacked" must
 * never mean "different floats".
 *
 * Heterogeneous schedules are cross-checked against ground truth:
 * kernel construction is deterministic, so a Taylor encoder planned
 * with an all-Softmax schedule must match a Softmax encoder built
 * from the same seed exactly.
 */

#include <stdexcept>
#include <vector>

#include "alloc_tracker.h"
#include "attention/zoo.h"
#include "base/rng.h"
#include "model/encoder_plan.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/packed_weights.h"
#include "tensor/quantized_matrix.h"
#include "tensor/ragged_batch.h"
#include "testing.h"

using namespace vitality;

namespace {

/** Restores the quant mode on scope exit. */
struct QuantGuard
{
    Gemm::QuantMode prev = Gemm::quantMode();
    ~QuantGuard() { Gemm::setQuantMode(prev); }
};

VitConfig
planConfig()
{
    VitConfig cfg;
    cfg.name = "plan-tiny";
    cfg.layers = 4;
    cfg.heads = 2;
    cfg.dModel = 32;
    cfg.tokens = 24;
    cfg.mlpHidden = 64;
    return cfg;
}

std::vector<Gemm::Backend>
availableBackends()
{
    std::vector<Gemm::Backend> out{Gemm::Backend::Scalar};
    if (Gemm::available(Gemm::Backend::Avx2))
        out.push_back(Gemm::Backend::Avx2);
    return out;
}

/** Prepacked fp32 GEMM is bitwise-identical to eager on every
 * backend, across epilogues and both bakeable trans forms. */
void
testPackedGemmFp32Parity()
{
    Rng rng(7);
    const size_t m = 13, k = 37, n = 25;
    const Matrix a = Matrix::randn(m, k, rng);
    const Matrix b = Matrix::randn(k, n, rng);
    const Matrix bt = Matrix::randn(n, k, rng); // op(B) via Trans::B
    const Matrix at = Matrix::randn(k, m, rng); // op(A) via Trans::A
    const Matrix bias = Matrix::randn(1, n, rng);
    const Matrix seed = Matrix::randn(m, n, rng);

    PackedMatrix pb;
    pb.packFp32(b);
    PackedMatrix pbt;
    pbt.packFp32(bt, Gemm::Trans::B);
    T_CHECK(pb.hasFp32() && !pb.hasInt8());
    T_CHECK(pb.kDim() == k && pb.nDim() == n);
    T_CHECK(pb.packedBytes() > 0);

    const std::vector<Gemm::Epilogue> epilogues{
        Gemm::Epilogue{}, Gemm::Epilogue::withBias(bias),
        Gemm::Epilogue::withBiasGelu(bias),
        Gemm::Epilogue::accumulateWithBias(bias)};

    for (Gemm::Backend backend : availableBackends()) {
        for (const Gemm::Epilogue &epi : epilogues) {
            Matrix eager = seed, packed = seed;
            Gemm::multiply(eager, a, b, Gemm::Trans::None, epi, backend);
            Gemm::multiply(packed, a, pb, Gemm::Trans::None, epi,
                           backend);
            T_CHECK(eager == packed);
        }
        // op(B) baked at pack time.
        Matrix eager, packed;
        Gemm::multiply(eager, a, bt, Gemm::Trans::B, Gemm::Epilogue{},
                       backend);
        Gemm::multiply(packed, a, pbt, Gemm::Trans::None,
                       Gemm::Epilogue{}, backend);
        T_CHECK(eager == packed);
        // transA against an unbaked pack.
        Gemm::multiply(eager, at, b, Gemm::Trans::A, Gemm::Epilogue{},
                       backend);
        Gemm::multiply(packed, at, pb, Gemm::Trans::A, Gemm::Epilogue{},
                       backend);
        T_CHECK(eager == packed);
    }

    // Inexpressible trans combinations and kind mismatches throw.
    Matrix dst;
    T_CHECK_THROWS(Gemm::multiply(dst, a, pb, Gemm::Trans::B,
                                  Gemm::Epilogue{}),
                   std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(dst, at, pbt, Gemm::Trans::A,
                                  Gemm::Epilogue{}),
                   std::invalid_argument);
    PackedMatrix empty;
    T_CHECK_THROWS(Gemm::multiply(dst, a, empty, Gemm::Trans::None,
                                  Gemm::Epilogue{}),
                   std::invalid_argument);
}

/** Prepacked int8 GEMM (panels + pack-time weight sums) is
 * bitwise-identical to the eager quantized multiply. */
void
testPackedGemmInt8Parity()
{
    Rng rng(11);
    const size_t m = 9, k = 40, n = 21;
    const Matrix a = Matrix::randn(m, k, rng);
    const Matrix b = Matrix::randn(k, n, rng);
    const Matrix bias = Matrix::randn(1, n, rng);

    QuantizedMatrix qa;
    qa.assignActivations(a);
    QuantizedMatrix qb;
    qb.assignWeights(b);

    PackedMatrix pb;
    pb.packInt8(qb);
    T_CHECK(pb.hasInt8() && !pb.hasFp32());

    for (Gemm::Backend backend : availableBackends()) {
        Matrix eager, packed;
        Gemm::multiply(eager, qa, qb, Gemm::Trans::None,
                       Gemm::Epilogue::withBias(bias), backend);
        Gemm::multiply(packed, qa, pb, Gemm::Trans::None,
                       Gemm::Epilogue::withBias(bias), backend);
        T_CHECK(eager == packed);
    }

    // A dual-precision pack must agree on op(B)'s shape, and int8
    // packing is weights-only.
    PackedMatrix dual;
    dual.packFp32(b);
    dual.packInt8(qb);
    T_CHECK(dual.hasFp32() && dual.hasInt8());
    Rng rng2(3);
    const Matrix other = Matrix::randn(k + 1, n, rng2);
    PackedMatrix mismatch;
    mismatch.packFp32(other);
    T_CHECK_THROWS(mismatch.packInt8(qb), std::invalid_argument);
    T_CHECK_THROWS(PackedMatrix().packInt8(qa), std::invalid_argument);
}

/** Run every forward path of an encoder pair and assert bitwise
 * parity between them. */
void
checkEncoderParity(VitEncoder &ref, VitEncoder &planned,
                   ThreadPool &pool)
{
    const VitConfig &cfg = ref.config();
    Rng rng(0xabc);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f);
    T_CHECK(ref.forward(x, pool) == planned.forward(x, pool));

    Batch bx;
    bx.resize(2, cfg.tokens, cfg.dModel);
    bx[0].copyFrom(x);
    bx[1].copyFrom(Matrix::randn(cfg.tokens, cfg.dModel, rng));
    T_CHECK(ref.forwardBatch(bx, pool) == planned.forwardBatch(bx, pool));

    RaggedBatch rx;
    const size_t rows[2] = {cfg.tokens, cfg.tokens - 5};
    rx.resize(rows, 2, cfg.dModel);
    rx.buffer().copyFrom(
        Matrix::randn(rx.totalRows(), cfg.dModel, rng, 0.0f, 1.0f));
    T_CHECK(ref.forwardRagged(rx, pool) ==
            planned.forwardRagged(rx, pool));
}

/** Uniform-schedule planned execution is bitwise-identical to eager
 * for every zoo kernel x {fp32, int8} x keep {1.0, 0.5} x path. */
void
testPlannedEncoderParity()
{
    ThreadPool pool(2);
    for (AttentionType type : allAttentionTypes()) {
        for (const bool int8 : {false, true}) {
            QuantGuard guard;
            Gemm::setQuantMode(int8 ? Gemm::QuantMode::Int8
                                    : Gemm::QuantMode::Off);
            for (const float keep : {1.0f, 0.5f}) {
                const VitConfig cfg = keep < 1.0f
                                          ? planConfig().withTokenKeep(
                                                keep)
                                          : planConfig();
                VitEncoder ref(cfg, makeAttention(type), 42);
                VitEncoder planned(cfg, makeAttention(type), 42);
                PlanOptions opts;
                opts.maxBatch = 2;
                opts.packInt8 = int8;
                planned.compilePlan(opts);
                T_CHECK(planned.plan() != nullptr);
                T_CHECK(planned.plan()->uniform());
                T_CHECK(planned.plan()->hasInt8() == int8);
                checkEncoderParity(ref, planned, pool);
            }
        }
    }
}

/** An all-Softmax schedule over a Taylor encoder computes exactly
 * what a Softmax encoder from the same seed computes. */
void
testHeteroScheduleExecution()
{
    ThreadPool pool(2);
    const VitConfig cfg = planConfig();
    VitEncoder softmax(cfg, makeAttention(AttentionType::Softmax), 42);
    VitEncoder planned(cfg, makeAttention(AttentionType::Taylor), 42);
    PlanOptions opts;
    opts.layerKernels = "softmax:0-3";
    opts.maxBatch = 2;
    planned.compilePlan(opts);
    T_CHECK(!planned.plan()->uniform());
    checkEncoderParity(softmax, planned, pool);

    // A genuinely mixed schedule runs end to end and respects the
    // per-layer specs.
    VitEncoder mixed(cfg, makeAttention(AttentionType::Taylor), 42);
    VitConfig mixedCfg = cfg;
    mixedCfg.layerKernels = "softmax:2-3";
    VitEncoder mixed2(mixedCfg, makeAttention(AttentionType::Taylor),
                      42);
    PlanOptions mixedOpts;
    mixedOpts.layerKernels = "softmax:2-3";
    mixed.compilePlan(mixedOpts);
    mixed2.compilePlan(); // schedule from its config
    T_CHECK(mixed.plan()->spec(0).kernel == AttentionType::Taylor);
    T_CHECK(mixed.plan()->spec(2).kernel == AttentionType::Softmax);
    Rng rng(5);
    const Matrix x = Matrix::randn(cfg.tokens, cfg.dModel, rng);
    T_CHECK(mixed.forward(x, pool) == mixed2.forward(x, pool));

    // clearPlan() returns to eager execution.
    VitEncoder eager(cfg, makeAttention(AttentionType::Taylor), 42);
    mixed.clearPlan();
    T_CHECK(mixed.plan() == nullptr);
    T_CHECK(mixed.forward(x, pool) == eager.forward(x, pool));
}

/** Malformed schedules are rejected everywhere they can enter, and a
 * throwing compile leaves the previous plan attached. */
void
testScheduleValidation()
{
    T_CHECK_THROWS(parseLayerSchedule("taylor"), std::invalid_argument);
    T_CHECK_THROWS(parseLayerSchedule("nope:0-3"),
                   std::invalid_argument);
    T_CHECK_THROWS(parseLayerSchedule("taylor:3-1"),
                   std::invalid_argument);
    T_CHECK_THROWS(parseLayerSchedule("taylor:x"),
                   std::invalid_argument);
    T_CHECK_THROWS(
        expandLayerSchedule("taylor:0-12", 12, AttentionType::Taylor),
        std::invalid_argument);
    T_CHECK_THROWS(expandLayerSchedule("taylor:0-3,softmax:3-5", 12,
                                       AttentionType::Taylor),
                   std::invalid_argument);
    const std::vector<AttentionType> sched = expandLayerSchedule(
        "SOFTMAX:1,linformer:3-4", 6, AttentionType::Taylor);
    T_CHECK(sched[0] == AttentionType::Taylor);
    T_CHECK(sched[1] == AttentionType::Softmax);
    T_CHECK(sched[3] == AttentionType::Linformer);
    T_CHECK(sched[5] == AttentionType::Taylor);

    VitConfig bad = planConfig();
    bad.layerKernels = "softmax:0-99";
    T_CHECK_THROWS(bad.validate(), std::invalid_argument);
    T_CHECK_THROWS(setLayerKernelSchedule("bogus"),
                   std::invalid_argument);
    T_CHECK(!parseLayerKernels("also bogus"));
    T_CHECK(parseLayerKernels("taylor:0-3").has_value());

    const VitConfig cfg = planConfig();
    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    enc.compilePlan();
    const EncoderPlan *before = enc.plan();
    PlanOptions badOpts;
    badOpts.layerKernels = "softmax:0-99";
    T_CHECK_THROWS(enc.compilePlan(badOpts), std::invalid_argument);
    T_CHECK(enc.plan() == before);
    PlanOptions smallTokens;
    smallTokens.maxTokens = cfg.tokens - 1;
    T_CHECK_THROWS(enc.compilePlan(smallTokens), std::invalid_argument);

    // The ambient knob must not veto models shallower than it was
    // written for: a process-global schedule naming layers this config
    // does not have compiles a uniform plan (with a warning) instead
    // of throwing. An engaged-but-empty PlanOptions schedule pins
    // uniform explicitly, shutting the knob out entirely.
    setLayerKernelSchedule("softmax:0-11"); // planConfig has 4 layers
    enc.compilePlan();
    T_CHECK(enc.plan() != nullptr && enc.plan()->uniform());
    setLayerKernelSchedule("softmax:0-3"); // fits: knob applies...
    enc.compilePlan();
    T_CHECK(!enc.plan()->uniform());
    PlanOptions pinned; // ...unless the options pin uniform
    pinned.layerKernels = std::string();
    enc.compilePlan(pinned);
    T_CHECK(enc.plan()->uniform());
    setLayerKernelSchedule("");
}

/** Planned forwardRagged allocates nothing once warm: the workspace
 * was pre-grown at compile time and no per-call packing remains. */
void
testPlannedRaggedZeroAlloc()
{
    const VitConfig cfg = planConfig();
    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    PlanOptions opts;
    opts.maxBatch = 2;
    enc.compilePlan(opts);

    ThreadPool pool(1);
    Rng rng(9);
    RaggedBatch x, out;
    const size_t rows[2] = {cfg.tokens, cfg.tokens - 7};
    x.resize(rows, 2, cfg.dModel);
    x.buffer().copyFrom(
        Matrix::randn(x.totalRows(), cfg.dModel, rng, 0.0f, 1.0f));

    enc.forwardRaggedInto(x, pool, out);
    enc.forwardRaggedInto(x, pool, out);
    testing::AllocationProbe probe;
    enc.forwardRaggedInto(x, pool, out);
    T_CHECK(probe.allocations() == 0);
}

/** Plan introspection: packed byte counts and the summary line. */
void
testPlanIntrospection()
{
    const VitConfig cfg = planConfig();
    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    PlanOptions opts;
    opts.maxBatch = 4;
    opts.packInt8 = true;
    enc.compilePlan(opts);
    const EncoderPlan &plan = *enc.plan();
    T_CHECK(plan.layers() == cfg.layers);
    T_CHECK(plan.maxTokens() == cfg.tokens);
    T_CHECK(plan.maxBatch() == 4);
    // fp32 panels alone hold >= one float per weight element
    // (column-padded to the panel width), per layer: 4 d^2 + 2 d h.
    const size_t weightFloats =
        cfg.layers *
        (4 * cfg.dModel * cfg.dModel + 2 * cfg.dModel * cfg.mlpHidden);
    T_CHECK(plan.packedBytes() >= weightFloats * sizeof(float));
    T_CHECK(plan.workspaceFloats() ==
            4 * cfg.tokens * (6 * cfg.dModel + cfg.mlpHidden));
    T_CHECK(!plan.summary().empty());
}

} // namespace

int
main()
{
    testPackedGemmFp32Parity();
    testPackedGemmInt8Parity();
    testPlannedEncoderParity();
    testHeteroScheduleExecution();
    testScheduleValidation();
    testPlannedRaggedZeroAlloc();
    testPlanIntrospection();
    return vitality::testing::finish("test_plan");
}
