/**
 * @file
 * Model-layer tests: DeiT presets, the DeiT-Tiny encoder end-to-end with
 * both the Taylor and softmax kernels, determinism, allocation-free
 * steady state, and the model-level OpCounts rollup against the per-head
 * counts scaled by heads x layers.
 */

#include <cmath>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

void
testPresets()
{
    const VitConfig tiny = VitConfig::deitTiny();
    T_CHECK(tiny.layers == 12 && tiny.heads == 3 && tiny.dModel == 192);
    T_CHECK(tiny.tokens == 197 && tiny.headDim() == 64);
    T_CHECK(VitConfig::deitSmall().headDim() == 64);
    T_CHECK(VitConfig::deitBase().headDim() == 64);
    T_CHECK(VitConfig::deitBase().mlpHidden == 4 * 768);
    tiny.validate();
}

bool
allFinite(const Matrix &m)
{
    for (size_t i = 0; i < m.size(); ++i) {
        if (!std::isfinite(m.data()[i]))
            return false;
    }
    return true;
}

void
testDeitTinyEndToEnd()
{
    const VitConfig cfg = VitConfig::deitTiny();
    Rng rng(0x3311);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f);
    ThreadPool pool(3);

    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax}) {
        VitEncoder encoder(cfg, makeAttention(type), 0x1234);
        const Matrix y = encoder.forward(x, pool);
        T_CHECK(y.rows() == cfg.tokens && y.cols() == cfg.dModel);
        T_CHECK(allFinite(y));
        // Residual stream: output moves away from the input but is not
        // blown up by 12 layers of randomly initialized blocks.
        T_CHECK(maxAbsDiff(y, x) > 0.0f);
        T_CHECK(maxAbs(y) < 1e3f);

        // Determinism: same seed, same result, including recycled reruns.
        const Matrix y2 = encoder.forward(x, pool);
        T_CHECK(y == y2);
        VitEncoder twin(cfg, makeAttention(type), 0x1234);
        T_CHECK(twin.forward(x, pool) == y);
    }
}

void
testOpCountRollup()
{
    const VitConfig cfg = VitConfig::deitTiny();
    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax,
          AttentionType::Unified}) {
        AttentionKernelPtr kernel = makeAttention(type);
        VitEncoder encoder(cfg, kernel, 0x5678);

        // The attention rollup is exactly per-head counts x H x L.
        const OpCounts per_head =
            kernel->opCounts(cfg.tokens, cfg.headDim());
        const uint64_t hl = cfg.heads * cfg.layers;
        const OpCounts rolled = encoder.attentionOpCounts();
        T_CHECK(rolled.mul == per_head.mul * hl);
        T_CHECK(rolled.add == per_head.add * hl);
        T_CHECK(rolled.div == per_head.div * hl);
        T_CHECK(rolled.exp == per_head.exp * hl);

        // Total = attention + dense, and dense is kernel-independent.
        const OpCounts total = encoder.opCounts();
        T_CHECK(total.mul ==
                rolled.mul + encoder.denseOpCounts().mul);
        T_CHECK(total.flops() > rolled.flops());
    }

    // Paper-scale sanity: Taylor attention at DeiT-Tiny is ~0.09 GFLOPs
    // model-wide vs ~0.36 GFLOPs for softmax (the 4x gap behind the
    // Table I linear-vs-quadratic accounting at n=197, d=64).
    VitEncoder taylor(cfg, makeAttention(AttentionType::Taylor), 1);
    VitEncoder softmax(cfg, makeAttention(AttentionType::Softmax), 1);
    const double t = static_cast<double>(
        taylor.attentionOpCounts().flops());
    const double s = static_cast<double>(
        softmax.attentionOpCounts().flops());
    T_CHECK(s / t > 2.5 && s / t < 6.0);
}

} // namespace

int
main()
{
    testPresets();
    testDeitTinyEndToEnd();
    testOpCountRollup();
    return vitality::testing::finish("test_model");
}
