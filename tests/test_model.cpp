/**
 * @file
 * Model-layer tests: DeiT presets, the DeiT-Tiny encoder end-to-end with
 * both the Taylor and softmax kernels, determinism, allocation-free
 * steady state, and the model-level OpCounts rollup against the per-head
 * counts scaled by heads x layers.
 */

#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

void
testPresets()
{
    const VitConfig tiny = VitConfig::deitTiny();
    T_CHECK(tiny.layers == 12 && tiny.heads == 3 && tiny.dModel == 192);
    T_CHECK(tiny.tokens == 197 && tiny.headDim() == 64);
    T_CHECK(VitConfig::deitSmall().headDim() == 64);
    T_CHECK(VitConfig::deitBase().headDim() == 64);
    T_CHECK(VitConfig::deitBase().mlpHidden == 4 * 768);
    tiny.validate();
}

bool
allFinite(const Matrix &m)
{
    for (size_t i = 0; i < m.size(); ++i) {
        if (!std::isfinite(m.data()[i]))
            return false;
    }
    return true;
}

void
testDeitTinyEndToEnd()
{
    const VitConfig cfg = VitConfig::deitTiny();
    Rng rng(0x3311);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f);
    ThreadPool pool(3);

    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax}) {
        VitEncoder encoder(cfg, makeAttention(type), 0x1234);
        const Matrix y = encoder.forward(x, pool);
        T_CHECK(y.rows() == cfg.tokens && y.cols() == cfg.dModel);
        T_CHECK(allFinite(y));
        // Residual stream: output moves away from the input but is not
        // blown up by 12 layers of randomly initialized blocks.
        T_CHECK(maxAbsDiff(y, x) > 0.0f);
        T_CHECK(maxAbs(y) < 1e3f);

        // Determinism: same seed, same result, including recycled reruns.
        const Matrix y2 = encoder.forward(x, pool);
        T_CHECK(y == y2);
        VitEncoder twin(cfg, makeAttention(type), 0x1234);
        T_CHECK(twin.forward(x, pool) == y);
    }
}

void
testOpCountRollup()
{
    const VitConfig cfg = VitConfig::deitTiny();
    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax,
          AttentionType::Unified}) {
        AttentionKernelPtr kernel = makeAttention(type);
        VitEncoder encoder(cfg, kernel, 0x5678);

        // The attention rollup is exactly per-head counts x H x L.
        const OpCounts per_head =
            kernel->opCounts(cfg.tokens, cfg.headDim());
        const uint64_t hl = cfg.heads * cfg.layers;
        const OpCounts rolled = encoder.attentionOpCounts();
        T_CHECK(rolled.mul == per_head.mul * hl);
        T_CHECK(rolled.add == per_head.add * hl);
        T_CHECK(rolled.div == per_head.div * hl);
        T_CHECK(rolled.exp == per_head.exp * hl);

        // Total = attention + dense, and dense is kernel-independent.
        const OpCounts total = encoder.opCounts();
        T_CHECK(total.mul ==
                rolled.mul + encoder.denseOpCounts().mul);
        T_CHECK(total.flops() > rolled.flops());
    }

    // Paper-scale sanity: Taylor attention at DeiT-Tiny is ~0.09 GFLOPs
    // model-wide vs ~0.36 GFLOPs for softmax (the 4x gap behind the
    // Table I linear-vs-quadratic accounting at n=197, d=64).
    VitEncoder taylor(cfg, makeAttention(AttentionType::Taylor), 1);
    VitEncoder softmax(cfg, makeAttention(AttentionType::Softmax), 1);
    const double t = static_cast<double>(
        taylor.attentionOpCounts().flops());
    const double s = static_cast<double>(
        softmax.attentionOpCounts().flops());
    T_CHECK(s / t > 2.5 && s / t < 6.0);
}

void
testEncoderBatchMatchesPerImage()
{
    // A small config keeps the three-kernel sweep fast while exercising
    // the same code paths as the DeiT presets.
    const VitConfig cfg{"Test-Small", 2, 3, 48, 19, 96, {}, {}};
    cfg.validate();
    Rng rng(0x3422);
    const Batch x = Batch::randn(3, cfg.tokens, cfg.dModel, rng);
    ThreadPool pool(4);

    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax,
          AttentionType::Unified}) {
        VitEncoder encoder(cfg, makeAttention(type), 0x7777);
        const Batch y = encoder.forwardBatch(x, pool);
        T_CHECK(y.size() == x.size() && y.rows() == cfg.tokens &&
                y.cols() == cfg.dModel);
        // Bitwise parity with per-image execution: the per-image float
        // program is shared between the two paths.
        for (size_t b = 0; b < x.size(); ++b)
            T_CHECK(y[b] == encoder.forward(x[b], pool));
        // Recycled rerun stays identical.
        T_CHECK(encoder.forwardBatch(x, pool) == y);
    }

    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor), 0x7777);
    const Batch empty;
    T_CHECK_THROWS(encoder.forwardBatch(empty, pool),
                   std::invalid_argument);
    const Batch wrong = Batch::randn(2, cfg.tokens + 1, cfg.dModel, rng);
    T_CHECK_THROWS(encoder.forwardBatch(wrong, pool),
                   std::invalid_argument);
}

/**
 * A kernel whose forwardInto blocks until released, so the test can hold
 * one encoder forward in flight while probing the concurrent-call guard.
 */
class BlockingKernel : public AttentionKernel
{
  public:
    AttentionType type() const override { return AttentionType::Softmax; }
    std::string name() const override { return "Blocking"; }

    Matrix forward(const Matrix &, const Matrix &,
                   const Matrix &v) const override
    {
        return v;
    }

    void forwardInto(AttentionContext &, const Matrix &, const Matrix &,
                     const Matrix &v, Matrix &out) const override
    {
        std::unique_lock<std::mutex> lock(m);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
        out.copyFrom(v);
    }

    OpCounts opCounts(size_t, size_t) const override { return {}; }
    std::vector<ProcessorKind> processors() const override { return {}; }

    void waitEntered() const
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return entered; });
    }

    void release() const
    {
        {
            std::lock_guard<std::mutex> lock(m);
            released = true;
        }
        cv.notify_all();
    }

  private:
    mutable std::mutex m;
    mutable std::condition_variable cv;
    mutable bool entered = false;
    mutable bool released = false;
};

void
testEncoderRejectsConcurrentCalls()
{
    // The encoder's activation buffers are per instance: a second
    // forward while one is in flight must be refused, not silently
    // corrupt them. The blocking kernel parks the first call inside the
    // attention phase of layer 0.
    const VitConfig cfg{"Test-Tiny", 1, 1, 8, 5, 16, {}, {}};
    auto kernel = std::make_shared<BlockingKernel>();
    VitEncoder encoder(cfg, kernel, 0x2222);
    ThreadPool pool(2);
    Rng rng(0x3455);
    const Matrix x = Matrix::randn(cfg.tokens, cfg.dModel, rng);
    const Batch xb = Batch::randn(2, cfg.tokens, cfg.dModel, rng);

    std::thread first([&] { (void)encoder.forward(x, pool); });
    kernel->waitEntered();

    Matrix out;
    T_CHECK_THROWS(encoder.forwardInto(x, pool, out), std::logic_error);
    Batch bout;
    T_CHECK_THROWS(encoder.forwardBatchInto(xb, pool, bout),
                   std::logic_error);

    kernel->release();
    first.join();

    // Once the first call drains, the instance is usable again.
    encoder.forwardInto(x, pool, out);
    T_CHECK(out.rows() == cfg.tokens && out.cols() == cfg.dModel);
}

void
testEncoderMatchesUnfusedReference()
{
    // The encoder's dense stages are single fused GEMM calls (bias,
    // GELU, and residual in the write-back). The fused epilogue is
    // documented to be bitwise-identical to the separate op passes, so
    // a hand-rolled one-layer reference built from the value ops must
    // match the encoder output exactly.
    const VitConfig cfg{"Test-1L", 1, 2, 16, 9, 32, {}, {}};
    cfg.validate();
    Rng rng(0x34aa);
    const Matrix x = Matrix::randn(cfg.tokens, cfg.dModel, rng);
    ThreadPool pool(2);

    // The bitwise contract below is between the fused write-back and
    // the exact-GELU op sequence; the fast mode swaps the GELU and
    // the int8 mode swaps the whole dense arithmetic by design, so
    // pin both modes for the duration of this test.
    const Gemm::EpilogueMode modeBefore = Gemm::epilogueMode();
    Gemm::setEpilogueMode(Gemm::EpilogueMode::Fused);
    const Gemm::QuantMode quantBefore = Gemm::quantMode();
    Gemm::setQuantMode(Gemm::QuantMode::Off);

    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor), 0xabc);
    const Matrix y = encoder.forward(x, pool);

    const VitEncoder::LayerWeights &w = encoder.layer(0);
    MultiHeadAttention mha(makeAttention(AttentionType::Taylor),
                           cfg.heads);
    const Matrix normed1 = layerNormRows(x, w.ln1Gamma, w.ln1Beta);
    const Matrix q = broadcastAddRow(matmul(normed1, w.wq), w.bq);
    const Matrix k = broadcastAddRow(matmul(normed1, w.wk), w.bk);
    const Matrix v = broadcastAddRow(matmul(normed1, w.wv), w.bv);
    const Matrix attn = mha.forwardSequential(q, k, v);
    const Matrix xr =
        add(x, broadcastAddRow(matmul(attn, w.wo), w.bo));
    const Matrix normed2 = layerNormRows(xr, w.ln2Gamma, w.ln2Beta);
    const Matrix hidden =
        gelu(broadcastAddRow(matmul(normed2, w.w1), w.b1));
    const Matrix ref =
        add(xr, broadcastAddRow(matmul(hidden, w.w2), w.b2));
    T_CHECK(y == ref);
    Gemm::setEpilogueMode(modeBefore);
    Gemm::setQuantMode(quantBefore);
}

void
testDeitTinyBatchParity()
{
    // One real-preset spot check: DeiT-Tiny, Taylor, B=2.
    const VitConfig cfg = VitConfig::deitTiny();
    Rng rng(0x3433);
    const Batch x = Batch::randn(2, cfg.tokens, cfg.dModel, rng);
    ThreadPool pool(4);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor), 0x1234);
    const Batch y = encoder.forwardBatch(x, pool);
    for (size_t b = 0; b < x.size(); ++b)
        T_CHECK(y[b] == encoder.forward(x[b], pool));
}

} // namespace

int
main()
{
    testPresets();
    testDeitTinyEndToEnd();
    testOpCountRollup();
    testEncoderBatchMatchesPerImage();
    testEncoderRejectsConcurrentCalls();
    testEncoderMatchesUnfusedReference();
    testDeitTinyBatchParity();
    return vitality::testing::finish("test_model");
}
