/**
 * @file
 * Minimal test harness for the ctest suite.
 *
 * Each test executable defines RUN_TESTS(...) with its test functions; a
 * failed check prints its location and expression and marks the process
 * exit code nonzero, but execution continues so one run reports every
 * failure. No external framework: the container image carries none, and
 * assert-style macros are all these tests need.
 */

#ifndef VITALITY_TESTS_TESTING_H
#define VITALITY_TESTS_TESTING_H

#include <atomic>
#include <cmath>
#include <cstdio>

namespace vitality {
namespace testing {

// Atomic because some checks run on ThreadPool workers.
inline std::atomic<int> failures{0};

inline void
reportFailure(const char *file, int line, const char *what)
{
    std::printf("FAIL %s:%d: %s\n", file, line, what);
    failures.fetch_add(1);
}

inline int
finish(const char *suite)
{
    const int n = failures.load();
    if (n == 0) {
        std::printf("%s: all checks passed\n", suite);
        return 0;
    }
    std::printf("%s: %d check(s) FAILED\n", suite, n);
    return 1;
}

} // namespace testing
} // namespace vitality

/** Check a boolean condition. */
#define T_CHECK(cond)                                                       \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vitality::testing::reportFailure(__FILE__, __LINE__, #cond);  \
    } while (0)

/** Check two floats agree within tol. */
#define T_CHECK_CLOSE(a, b, tol)                                            \
    do {                                                                    \
        const double t_a = (a), t_b = (b), t_tol = (tol);                   \
        if (!(std::fabs(t_a - t_b) <= t_tol)) {                             \
            ::vitality::testing::reportFailure(                             \
                __FILE__, __LINE__, #a " !~ " #b);                          \
            std::printf("  lhs=%.9g rhs=%.9g tol=%.3g\n", t_a, t_b,         \
                        t_tol);                                             \
        }                                                                   \
    } while (0)

/** Check that an expression throws ExType. */
#define T_CHECK_THROWS(expr, ExType)                                        \
    do {                                                                    \
        bool t_caught = false;                                              \
        try {                                                               \
            (void)(expr);                                                   \
        } catch (const ExType &) {                                          \
            t_caught = true;                                                \
        }                                                                   \
        if (!t_caught) {                                                    \
            ::vitality::testing::reportFailure(                             \
                __FILE__, __LINE__, #expr " did not throw " #ExType);       \
        }                                                                   \
    } while (0)

#endif // VITALITY_TESTS_TESTING_H
