/**
 * @file
 * Counting replacements for the global operator new/delete family.
 *
 * Linked into test binaries that assert zero-allocation contracts
 * (see alloc_tracker.h). Every variant funnels through one pair of
 * counting helpers; failure behavior matches the standard operators
 * (throwing new raises std::bad_alloc, nothrow new returns nullptr).
 */

#include "alloc_tracker.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};

void *
countedAlloc(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    // malloc(0) may return nullptr; operator new must not.
    return std::malloc(size ? size : 1);
}

void *
countedAlignedAlloc(std::size_t size, std::size_t alignment)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, alignment, size ? size : alignment) != 0)
        return nullptr;
    return p;
}

void
countedFree(void *p)
{
    if (p) {
        g_frees.fetch_add(1, std::memory_order_relaxed);
        std::free(p);
    }
}

} // namespace

namespace vitality {
namespace testing {

uint64_t
allocationCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

uint64_t
deallocationCount()
{
    return g_frees.load(std::memory_order_relaxed);
}

} // namespace testing
} // namespace vitality

void *
operator new(std::size_t size)
{
    void *p = countedAlloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t alignment)
{
    void *p = countedAlignedAlloc(size, static_cast<std::size_t>(alignment));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t alignment)
{
    return operator new(size, alignment);
}

void *
operator new(std::size_t size, std::align_val_t alignment,
             const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void *
operator new[](std::size_t size, std::align_val_t alignment,
               const std::nothrow_t &) noexcept
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void
operator delete(void *p) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}
