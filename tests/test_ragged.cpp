/**
 * @file
 * Ragged-batch suite: RaggedBatch structure/pack/shrink contracts, the
 * ragged MultiHeadAttention fan-out, and the variable-token encoder
 * path with attention-guided token pruning.
 *
 * The two acceptance-grade assertions live here:
 *
 *  - keep = 1.0 parity: VitEncoder::forwardRagged over a uniform-lens
 *    batch is BITWISE-identical, per image, to forwardBatch — for the
 *    Taylor, Softmax, and Unified kernels. This is what lets the
 *    serving layer dispatch everything through the ragged path.
 *  - batch independence: in a mixed {1, 17, n} batch every image's
 *    result is bitwise-identical to a single-image ragged forward of
 *    the same input, so a request's answer never depends on what it
 *    was batched with.
 *
 * Pruning is asserted structurally (surviving row counts match the
 * TokenPruner::keptTokens / buildSchedule analytics exactly) and
 * cross-mode (Unified kernel under dense and csr sparse execution
 * prunes the SAME tokens; values agree loosely, as test_sparse
 * tolerances go).
 */

#include <stdexcept>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/token_pruner.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "runtime/multi_head_attention.h"
#include "runtime/runtime_options.h"
#include "runtime/thread_pool.h"
#include "sparse/csr.h"
#include "tensor/ragged_batch.h"
#include "testing.h"

using namespace vitality;

namespace {

/** Restores the global keep ratio on scope exit (tests must not leak
 * a pruning mode into suites that assume the default). */
struct KeepGuard
{
    float prev = tokenKeepRatio();
    ~KeepGuard() { setTokenKeepRatio(prev); }
};

VitConfig
raggedConfig()
{
    VitConfig cfg;
    cfg.name = "ragged-tiny";
    cfg.layers = 2;
    cfg.heads = 2;
    cfg.dModel = 32;
    cfg.tokens = 19;
    cfg.mlpHidden = 64;
    return cfg;
}

RaggedBatch
randomRagged(const std::vector<size_t> &lens, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Matrix> imgs;
    for (size_t n : lens)
        imgs.push_back(Matrix::randn(n, cols, rng, 0.0f, 0.5f));
    std::vector<const Matrix *> ptrs;
    for (const Matrix &m : imgs)
        ptrs.push_back(&m);
    return RaggedBatch::fromMatrices(ptrs.data(), ptrs.size());
}

// ------------------------------------------------------ structure

void
testStructure()
{
    RaggedBatch rb;
    T_CHECK(rb.empty() && rb.size() == 0 && rb.totalRows() == 0);
    T_CHECK(rb.offsets().empty());

    const size_t lens[] = {1, 17, 5};
    rb.resize(lens, 3, 8);
    T_CHECK(rb.size() == 3 && rb.totalRows() == 23 && rb.cols() == 8);
    T_CHECK(rb.rowsOf(0) == 1 && rb.rowsOf(1) == 17 && rb.rowsOf(2) == 5);
    T_CHECK(rb.offset(0) == 0 && rb.offset(1) == 1 && rb.offset(2) == 18);
    T_CHECK(rb.offsets().size() == 4 && rb.offsets().back() == 23);
    T_CHECK(rb.buffer().rows() == 23 && rb.buffer().cols() == 8);
    T_CHECK(rb.shapeStr() == "[3 x {1,17,5} x 8]");
    // rowPtr(i, r) addresses buffer row offset(i) + r.
    T_CHECK(rb.rowPtr(2, 1) == rb.buffer().rowPtr(19));

    T_CHECK_THROWS(rb.rowsOf(3), std::out_of_range);
    T_CHECK_THROWS(rb.offset(3), std::out_of_range);
    const size_t zeroRow[] = {2, 0};
    T_CHECK_THROWS(rb.resize(zeroRow, 2, 4), std::invalid_argument);
    T_CHECK_THROWS(rb.resize(lens, 0, 4), std::invalid_argument);
    T_CHECK_THROWS(rb.resize(lens, 3, 0), std::invalid_argument);
}

void
testPackUnpackRoundTrip()
{
    Rng rng(0x4a99);
    const Matrix a = Matrix::randn(1, 6, rng);
    const Matrix b = Matrix::randn(9, 6, rng);
    const Matrix c = Matrix::randn(4, 6, rng);
    const Matrix *ptrs[] = {&a, &b, &c};

    RaggedBatch rb = RaggedBatch::fromMatrices(ptrs, 3);
    T_CHECK(rb.size() == 3 && rb.totalRows() == 14 && rb.cols() == 6);
    Matrix out;
    rb.unpackImage(0, out);
    T_CHECK(out == a);
    rb.unpackImage(1, out);
    T_CHECK(out == b);
    rb.unpackImage(2, out);
    T_CHECK(out == c);
    T_CHECK_THROWS(rb.unpackImage(3, out), std::out_of_range);

    // Equality and copyFrom.
    RaggedBatch copy;
    copy.copyFrom(rb);
    T_CHECK(copy == rb && copy.allClose(rb, 0.0f));
    copy.rowPtr(1, 3)[2] += 1.0f;
    T_CHECK(copy != rb);
    RaggedBatch shorter = randomRagged({1, 9}, 6, 1);
    T_CHECK(shorter != rb); // structure mismatch, not a throw

    // A uniform Batch converts losslessly.
    const Batch ub = Batch::randn(2, 5, 6, rng);
    const RaggedBatch urb = RaggedBatch::fromBatch(ub);
    T_CHECK(urb.size() == 2 && urb.rowsOf(0) == 5 && urb.rowsOf(1) == 5);
    urb.unpackImage(1, out);
    T_CHECK(out == ub.at(1));

    // packFrom error paths.
    RaggedBatch dst;
    T_CHECK_THROWS(dst.packFrom(ptrs, 0), std::invalid_argument);
    const Matrix odd(4, 7);
    const Matrix *bad1[] = {&a, &odd};
    T_CHECK_THROWS(dst.packFrom(bad1, 2), std::invalid_argument);
    const Matrix *bad2[] = {&a, nullptr};
    T_CHECK_THROWS(dst.packFrom(bad2, 2), std::invalid_argument);
    const Matrix zero(0, 6);
    const Matrix *bad3[] = {&a, &zero};
    T_CHECK_THROWS(dst.packFrom(bad3, 2), std::invalid_argument);
}

void
testShrinkRows()
{
    RaggedBatch rb = randomRagged({4, 1, 7}, 3, 0x5111);
    const RaggedBatch before = [&] {
        RaggedBatch c;
        c.copyFrom(rb);
        return c;
    }();

    const size_t kept[] = {2, 1, 7};
    rb.shrinkRows(kept);
    T_CHECK(rb.size() == 3 && rb.totalRows() == 10);
    T_CHECK(rb.rowsOf(0) == 2 && rb.rowsOf(1) == 1 && rb.rowsOf(2) == 7);
    // Buffer storage untouched: surviving rows read compacted data,
    // which here (no compaction pass ran) means original buffer rows
    // shifted to the new offsets.
    for (size_t c = 0; c < 3; ++c) {
        T_CHECK(rb.rowPtr(0, 1)[c] == before.rowPtr(0, 1)[c]);
        T_CHECK(rb.rowPtr(1, 0)[c] == before.buffer().rowPtr(2)[c]);
    }

    const size_t zero[] = {0, 1, 7};
    T_CHECK_THROWS(rb.shrinkRows(zero), std::invalid_argument);
    const size_t grow[] = {2, 1, 8};
    T_CHECK_THROWS(rb.shrinkRows(grow), std::invalid_argument);
}

// ------------------------------------------- ragged attention fan-out

/**
 * Ragged MHA over mixed lens (including the n = 1 edge) equals both
 * its own sequential twin and a per-image packed forwardSequential —
 * bitwise, for every kernel in the zoo.
 */
void
testRaggedAttentionParity()
{
    const size_t heads = 2, dh = 8, cols = heads * dh;
    const std::vector<size_t> lens = {1, 17, 6};
    const RaggedBatch q = randomRagged(lens, cols, 0xaa01);
    const RaggedBatch k = randomRagged(lens, cols, 0xaa02);
    const RaggedBatch v = randomRagged(lens, cols, 0xaa03);
    ThreadPool pool(3);

    for (AttentionType type : allAttentionTypes()) {
        MultiHeadAttention mha(makeAttention(type), heads);
        RaggedBatch out, outSeq;
        mha.forwardRaggedInto(pool, q, k, v, out);
        T_CHECK(out.offsets() == q.offsets());
        mha.forwardRaggedSequentialInto(q, k, v, outSeq);
        T_CHECK(out == outSeq);

        // Per-image reference through the uniform packed path.
        Matrix qi, ki, vi, want, got;
        for (size_t i = 0; i < lens.size(); ++i) {
            q.unpackImage(i, qi);
            k.unpackImage(i, ki);
            v.unpackImage(i, vi);
            want = mha.forwardSequential(qi, ki, vi);
            out.unpackImage(i, got);
            T_CHECK(got == want);
        }
    }
}

void
testRaggedAttentionShapeChecks()
{
    const size_t heads = 2, cols = 16;
    MultiHeadAttention mha(makeAttention(AttentionType::Taylor), heads);
    ThreadPool pool(1);
    const RaggedBatch q = randomRagged({3, 5}, cols, 1);
    RaggedBatch out;

    const RaggedBatch kShort = randomRagged({3}, cols, 2);
    T_CHECK_THROWS(mha.forwardRaggedInto(pool, q, kShort, kShort, out),
                   std::invalid_argument);
    // K and V must agree per image (Q may differ: kv rows are the
    // attended set).
    const RaggedBatch kLens = randomRagged({3, 4}, cols, 3);
    const RaggedBatch vLens = randomRagged({3, 5}, cols, 3);
    T_CHECK_THROWS(mha.forwardRaggedInto(pool, q, kLens, vLens, out),
                   std::invalid_argument);
    const RaggedBatch kCols = randomRagged({3, 5}, cols + heads, 4);
    T_CHECK_THROWS(mha.forwardRaggedInto(pool, q, kCols, kCols, out),
                   std::invalid_argument);
    const RaggedBatch empty;
    T_CHECK_THROWS(mha.forwardRaggedInto(pool, empty, empty, empty, out),
                   std::invalid_argument);
}

// --------------------------------------------- encoder parity (keep=1)

/**
 * THE acceptance criterion: with keep = 1.0 (the default) the ragged
 * encoder path over uniform lens is bitwise-identical per image to
 * forwardBatch, and in a mixed batch every image equals its own
 * single-image ragged forward.
 */
void
testEncoderRaggedKeepOneParity()
{
    VitConfig cfg = raggedConfig();
    // An explicit all-1.0 schedule overrides the global VITALITY_TOKENS
    // knob, so this parity contract holds under the CI keep-ratio
    // sweep too.
    cfg.tokenKeep.assign(cfg.layers, 1.0f);
    ThreadPool pool(3);
    Rng rng(0xe11);
    const Batch x = Batch::randn(3, cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f);

    for (AttentionType type :
         {AttentionType::Taylor, AttentionType::Softmax,
          AttentionType::Unified}) {
        VitEncoder enc(cfg, makeAttention(type), 0xbeef);
        const Batch want = enc.forwardBatch(x, pool);

        const RaggedBatch rx = RaggedBatch::fromBatch(x);
        const RaggedBatch got = enc.forwardRagged(rx, pool);
        T_CHECK(got.size() == 3);
        Matrix img;
        for (size_t i = 0; i < 3; ++i) {
            got.unpackImage(i, img);
            T_CHECK(img == want.at(i)); // bitwise
        }
    }
}

/** Mixed token counts: each image is independent of its batch-mates. */
void
testEncoderRaggedBatchIndependence()
{
    VitConfig cfg = raggedConfig();
    cfg.tokenKeep.assign(cfg.layers, 1.0f); // pin: no pruning here
    ThreadPool pool(3);
    const std::vector<size_t> lens = {1, 17, cfg.tokens};
    const RaggedBatch x = randomRagged(lens, cfg.dModel, 0xe22);

    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor), 0xbeef);
    const RaggedBatch got = enc.forwardRagged(x, pool);
    T_CHECK(got.offsets() == x.offsets()); // keep = 1.0: no shrink

    Matrix in, want, out;
    for (size_t i = 0; i < lens.size(); ++i) {
        x.unpackImage(i, in);
        const Matrix *ptr = &in;
        const RaggedBatch solo = RaggedBatch::fromMatrices(&ptr, 1);
        const RaggedBatch ref = enc.forwardRagged(solo, pool);
        ref.unpackImage(0, want);
        got.unpackImage(i, out);
        T_CHECK(out == want); // bitwise
    }

    RaggedBatch bad = randomRagged({4}, cfg.dModel + 1, 5);
    RaggedBatch outRb;
    T_CHECK_THROWS(enc.forwardRaggedInto(bad, pool, outRb),
                   std::invalid_argument);
}

// ------------------------------------------------------ token pruning

void
testPrunerAnalytics()
{
    // keptTokens: CLS + clamp(round(keep * (n-1)), 1, n-1).
    T_CHECK(TokenPruner::keptTokens(197, 1.0f) == 197);
    T_CHECK(TokenPruner::keptTokens(197, 0.5f) == 99);  // 1 + 98
    T_CHECK(TokenPruner::keptTokens(197, 0.35f) == 70); // 1 + 69
    T_CHECK(TokenPruner::keptTokens(1, 0.1f) == 1);
    T_CHECK(TokenPruner::keptTokens(2, 0.01f) == 2); // floor: 1 non-CLS
    T_CHECK(TokenPruner::keptTokens(0, 0.5f) == 0);

    std::vector<float> sched;
    TokenPruner::buildSchedule(sched, 12, 0.5f);
    T_CHECK(sched.size() == 12);
    for (size_t l = 0; l < 12; ++l) {
        const bool pruned = l == 3 || l == 6 || l == 9;
        T_CHECK(sched[l] == (pruned ? 0.5f : 1.0f));
    }
    TokenPruner::buildSchedule(sched, 2, 0.7f);
    T_CHECK(sched.size() == 2 && sched[0] == 0.7f && sched[1] == 1.0f);
    TokenPruner::buildSchedule(sched, 1, 0.7f);
    T_CHECK(sched.size() == 1 && sched[0] == 1.0f); // nothing downstream
    T_CHECK_THROWS(TokenPruner::buildSchedule(sched, 12, 0.0f),
                   std::invalid_argument);
    T_CHECK_THROWS(TokenPruner::buildSchedule(sched, 12, 1.5f),
                   std::invalid_argument);
}

/**
 * An explicit per-layer schedule prunes to exactly the analytic row
 * counts, keeps the CLS row, and a batch-mate's presence does not
 * change WHICH tokens survive.
 */
void
testEncoderPruningStructure()
{
    VitConfig cfg = raggedConfig();
    cfg.tokenKeep = {0.5f, 1.0f}; // prune once, after layer 0
    cfg.validate();
    ThreadPool pool(2);
    const std::vector<size_t> lens = {1, 9, cfg.tokens};
    const RaggedBatch x = randomRagged(lens, cfg.dModel, 0xf00);

    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor), 0xbeef);
    const RaggedBatch got = enc.forwardRagged(x, pool);
    T_CHECK(got.size() == lens.size());
    for (size_t i = 0; i < lens.size(); ++i)
        T_CHECK(got.rowsOf(i) == TokenPruner::keptTokens(lens[i], 0.5f));

    // Same input alone prunes to the same surviving values.
    Matrix in, want, out;
    for (size_t i = 0; i < lens.size(); ++i) {
        x.unpackImage(i, in);
        const Matrix *ptr = &in;
        const RaggedBatch ref =
            enc.forwardRagged(RaggedBatch::fromMatrices(&ptr, 1), pool);
        ref.unpackImage(0, want);
        got.unpackImage(i, out);
        T_CHECK(out == want);
    }

    // withTokenKeep builds the staged schedule; validate() rejects
    // malformed ones.
    const VitConfig staged = raggedConfig().withTokenKeep(0.5f);
    T_CHECK(staged.tokenKeep.size() == staged.layers);
    VitConfig badCfg = raggedConfig();
    badCfg.tokenKeep = {0.5f}; // wrong length for 2 layers
    T_CHECK_THROWS(badCfg.validate(), std::invalid_argument);
    badCfg.tokenKeep = {0.5f, 1.5f};
    T_CHECK_THROWS(badCfg.validate(), std::invalid_argument);
}

/** The global VITALITY_TOKENS knob drives the default staged schedule
 * when the config carries none. */
void
testGlobalKeepKnob()
{
    KeepGuard guard;
    T_CHECK_THROWS(setTokenKeepRatio(0.0f), std::invalid_argument);
    T_CHECK_THROWS(setTokenKeepRatio(1.5f), std::invalid_argument);
    T_CHECK(parseTokenKeep("0.5") && *parseTokenKeep("0.5") == 0.5f);
    T_CHECK(!parseTokenKeep("0"));
    T_CHECK(!parseTokenKeep("1.5"));
    T_CHECK(!parseTokenKeep("bogus"));
    T_CHECK(!parseTokenKeep("0.5x"));

    setTokenKeepRatio(0.5f);
    const VitConfig cfg = raggedConfig(); // no explicit schedule
    ThreadPool pool(2);
    const std::vector<size_t> lens = {cfg.tokens};
    const RaggedBatch x = randomRagged(lens, cfg.dModel, 0xf11);
    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor), 0xbeef);
    // L = 2 -> default schedule prunes after layer 0 (layers/4 == 0).
    const RaggedBatch got = enc.forwardRagged(x, pool);
    T_CHECK(got.rowsOf(0) == TokenPruner::keptTokens(cfg.tokens, 0.5f));

    // Back at 1.0 the same encoder instance stops pruning (the
    // schedule re-resolves per call).
    setTokenKeepRatio(1.0f);
    const RaggedBatch full = enc.forwardRagged(x, pool);
    T_CHECK(full.rowsOf(0) == cfg.tokens);
}

/**
 * Pruning composes with sparse execution: the Unified kernel under
 * dense and csr modes selects the SAME surviving tokens (the ranking
 * reads Q/K, whose producing GEMMs are mode-independent) and the
 * outputs agree to the usual cross-mode tolerance.
 */
void
testPruningUnderSparseModes()
{
    const SparseExec ambient = sparseExecMode();
    VitConfig cfg = raggedConfig();
    cfg.tokenKeep = {0.5f, 1.0f};
    ThreadPool pool(2);
    const RaggedBatch x =
        randomRagged({cfg.tokens, 11}, cfg.dModel, 0xf22);

    VitEncoder enc(cfg, makeAttention(AttentionType::Unified, 0.01f),
                   0xbeef);
    setSparseExecMode(SparseExec::Dense);
    const RaggedBatch dense = enc.forwardRagged(x, pool);
    setSparseExecMode(SparseExec::Csr);
    const RaggedBatch csr = enc.forwardRagged(x, pool);
    setSparseExecMode(ambient);

    T_CHECK(dense.offsets() == csr.offsets()); // same tokens survived
    T_CHECK(dense.allClose(csr, 5e-2f));
}

void
testPrunerErrorPaths()
{
    TokenPruner pruner;
    RaggedBatch x = randomRagged({5, 7}, 8, 1);
    RaggedBatch q = randomRagged({5, 7}, 8, 2);
    RaggedBatch k = randomRagged({5, 7}, 8, 3);

    T_CHECK_THROWS(pruner.prune(x, q, k, 2, 0.0f),
                   std::invalid_argument);
    T_CHECK_THROWS(pruner.prune(x, q, k, 3, 0.5f), // 8 % 3 != 0
                   std::invalid_argument);
    RaggedBatch qBad = randomRagged({5, 6}, 8, 4); // offsets mismatch
    T_CHECK_THROWS(pruner.prune(x, qBad, k, 2, 0.5f),
                   std::invalid_argument);
    // keep = 1.0 is a structural no-op.
    RaggedBatch before;
    before.copyFrom(x);
    pruner.prune(x, q, k, 2, 1.0f);
    T_CHECK(x == before);
}

} // namespace

int
main()
{
    testStructure();
    testPackUnpackRoundTrip();
    testShrinkRows();
    testRaggedAttentionParity();
    testRaggedAttentionShapeChecks();
    testEncoderRaggedKeepOneParity();
    testEncoderRaggedBatchIndependence();
    testPrunerAnalytics();
    testEncoderPruningStructure();
    testGlobalKeepKnob();
    testPruningUnderSparseModes();
    testPrunerErrorPaths();
    return vitality::testing::finish("test_ragged");
}
