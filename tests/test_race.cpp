/**
 * @file
 * Concurrency stress tests, written for the ThreadSanitizer CI leg
 * (they also run in the plain suites): concurrent forwardBatch on
 * distinct encoders sharing one pool, ThreadPool construction and
 * destruction racing in-flight GEMMs (both the uninstall path and the
 * runner handoff to a surviving pool), and CallGuard contention on a
 * shared MultiHeadAttention / VitEncoder instance.
 *
 * Iteration counts are deliberately modest: CI runs this under TSan
 * (~10x slowdown) on small runners, and every scenario reaches its
 * racy window within a few dozen iterations.
 */

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/vit_encoder.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"

#include "testing.h"

using namespace vitality;

namespace {

VitConfig
raceConfig()
{
    VitConfig cfg;
    cfg.name = "race-tiny";
    cfg.layers = 2;
    cfg.heads = 2;
    cfg.dModel = 32;
    cfg.tokens = 16;
    cfg.mlpHidden = 64;
    return cfg;
}

/**
 * Distinct encoder instances are documented as safe to run
 * concurrently (only same-instance calls are guarded): several caller
 * threads each drive their own encoder through one shared pool, and
 * every result must stay bitwise-identical to that encoder's
 * single-threaded reference.
 */
void
testConcurrentEncodersShareOnePool()
{
    const VitConfig cfg = raceConfig();
    const size_t callers = 3, images = 2;
    ThreadPool pool(3);

    std::vector<std::unique_ptr<VitEncoder>> encoders;
    std::vector<Batch> inputs, refs;
    for (size_t c = 0; c < callers; ++c) {
        encoders.push_back(std::make_unique<VitEncoder>(
            cfg, makeAttention(AttentionType::Taylor), 0x5eed + c));
        Rng rng(0xba7c + c);
        inputs.push_back(
            Batch::randn(images, cfg.tokens, cfg.dModel, rng, 0.0f, 0.5f));
        refs.push_back(encoders[c]->forwardBatch(inputs[c], pool));
    }

    std::vector<std::thread> threads;
    for (size_t c = 0; c < callers; ++c) {
        threads.emplace_back([&, c] {
            for (int iter = 0; iter < 4; ++iter) {
                const Batch out =
                    encoders[c]->forwardBatch(inputs[c], pool);
                T_CHECK(out == refs[c]);
            }
        });
    }
    for (auto &t : threads)
        t.join();
}

/**
 * ThreadPool destruction racing in-flight multiplies: one thread loops
 * Gemm::multiply (large enough to clear the band fan-out heuristic)
 * while another constructs and destroys pools. A multiply may snapshot
 * a runner whose pool dies mid-call; ~ThreadPool must drain it (or
 * send it down the sequential fallback), and row banding is bitwise-
 * identical at every width, so every result must equal the sequential
 * reference.
 */
void
testPoolLifecycleRacesInFlightMultiplies()
{
    Rng rng(0xdead);
    const Matrix a = Matrix::randn(197, 128, rng, 0.0f, 0.5f);
    const Matrix b = Matrix::randn(128, 256, rng, 0.0f, 0.5f);
    Matrix ref;
    Gemm::multiply(ref, a, b); // no pool alive: sequential

    std::atomic<bool> stop{false};
    std::thread churn([&] {
        for (int i = 0; i < 30; ++i) {
            ThreadPool pool(2);
            // Run one multiply through the pool so destruction always
            // has a freshly-used runner to retire.
            Matrix c;
            Gemm::multiply(c, a, b);
            T_CHECK(c == ref);
        }
        stop.store(true);
    });

    Matrix c;
    do {
        Gemm::multiply(c, a, b);
        T_CHECK(c == ref);
    } while (!stop.load());
    churn.join();

    T_CHECK(Gemm::parallelRunner() == nullptr);
    Matrix after;
    Gemm::multiply(after, a, b);
    T_CHECK(after == ref);
}

/**
 * The runner-handoff path in ~ThreadPool: with an outer pool alive,
 * destroying an inner pool hands the GEMM-runner role back instead of
 * uninstalling it — while a second thread keeps multiplies in flight
 * across every handoff window.
 */
void
testRunnerHandoffUnderLoad()
{
    Rng rng(0xbeef);
    const Matrix a = Matrix::randn(197, 128, rng, 0.0f, 0.5f);
    const Matrix b = Matrix::randn(128, 256, rng, 0.0f, 0.5f);
    Matrix ref;
    Gemm::multiply(ref, a, b);

    ThreadPool outer(2);
    const auto outerRunner = Gemm::parallelRunner();
    T_CHECK(outerRunner != nullptr);

    std::atomic<bool> stop{false};
    std::thread churn([&] {
        for (int i = 0; i < 30; ++i)
            ThreadPool inner(3);
        stop.store(true);
    });

    Matrix c;
    do {
        Gemm::multiply(c, a, b);
        T_CHECK(c == ref);
    } while (!stop.load());
    churn.join();

    // Every inner pool handed the role back to the survivor.
    T_CHECK(Gemm::parallelRunner() == outerRunner);
    Matrix after;
    Gemm::multiply(after, a, b);
    T_CHECK(after == ref);
}

/**
 * CallGuard contention: several threads hammer one MultiHeadAttention
 * instance. Every call either completes with the exact reference
 * output or is refused with std::logic_error — nothing is lost, and
 * the instance stays healthy afterwards. A same-instance VitEncoder
 * race is probed the same way at the end.
 */
void
testCallGuardContention()
{
    const size_t n = 32, heads = 2, dm = 16;
    Rng rng(0xca11);
    const Matrix q = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix k = Matrix::randn(n, dm, rng, 0.0f, 0.5f);
    const Matrix v = Matrix::randn(n, dm, rng);

    ThreadPool pool(2);
    MultiHeadAttention mha(makeAttention(AttentionType::Softmax), heads);
    const Matrix ref = mha.forward(pool, q, k, v);

    const int threads = 4, iters = 8;
    std::atomic<int> completed{0}, refused{0};
    std::vector<std::thread> callers;
    for (int t = 0; t < threads; ++t) {
        callers.emplace_back([&] {
            for (int i = 0; i < iters; ++i) {
                try {
                    Matrix out;
                    mha.forwardInto(pool, q, k, v, out);
                    T_CHECK(out == ref);
                    completed.fetch_add(1);
                } catch (const std::logic_error &) {
                    refused.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : callers)
        t.join();
    T_CHECK(completed.load() + refused.load() == threads * iters);
    T_CHECK(completed.load() >= 1);

    Matrix out;
    mha.forwardInto(pool, q, k, v, out);
    T_CHECK(out == ref);

    // Same contract on the encoder's guard.
    const VitConfig cfg = raceConfig();
    VitEncoder enc(cfg, makeAttention(AttentionType::Taylor));
    Rng erng(0xca12);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, erng, 0.0f, 0.5f);
    const Matrix eref = enc.forward(x, pool);

    std::atomic<int> eCompleted{0}, eRefused{0};
    std::vector<std::thread> ecallers;
    for (int t = 0; t < threads; ++t) {
        ecallers.emplace_back([&] {
            for (int i = 0; i < iters; ++i) {
                try {
                    Matrix eout;
                    enc.forwardInto(x, pool, eout);
                    T_CHECK(eout == eref);
                    eCompleted.fetch_add(1);
                } catch (const std::logic_error &) {
                    eRefused.fetch_add(1);
                }
            }
        });
    }
    for (auto &t : ecallers)
        t.join();
    T_CHECK(eCompleted.load() + eRefused.load() == threads * iters);
    T_CHECK(eCompleted.load() >= 1);

    Matrix eout;
    enc.forwardInto(x, pool, eout);
    T_CHECK(eout == eref);
}

} // namespace

int
main()
{
    testConcurrentEncodersShareOnePool();
    testPoolLifecycleRacesInFlightMultiplies();
    testRunnerHandoffUnderLoad();
    testCallGuardContention();
    return vitality::testing::finish("test_race");
}
