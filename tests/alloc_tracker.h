/**
 * @file
 * Test-only global heap-allocation counter.
 *
 * tests/alloc_tracker.cpp replaces the global operator new/delete
 * family with counting wrappers (linked into the test binary only —
 * the library itself is untouched). AllocationProbe snapshots the
 * counter so a test can assert that a code region performed zero heap
 * allocations: the "allocation-free in steady state" contract of the
 * *Into paths (attention forwardInto, VitEncoder forward/forwardBatch)
 * becomes a failing test instead of a comment.
 *
 * Counting is process-global and thread-safe (relaxed atomics); a
 * probe around a region that runs pool workers counts their
 * allocations too, which is exactly what the steady-state contract
 * demands.
 */

#ifndef VITALITY_TESTS_ALLOC_TRACKER_H
#define VITALITY_TESTS_ALLOC_TRACKER_H

#include <cstdint>

namespace vitality {
namespace testing {

/** Allocations (any operator new) observed since process start. */
uint64_t allocationCount();

/** Deallocations (any operator delete with a non-null pointer). */
uint64_t deallocationCount();

/** Asserting "no allocations happened here" around a region. */
class AllocationProbe
{
  public:
    AllocationProbe() : start_(allocationCount()) {}

    /** Allocations since this probe was constructed. */
    uint64_t allocations() const { return allocationCount() - start_; }

  private:
    uint64_t start_;
};

} // namespace testing
} // namespace vitality

#endif // VITALITY_TESTS_ALLOC_TRACKER_H
