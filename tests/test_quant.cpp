/**
 * @file
 * INT8 quantized-path tests: quantize/dequantize round-trip bounds,
 * the per-element int8-vs-fp32 GEMM error bound from tensor/gemm.h,
 * bitwise scalar-vs-AVX2 parity of the int8 backends, fused-vs-unfused
 * epilogue parity on the quantized path, operand validation, the
 * VITALITY_QUANT mode plumbing, and whole-encoder fp32-vs-int8
 * deviation at DeiT shapes (including batched-vs-single bitwise
 * parity in int8 mode).
 */

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "model/vit_config.h"
#include "model/vit_encoder.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quantized_matrix.h"
#include "testing.h"

using namespace vitality;

namespace {

bool
avx2Here()
{
    return Gemm::available(Gemm::Backend::Avx2);
}

/** Restores every Gemm execution knob on scope exit. */
struct ModeGuard
{
    Gemm::Backend backend = Gemm::active();
    Gemm::EpilogueMode epilogue = Gemm::epilogueMode();
    Gemm::QuantMode quant = Gemm::quantMode();
    ~ModeGuard()
    {
        Gemm::setActive(backend);
        Gemm::setEpilogueMode(epilogue);
        Gemm::setQuantMode(quant);
    }
};

/**
 * Stored float operands for C = op(A) * op(B) with op(A) m x k and
 * op(B) k x n. The activation operand gets a positive shift so the
 * affine zero point is exercised away from zero.
 */
void
makeOperands(Matrix &a, Matrix &b, Gemm::Trans trans, size_t m, size_t n,
             size_t k, Rng &rng)
{
    const size_t ar = trans == Gemm::Trans::A ? k : m;
    const size_t ac = trans == Gemm::Trans::A ? m : k;
    const size_t br = trans == Gemm::Trans::B ? n : k;
    const size_t bc = trans == Gemm::Trans::B ? k : n;
    a = Matrix::randn(ar, ac, rng, 0.7f, 1.3f);
    b = Matrix::randn(br, bc, rng, 0.0f, 0.8f);
}

float
opAElem(const Matrix &a, Gemm::Trans trans, size_t i, size_t kk)
{
    return trans == Gemm::Trans::A ? a(kk, i) : a(i, kk);
}

float
opBElem(const Matrix &b, Gemm::Trans trans, size_t kk, size_t j)
{
    return trans == Gemm::Trans::B ? b(j, kk) : b(kk, j);
}

const char *
transName(Gemm::Trans t)
{
    switch (t) {
    case Gemm::Trans::None:
        return "none";
    case Gemm::Trans::A:
        return "transA";
    default:
        return "transB";
    }
}

/** Quantize the pair as the model layer does (per-row unless transA). */
void
quantizePair(QuantizedMatrix &qa, QuantizedMatrix &qb, const Matrix &a,
             const Matrix &b, Gemm::Trans trans)
{
    const QuantizedMatrix::Granularity g =
        trans == Gemm::Trans::A ? QuantizedMatrix::Granularity::PerTensor
                                : QuantizedMatrix::Granularity::PerRow;
    qa.assignActivations(a, g);
    qb.assignWeights(b);
}

void
testQuantizeDequantRoundTrip()
{
    Rng rng(0xABC1);

    // Weights: symmetric per-tensor, |x - dequant(x)| <= scale / 2.
    const Matrix w = Matrix::randn(17, 33, rng, 0.0f, 0.5f);
    const QuantizedMatrix qw = QuantizedMatrix::weights(w);
    T_CHECK(qw.kind() == QuantizedMatrix::Kind::WeightS8);
    T_CHECK(qw.rows() == 17 && qw.cols() == 33);
    T_CHECK(qw.zeroPoint(0) == 0);
    T_CHECK_CLOSE(qw.scale(0), maxAbs(w) / 127.0f, 1e-9);
    const Matrix wd = qw.dequantize();
    const double wtol = 0.5 * qw.scale(0) * (1.0 + 1e-6);
    for (size_t i = 0; i < w.size(); ++i)
        T_CHECK(std::fabs(wd.data()[i] - w.data()[i]) <= wtol);

    // Activations: affine per-row codes in [0, 127], error <= step / 2.
    Matrix act = Matrix::randn(9, 40, rng, 1.2f, 0.9f);
    const QuantizedMatrix qa = QuantizedMatrix::activations(act);
    T_CHECK(qa.kind() == QuantizedMatrix::Kind::ActivationU7);
    T_CHECK(qa.granularity() == QuantizedMatrix::Granularity::PerRow);
    const Matrix ad = qa.dequantize();
    for (size_t r = 0; r < act.rows(); ++r) {
        T_CHECK(qa.zeroPoint(r) >= 0 && qa.zeroPoint(r) <= 127);
        const double tol = 0.5 * qa.scale(r) * (1.0 + 1e-6);
        for (size_t c = 0; c < act.cols(); ++c) {
            T_CHECK(qa.rowPtr(r)[c] >= 0);
            T_CHECK(std::fabs(ad(r, c) - act(r, c)) <= tol);
        }
    }

    // Per-tensor granularity: one scale, same bound.
    const QuantizedMatrix qt = QuantizedMatrix::activations(
        act, QuantizedMatrix::Granularity::PerTensor);
    const Matrix td = qt.dequantize();
    const double ttol = 0.5 * qt.scale(0) * (1.0 + 1e-6);
    for (size_t i = 0; i < act.size(); ++i)
        T_CHECK(std::fabs(td.data()[i] - act.data()[i]) <= ttol);
    // Per-tensor scale covers the global range, so it cannot be tighter
    // than the widest per-row scale.
    float maxRowScale = 0.0f;
    for (size_t r = 0; r < act.rows(); ++r)
        maxRowScale = std::max(maxRowScale, qa.scale(r));
    T_CHECK(qt.scale(0) >= maxRowScale * (1.0f - 1e-6f));

    // Degenerate all-zero inputs quantize to exact zeros.
    const Matrix z = Matrix::zeros(3, 5);
    T_CHECK(maxAbs(QuantizedMatrix::weights(z).dequantize()) == 0.0f);
    T_CHECK(maxAbs(QuantizedMatrix::activations(z).dequantize()) == 0.0f);
}

/** Activation quantization rides the active GEMM backend (the AVX2
 * build vectorizes the range scan and round/clamp/cast sweep); the
 * codes, scales, and zero points must not depend on that choice. */
void
testQuantizeBackendParity()
{
    if (!avx2Here())
        return;
    ModeGuard guard;
    Rng rng(0xABC9);
    // Odd widths exercise the vector tail; the all-zero row the
    // degenerate group path.
    for (size_t cols : {1u, 7u, 8u, 40u, 197u}) {
        Matrix act = Matrix::randn(5, cols, rng, 0.7f, 1.3f);
        for (size_t c = 0; c < cols; ++c)
            act(2, c) = 0.0f;
        for (auto g : {QuantizedMatrix::Granularity::PerRow,
                       QuantizedMatrix::Granularity::PerTensor}) {
            Gemm::setActive(Gemm::Backend::Scalar);
            const QuantizedMatrix qs =
                QuantizedMatrix::activations(act, g);
            Gemm::setActive(Gemm::Backend::Avx2);
            const QuantizedMatrix qv =
                QuantizedMatrix::activations(act, g);
            for (size_t r = 0; r < act.rows(); ++r) {
                T_CHECK(qs.scale(r) == qv.scale(r));
                T_CHECK(qs.zeroPoint(r) == qv.zeroPoint(r));
                for (size_t c = 0; c < cols; ++c)
                    T_CHECK(qs.rowPtr(r)[c] == qv.rowPtr(r)[c]);
            }
        }
    }
}

void
testOperandValidation()
{
    Rng rng(0xABC2);
    Matrix a, b, dst;
    makeOperands(a, b, Gemm::Trans::None, 4, 8, 16, rng);
    const QuantizedMatrix qa = QuantizedMatrix::activations(a);
    const QuantizedMatrix qb = QuantizedMatrix::weights(b);

    // Kinds are enforced: activations first, weights second.
    T_CHECK_THROWS(Gemm::multiply(dst, qb, qb), std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(dst, qa, qa), std::invalid_argument);

    // Per-row activation scales are incompatible with Trans::A (the
    // rows of the stored matrix are op(A) columns there).
    Matrix at, bt;
    makeOperands(at, bt, Gemm::Trans::A, 4, 8, 16, rng);
    const QuantizedMatrix qat = QuantizedMatrix::activations(at);
    const QuantizedMatrix qbt = QuantizedMatrix::weights(bt);
    T_CHECK_THROWS(Gemm::multiply(dst, qat, qbt, Gemm::Trans::A),
                   std::invalid_argument);
    const QuantizedMatrix qpt = QuantizedMatrix::activations(
        at, QuantizedMatrix::Granularity::PerTensor);
    Gemm::multiply(dst, qpt, qbt, Gemm::Trans::A);
    T_CHECK(dst.rows() == 4 && dst.cols() == 8);

    // Shape mismatch surfaces like the fp32 path.
    const QuantizedMatrix qbad =
        QuantizedMatrix::weights(Matrix::zeros(3, 8));
    T_CHECK_THROWS(Gemm::multiply(dst, qa, qbad), std::invalid_argument);
}

/**
 * Per-element error bound from tensor/gemm.h: with a-hat/w-hat the
 * dequantized operands, sa the activation row scale and sw the weight
 * scale,
 *
 *   |c_int8 - c_fp32| <= sa/2 * sum_k |w_hat_kj| + sw/2 * sum_k |a_ik|
 *
 * plus float rounding slack. The reference product is computed in
 * double so the slack term stays tiny.
 */
void
testErrorBoundVsFp64()
{
    Rng rng(0xABC3);
    const size_t shapes[][3] = {
        {8, 33, 64}, {17, 5, 197}, {64, 64, 64}, {3, 16, 384}};
    for (const auto &s : shapes) {
        const size_t m = s[0], n = s[1], k = s[2];
        for (Gemm::Trans trans :
             {Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B}) {
            Matrix a, b;
            makeOperands(a, b, trans, m, n, k, rng);
            QuantizedMatrix qa, qb;
            quantizePair(qa, qb, a, b, trans);
            const Matrix wd = qb.dequantize();
            Matrix c;
            Gemm::multiply(c, qa, qb, trans);

            const float sw = qb.scale(0);
            for (size_t i = 0; i < m; ++i) {
                const float sa =
                    qa.granularity() ==
                            QuantizedMatrix::Granularity::PerRow
                        ? qa.scale(i)
                        : qa.scale(0);
                for (size_t j = 0; j < n; ++j) {
                    double ref = 0.0, sumW = 0.0, sumA = 0.0;
                    for (size_t kk = 0; kk < k; ++kk) {
                        const double av = opAElem(a, trans, i, kk);
                        const double wv = opBElem(b, trans, kk, j);
                        ref += av * wv;
                        sumW += std::fabs(opBElem(wd, trans, kk, j));
                        sumA += std::fabs(av);
                    }
                    const double bound =
                        (0.5 * sa * sumW + 0.5 * sw * sumA) * 1.001 +
                        1e-4;
                    if (!(std::fabs(c(i, j) - ref) <= bound)) {
                        T_CHECK(false);
                        std::printf(
                            "  %s m=%zu n=%zu k=%zu (%zu,%zu): "
                            "got=%.6g ref=%.6g bound=%.3g\n",
                            transName(trans), m, n, k, i, j,
                            static_cast<double>(c(i, j)), ref,
                            bound);
                        return;
                    }
                }
            }
        }
    }
}

/**
 * The scalar and AVX2 int8 backends must agree bitwise on every shape
 * and transpose mode: the integer accumulation is exact in any order
 * and both run the same dequant float program (gemm_int8.h).
 */
void
testScalarAvx2BitwiseParity()
{
    if (!avx2Here()) {
        std::printf("  (AVX2 unavailable; parity test skipped)\n");
        return;
    }
    Rng rng(0xABC4);
    const size_t sizes[] = {1, 2, 3, 5, 8, 17, 64, 197};
    for (Gemm::Trans trans :
         {Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B}) {
        for (size_t m : sizes) {
            for (size_t n : sizes) {
                for (size_t k : sizes) {
                    Matrix a, b;
                    makeOperands(a, b, trans, m, n, k, rng);
                    QuantizedMatrix qa, qb;
                    quantizePair(qa, qb, a, b, trans);
                    Matrix cs, cv;
                    Gemm::multiply(cs, qa, qb, trans, Gemm::Epilogue{},
                                   Gemm::Backend::Scalar);
                    Gemm::multiply(cv, qa, qb, trans, Gemm::Epilogue{},
                                   Gemm::Backend::Avx2);
                    if (!(cs == cv)) {
                        T_CHECK(false);
                        std::printf("  mismatch %s m=%zu n=%zu k=%zu "
                                    "maxdiff=%.3g\n",
                                    transName(trans), m, n, k,
                                    static_cast<double>(
                                        maxAbsDiff(cs, cv)));
                        return;
                    }
                }
            }
        }
    }
}

/** Epilogues on the quantized path: fused == unfused bitwise, and the
 * backends agree bitwise under every epilogue combination. */
void
testEpilogueParity()
{
    ModeGuard guard;
    Rng rng(0xABC5);
    const size_t m = 17, n = 64, k = 33;
    Matrix a, b;
    makeOperands(a, b, Gemm::Trans::None, m, n, k, rng);
    QuantizedMatrix qa, qb;
    quantizePair(qa, qb, a, b, Gemm::Trans::None);
    const Matrix bias = Matrix::randn(1, n, rng, 0.0f, 0.3f);
    const Matrix seed = Matrix::randn(m, n, rng, 0.0f, 0.5f);

    // An explicitly requested GeluFast act is honored in every
    // epilogue mode, and on the AVX2 path it runs the geluApprox8
    // vector program — the parity loop below pins it bitwise against
    // the scalar backend's geluApproxScalar.
    Gemm::Epilogue biasGeluFast = Gemm::Epilogue::withBiasGelu(bias);
    biasGeluFast.act = Gemm::Epilogue::Act::GeluFast;

    const Gemm::Epilogue epilogues[] = {
        Gemm::Epilogue{},
        Gemm::Epilogue::withBias(bias),
        Gemm::Epilogue::withBiasGelu(bias),
        biasGeluFast,
        Gemm::Epilogue::accumulateWithBias(bias),
    };
    std::vector<Gemm::Backend> backends{Gemm::Backend::Scalar};
    if (avx2Here())
        backends.push_back(Gemm::Backend::Avx2);

    for (const Gemm::Epilogue &ep : epilogues) {
        Matrix ref;
        bool haveRef = false;
        for (Gemm::Backend backend : backends) {
            for (Gemm::EpilogueMode mode :
                 {Gemm::EpilogueMode::Fused,
                  Gemm::EpilogueMode::Unfused}) {
                Gemm::setEpilogueMode(mode);
                Matrix c = seed; // accumulate needs a seeded dst
                Gemm::multiply(c, qa, qb, Gemm::Trans::None, ep,
                               backend);
                if (!haveRef) {
                    ref = c;
                    haveRef = true;
                } else {
                    T_CHECK(c == ref);
                }
            }
        }
        Gemm::setEpilogueMode(guard.epilogue);
    }
}

void
testModePlumbing()
{
    ModeGuard guard;
    T_CHECK(Gemm::parseQuantMode("off") == Gemm::QuantMode::Off);
    T_CHECK(Gemm::parseQuantMode("int8") == Gemm::QuantMode::Int8);
    T_CHECK(!Gemm::parseQuantMode("int4").has_value());
    T_CHECK(std::string(Gemm::quantModeName(Gemm::QuantMode::Off)) ==
            "off");
    T_CHECK(std::string(Gemm::quantModeName(Gemm::QuantMode::Int8)) ==
            "int8");
    // Setter round-trips (the process default depends on VITALITY_QUANT,
    // which CI sets on some legs, so no assertion on the initial value).
    Gemm::setQuantMode(Gemm::QuantMode::Int8);
    T_CHECK(Gemm::quantMode() == Gemm::QuantMode::Int8);
    Gemm::setQuantMode(Gemm::QuantMode::Off);
    T_CHECK(Gemm::quantMode() == Gemm::QuantMode::Off);
}

/**
 * Whole-encoder deviation: at DeiT shapes the int8 dense path tracks
 * fp32 to well under the residual-stream scale. The asserted ceilings
 * (max |y_int8 - y_fp32| <= 0.25 absolute at DeiT-Small, <= 0.35 at
 * the Base-shaped config; README "Execution knobs") were chosen as
 * ~4x the measured deviation so they catch regressions, not noise.
 */
void
testEncoderInt8Deviation()
{
    ModeGuard guard;
    ThreadPool pool(2);

    const VitConfig small = VitConfig::deitSmall();
    VitConfig baseish = VitConfig::deitBase();
    baseish.layers = 2; // full Base is bench territory; keep tests fast
    baseish.tokens = 64;
    const struct
    {
        const VitConfig &cfg;
        double bound;
    } cases[] = {{small, 0.25}, {baseish, 0.35}};

    for (const auto &tc : cases) {
        Rng rng(0x9e1);
        const Matrix x =
            Matrix::randn(tc.cfg.tokens, tc.cfg.dModel, rng, 0.0f, 1.0f);
        VitEncoder encoder(tc.cfg, makeAttention(AttentionType::Softmax),
                           0x77);

        Gemm::setQuantMode(Gemm::QuantMode::Off);
        const Matrix yFp = encoder.forward(x, pool);
        Gemm::setQuantMode(Gemm::QuantMode::Int8);
        const Matrix yQ = encoder.forward(x, pool);

        const float diff = maxAbsDiff(yFp, yQ);
        T_CHECK(diff > 0.0f); // int8 path actually engaged
        if (!(diff <= tc.bound)) {
            T_CHECK(false);
            std::printf("  %s: maxAbsDiff=%.4g bound=%.3g\n",
                        tc.cfg.name.c_str(), static_cast<double>(diff),
                        tc.bound);
        }

        // Int8 mode is deterministic and batched forward stays
        // bitwise-identical to per-image forward.
        T_CHECK(encoder.forward(x, pool) == yQ);
        Batch bx;
        bx.resize(2, tc.cfg.tokens, tc.cfg.dModel);
        bx[0].copyFrom(x);
        bx[1].copyFrom(x);
        Batch by = encoder.forwardBatch(bx, pool);
        T_CHECK(by[0] == yQ && by[1] == yQ);
    }
}

/** VITALITY_QUANT=off leaves every fp32 code path untouched: toggling
 * the knob off reproduces the fp32 result bitwise. */
void
testOffModeUnchanged()
{
    ModeGuard guard;
    ThreadPool pool(2);
    VitConfig cfg = VitConfig::deitTiny();
    cfg.layers = 2;
    Rng rng(0x9e2);
    const Matrix x =
        Matrix::randn(cfg.tokens, cfg.dModel, rng, 0.0f, 1.0f);
    VitEncoder encoder(cfg, makeAttention(AttentionType::Taylor), 0x88);

    Gemm::setQuantMode(Gemm::QuantMode::Off);
    const Matrix y1 = encoder.forward(x, pool);
    Gemm::setQuantMode(Gemm::QuantMode::Int8);
    (void)encoder.forward(x, pool);
    Gemm::setQuantMode(Gemm::QuantMode::Off);
    T_CHECK(encoder.forward(x, pool) == y1);
}

} // namespace

int
main()
{
    testQuantizeDequantRoundTrip();
    testQuantizeBackendParity();
    testOperandValidation();
    testErrorBoundVsFp64();
    testScalarAvx2BitwiseParity();
    testEpilogueParity();
    testModePlumbing();
    testEncoderInt8Deviation();
    testOffModeUnchanged();
    return vitality::testing::finish("test_quant");
}
