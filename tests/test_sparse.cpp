/**
 * @file
 * CSR sparse-execution tests: structure round-trips against SparseMask,
 * kernel parity against naive dense references over the full
 * n x density sweep (n in {1, 2, 3, 17, 197}, density in
 * {0, 0.02, 0.25, 1.0}), dense-masked vs CSR execution parity for the
 * Sanger and Unified kernels — including the Taylor / Softmax ends of
 * the Fig. 15 identity at the all-zero and all-ones masks — mask
 * parity between forward() and forwardInto() on both paths, empty-row
 * and single-row edge cases, and the pack-and-split CSR entry point.
 */

#include <cmath>
#include <string>
#include <vector>

#include "attention/softmax_attention.h"
#include "attention/taylor_attention.h"
#include "attention/unified_attention.h"
#include "base/rng.h"
#include "sparse/csr.h"
#include "sparse/pack_split.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

const size_t kSizes[] = {1, 2, 3, 17, 197};
const double kDensities[] = {0.0, 0.02, 0.25, 1.0};

/** RAII guard: force a sparse execution mode, restore on scope exit. */
struct ScopedSparseMode
{
    explicit ScopedSparseMode(SparseExec mode) : before(sparseExecMode())
    {
        setSparseExecMode(mode);
    }
    ~ScopedSparseMode() { setSparseExecMode(before); }
    SparseExec before;
};

/**
 * A mask of roughly the requested density (exact at the 0 and 1 ends,
 * Bernoulli in between — the parity sweeps only need "some kept
 * coordinates at this order of density", not an exact count).
 */
SparseMask
randomMask(size_t rows, size_t cols, double density, Rng &rng)
{
    if (density >= 1.0)
        return SparseMask::dense(rows, cols);
    SparseMask m(rows, cols);
    if (density <= 0.0)
        return m;
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(static_cast<float>(density)))
                m.set(r, c, true);
    return m;
}

struct Qkv
{
    Matrix q, k, v;
};

Qkv
randomQkv(size_t n, size_t d, uint64_t seed, float qk_scale = 0.5f)
{
    Rng rng(seed);
    return {Matrix::randn(n, d, rng, 0.0f, qk_scale),
            Matrix::randn(n, d, rng, 0.0f, qk_scale),
            Matrix::randn(n, d, rng)};
}

void
testCsrRoundTrip()
{
    Rng rng(0xc5a0);
    CsrMask csr; // one instance across the sweep: recycling under test
    for (size_t n : kSizes) {
        for (double density : kDensities) {
            const SparseMask mask = randomMask(n, n, density, rng);
            csr.assignFromMask(mask);
            T_CHECK(csr.rows() == n && csr.cols() == n);
            T_CHECK(csr.nnz() == mask.nnz());
            T_CHECK(csr.density() == mask.density());
            for (size_t r = 0; r < n; ++r)
                T_CHECK(csr.rowNnz(r) == mask.rowNnz(r));
            T_CHECK(csr.toMask() == mask);
            // Column indices ascend within each row.
            for (size_t r = 0; r < n; ++r)
                for (uint32_t i = csr.rowPtr()[r] + 1;
                     i < csr.rowPtr()[r + 1]; ++i)
                    T_CHECK(csr.colIdx()[i - 1] < csr.colIdx()[i]);
        }
    }

    // Direct threshold build == dense threshold build, with and without
    // the empty-row rescue, and the rescue matches the SparseMask
    // helper coordinate for coordinate.
    for (size_t n : kSizes) {
        const Matrix scores = Matrix::uniform(n, n, rng);
        for (float thr : {0.0f, 0.3f, 0.9f, 1.5f}) {
            SparseMask mask = SparseMask::fromThreshold(scores, thr);
            CsrMask direct;
            direct.assignFromThreshold(scores, thr);
            T_CHECK(direct.toMask() == mask);

            CsrMask rescued;
            rescued.assignFromThreshold(scores, thr,
                                        /*rescue_empty_rows=*/true);
            mask.rescueEmptyRows(scores);
            T_CHECK(rescued.toMask() == mask);
            // Every query attends somewhere after the rescue.
            for (size_t r = 0; r < n; ++r)
                T_CHECK(rescued.rowNnz(r) >= 1);
        }
    }

    // Empty structure edge case.
    csr.assignFromMask(SparseMask(3, 5));
    T_CHECK(csr.nnz() == 0 && csr.density() == 0.0);
    T_CHECK(csr.toMask() == SparseMask(3, 5));
}

/** Naive double-checked masked softmax, independent of the library. */
Matrix
refMaskedSoftmax(const Matrix &scores, const SparseMask &mask)
{
    Matrix out(scores.rows(), scores.cols());
    for (size_t r = 0; r < scores.rows(); ++r) {
        double maxv = -INFINITY;
        for (size_t c = 0; c < scores.cols(); ++c)
            if (mask.at(r, c))
                maxv = std::max(maxv, (double)scores(r, c));
        if (maxv == -INFINITY)
            continue;
        double denom = 0.0;
        for (size_t c = 0; c < scores.cols(); ++c)
            if (mask.at(r, c))
                denom += std::exp(scores(r, c) - maxv);
        for (size_t c = 0; c < scores.cols(); ++c)
            if (mask.at(r, c))
                out(r, c) = static_cast<float>(
                    std::exp(scores(r, c) - maxv) / denom);
    }
    return out;
}

void
testCsrKernelsMatchDenseReferences()
{
    Rng rng(0xc5a1);
    const size_t d = 16;
    AttentionContext ctx;
    for (size_t n : kSizes) {
        for (double density : kDensities) {
            const auto [q, k, v] = randomQkv(n, d, 0xc5a2 ^ (n * 31) ^
                                                      (size_t)(density * 100));
            const SparseMask mask = randomMask(n, n, density, rng);
            CsrMask csr;
            csr.assignFromMask(mask);

            // sparseScoresInto == dense similarity at kept coordinates.
            const Matrix sim = SoftmaxAttention::similarity(q, k);
            Matrix vals;
            sparseScoresInto(vals, csr, q, k,
                             1.0f / std::sqrt(static_cast<float>(d)));
            T_CHECK(vals.size() == csr.nnz());
            {
                size_t idx = 0;
                for (size_t r = 0; r < n; ++r)
                    for (size_t c = 0; c < n; ++c)
                        if (mask.at(r, c)) {
                            T_CHECK(std::fabs(vals.data()[idx] -
                                              sim(r, c)) <= 2e-5f);
                            ++idx;
                        }
                T_CHECK(idx == csr.nnz());
            }

            // maskedSoftmaxCsrInto == the naive reference (and so does
            // the dense helper, which now routes through the same CSR
            // core).
            const Matrix ref = refMaskedSoftmax(sim, mask);
            Matrix simVals;
            {
                // Gather the exact dense similarity values so the
                // softmax comparison is not polluted by score error.
                simVals.resize(1, csr.nnz());
                size_t idx = 0;
                for (size_t r = 0; r < n; ++r)
                    for (size_t c = 0; c < n; ++c)
                        if (mask.at(r, c))
                            simVals.data()[idx++] = sim(r, c);
            }
            maskedSoftmaxCsrInto(simVals, csr);
            {
                size_t idx = 0;
                for (size_t r = 0; r < n; ++r)
                    for (size_t c = 0; c < n; ++c)
                        if (mask.at(r, c))
                            T_CHECK(std::fabs(simVals.data()[idx++] -
                                              ref(r, c)) <= 1e-5f);
            }
            const Matrix dense_sm = maskedSoftmaxRows(sim, mask);
            T_CHECK(maxAbsDiff(dense_sm, ref) <= 1e-5f);

            // spmmInto == dense matmul of the masked map, both modes.
            const Matrix expect = matmul(dense_sm, v);
            Matrix spmm_out;
            spmmInto(spmm_out, csr, simVals, v);
            T_CHECK(spmm_out.rows() == n && spmm_out.cols() == d);
            T_CHECK(maxAbsDiff(spmm_out, expect) <= 1e-4f);

            Matrix acc = Matrix::full(n, d, 0.5f);
            Matrix expect_acc = add(acc, expect);
            spmmInto(acc, csr, simVals, v, /*accumulate=*/true);
            T_CHECK(maxAbsDiff(acc, expect_acc) <= 1e-4f);
        }
    }

    // Single-row and empty-row edges: a 1 x n mask with one kept entry,
    // and a mask whose middle row kept nothing.
    {
        const auto [q, k, v] = randomQkv(1, d, 0xc5a3);
        SparseMask one(1, 1);
        one.set(0, 0, true);
        CsrMask csr;
        csr.assignFromMask(one);
        Matrix vals;
        sparseScoresInto(vals, csr, q, k, 1.0f);
        maskedSoftmaxCsrInto(vals, csr);
        T_CHECK(vals.size() == 1);
        T_CHECK(vals.data()[0] == 1.0f); // softmax over one entry
    }
    {
        const auto [q, k, v] = randomQkv(3, d, 0xc5a4);
        SparseMask holes(3, 3);
        holes.set(0, 1, true);
        holes.set(2, 0, true);
        holes.set(2, 2, true);
        CsrMask csr;
        csr.assignFromMask(holes);
        Matrix vals;
        sparseScoresInto(vals, csr, q, k, 0.5f);
        maskedSoftmaxCsrInto(vals, csr);
        Matrix out;
        spmmInto(out, csr, vals, v);
        // The empty row attends to nothing: its output is exactly zero.
        for (size_t c = 0; c < d; ++c)
            T_CHECK(out(1, c) == 0.0f);
        const Matrix expect =
            matmul(refMaskedSoftmax(scale(matmulBT(q, k), 0.5f), holes), v);
        T_CHECK(maxAbsDiff(out, expect) <= 1e-4f);
    }
}

/**
 * Sanger and Unified forwardInto: dense-masked vs CSR execution parity
 * at every swept (n, threshold), plus mask parity across forward(),
 * the dense path, and the CSR path.
 */
void
testSparseKernelsDenseVsCsrParity()
{
    const size_t d = 16;
    // Thresholds spanning the density range: 0 keeps everything
    // (softmax entries are >= 0), 1.0 prunes everything (entries are
    // < 1 for n > 1); the middle ones land at intermediate densities.
    const float thresholds[] = {0.0f, 0.02f, 0.25f, 0.5f, 1.0f};

    for (size_t n : kSizes) {
        const auto [q, k, v] = randomQkv(n, d, 0x5a2e ^ (n * 131));
        for (float thr : thresholds) {
            // --- SangerSparse ---
            {
                SangerSparseAttention sanger(thr);
                SparseMask legacy_mask(0, 0);
                const Matrix legacy =
                    sanger.forwardWithMask(q, k, v, &legacy_mask);

                AttentionContext dense_ctx, csr_ctx;
                Matrix dense_out, csr_out;
                {
                    ScopedSparseMode mode(SparseExec::Dense);
                    sanger.forwardInto(dense_ctx, q, k, v, dense_out);
                }
                {
                    ScopedSparseMode mode(SparseExec::Csr);
                    sanger.forwardInto(csr_ctx, q, k, v, csr_out);
                }
                // forward() and both forwardInto() paths agree on the
                // mask (the forward/forwardInto asymmetry regression).
                T_CHECK(dense_ctx.mask() == legacy_mask);
                T_CHECK(csr_ctx.csr().toMask() == legacy_mask);
                // And on the outputs, to float round-off.
                T_CHECK(maxAbsDiff(dense_out, legacy) <= 1e-5f);
                T_CHECK(maxAbsDiff(csr_out, dense_out) <= 1e-4f);
            }

            // --- Unified ---
            {
                UnifiedAttention unified(thr);
                const auto detailed = unified.forwardDetailed(q, k, v);

                AttentionContext dense_ctx, csr_ctx;
                Matrix dense_out, csr_out;
                {
                    ScopedSparseMode mode(SparseExec::Dense);
                    unified.forwardInto(dense_ctx, q, k, v, dense_out);
                }
                {
                    ScopedSparseMode mode(SparseExec::Csr);
                    unified.forwardInto(csr_ctx, q, k, v, csr_out);
                }
                T_CHECK(dense_ctx.mask() == detailed.mask);
                T_CHECK(csr_ctx.csr().toMask() == detailed.mask);
                T_CHECK(maxAbsDiff(dense_out, detailed.z) <= 1e-5f);
                T_CHECK(maxAbsDiff(csr_out, dense_out) <= 1e-4f);
            }
        }
    }
}

/**
 * The Fig. 15 identity under CSR execution: threshold 1 (all-zero mask)
 * reproduces the linear Taylor attention, threshold 0 (all-ones mask)
 * reproduces the softmax attention.
 */
void
testUnifiedCsrEndsReproduceTaylorAndSoftmax()
{
    ScopedSparseMode mode(SparseExec::Csr);
    const size_t d = 16;
    for (size_t n : kSizes) {
        if (n == 1)
            continue; // n = 1: the lone softmax entry is exactly 1, so
                      // threshold 1 keeps it and the all-zero end is
                      // unreachable — not part of the identity.
        const auto [q, k, v] = randomQkv(n, d, 0xf155 ^ (n * 17));

        AttentionContext ctx;
        Matrix unified_out, ref;

        UnifiedAttention all_zero(1.0f);
        all_zero.forwardInto(ctx, q, k, v, unified_out);
        T_CHECK(ctx.csr().nnz() == 0);
        TaylorAttention().forwardInto(ctx, q, k, v, ref);
        T_CHECK(maxAbsDiff(unified_out, ref) <= 1e-5f);

        UnifiedAttention all_ones(0.0f);
        all_ones.forwardInto(ctx, q, k, v, unified_out);
        T_CHECK(ctx.csr().density() == 1.0);
        SoftmaxAttention().forwardInto(ctx, q, k, v, ref);
        T_CHECK(maxAbsDiff(unified_out, ref) <= 1e-5f);
    }
}

void
testPackSplitCsrEntryMatchesMask()
{
    Rng rng(0x9ac5);
    for (size_t n : kSizes) {
        for (double density : kDensities) {
            const SparseMask mask = randomMask(n, n, density, rng);
            CsrMask csr;
            csr.assignFromMask(mask);
            for (size_t width : {1ul, 4ul, 64ul}) {
                const PackSplitResult a = packAndSplit(mask, width);
                const PackSplitResult b = packAndSplit(csr, width);
                T_CHECK(a.nnz == b.nnz);
                T_CHECK(a.numSubRows == b.numSubRows);
                T_CHECK(a.peWidth == b.peWidth);
                T_CHECK(a.numPackedRows() == b.numPackedRows());
                T_CHECK(a.utilization() == b.utilization());
                for (size_t i = 0; i < a.packedRows.size(); ++i) {
                    T_CHECK(a.packedRows[i].occupancy ==
                            b.packedRows[i].occupancy);
                    T_CHECK(a.packedRows[i].segments ==
                            b.packedRows[i].segments);
                }
            }
        }
    }
}

void
testSparseExecModeKnob()
{
    const SparseExec before = sparseExecMode();
    setSparseExecMode(SparseExec::Dense);
    T_CHECK(sparseExecMode() == SparseExec::Dense);
    setSparseExecMode(SparseExec::Csr);
    T_CHECK(sparseExecMode() == SparseExec::Csr);
    setSparseExecMode(before);
    T_CHECK(std::string(sparseExecName(SparseExec::Dense)) == "dense");
    T_CHECK(std::string(sparseExecName(SparseExec::Csr)) == "csr");
}

/** Sparse-branch analytic op counts scale with density. */
void
testOpCountsScaleWithDensity()
{
    const size_t n = 197, d = 64;
    const SangerSparseAttention sanger;
    const UnifiedAttention unified;
    uint64_t prev_sanger = 0, prev_unified = 0;
    for (double density : {0.0, 0.02, 0.25, 1.0}) {
        const uint64_t s = sanger.opCountsWithDensity(n, d, density).total();
        const uint64_t u =
            unified.opCountsWithDensity(n, d, density).total();
        T_CHECK(s > prev_sanger);
        T_CHECK(u > prev_unified);
        prev_sanger = s;
        prev_unified = u;
    }
    // Density 0 costs exactly the Taylor attention plus the quantized
    // prediction pass (which runs regardless of how much it keeps).
    T_CHECK(unified.opCountsWithDensity(n, d, 0.0).total() ==
            TaylorAttention().opCounts(n, d).total() +
                static_cast<uint64_t>(n) * n * d / 4);
}

} // namespace

int
main()
{
    testCsrRoundTrip();
    testCsrKernelsMatchDenseReferences();
    testSparseKernelsDenseVsCsrParity();
    testUnifiedCsrEndsReproduceTaylorAndSoftmax();
    testPackSplitCsrEntryMatchesMask();
    testSparseExecModeKnob();
    testOpCountsScaleWithDensity();
    return vitality::testing::finish("test_sparse");
}
