/**
 * @file
 * GEMM backend tests: exhaustive scalar-vs-AVX2 parity over ragged
 * shapes and every transpose mode against a float64 reference under the
 * documented tolerance (gemm.h), deep-K shapes through the AVX2 kc
 * cache-blocking, fused-epilogue bitwise parity against the unfused op
 * sequence for every {accumulate, bias, gelu} combination on both
 * backends (including K=3072), epilogue validation rules, dispatcher
 * plumbing (env parsing, availability, explicit-backend calls),
 * aliasing and zero-dimension rules, destination recycling, and
 * cross-backend parity of the whole batched multi-head forward.
 *
 * The AVX2 legs are skipped (with a notice) when the backend is not
 * available — scalar-only builds and non-AVX2 hosts still run the
 * scalar and plumbing checks, so the fallback is tested everywhere.
 */

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

bool
avx2Here()
{
    return Gemm::available(Gemm::Backend::Avx2);
}

/** op(A) element under the given transpose mode. */
float
opA(const Matrix &a, Gemm::Trans trans, size_t i, size_t kk)
{
    return trans == Gemm::Trans::A ? a(kk, i) : a(i, kk);
}

float
opB(const Matrix &b, Gemm::Trans trans, size_t kk, size_t j)
{
    return trans == Gemm::Trans::B ? b(j, kk) : b(kk, j);
}

/** Build the (A, B) operand pair whose op()-shapes are m x k and k x n. */
void
makeOperands(Matrix &a, Matrix &b, Gemm::Trans trans, size_t m, size_t n,
             size_t k, Rng &rng)
{
    a = trans == Gemm::Trans::A ? Matrix::randn(k, m, rng)
                                : Matrix::randn(m, k, rng);
    b = trans == Gemm::Trans::B ? Matrix::randn(n, k, rng)
                                : Matrix::randn(k, n, rng);
}

const char *
transName(Gemm::Trans trans)
{
    switch (trans) {
    case Gemm::Trans::None:
        return "AB";
    case Gemm::Trans::A:
        return "AtB";
    case Gemm::Trans::B:
        return "ABt";
    }
    return "?";
}

/**
 * Check one backend's result against the float64 reference under the
 * documented per-element bound |err| <= k * eps * sum_k |a| * |b| (see
 * gemm.h; the factor 2 leaves room for the reference's own rounding).
 * Returns the number of out-of-tolerance elements.
 */
size_t
checkAgainstRef(const Matrix &c, const Matrix &a, const Matrix &b,
                Gemm::Trans trans, size_t m, size_t n, size_t k)
{
    const float eps = std::numeric_limits<float>::epsilon();
    size_t bad = 0;
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double ref = 0.0, absdot = 0.0;
            for (size_t kk = 0; kk < k; ++kk) {
                const double av = opA(a, trans, i, kk);
                const double bv = opB(b, trans, kk, j);
                ref += av * bv;
                absdot += std::fabs(av * bv);
            }
            const double tol =
                2.0 * static_cast<double>(k + 1) * eps * absdot + 1e-7;
            if (std::fabs(c(i, j) - ref) > tol)
                ++bad;
        }
    }
    return bad;
}

void
testExhaustiveShapeParity()
{
    // Odd / ragged sizes straddle every microkernel boundary: below one
    // 6-row panel, below one 16-col panel, exact multiples, and the
    // DeiT token count 197 (= 12*16+5 cols, 32*6+5 rows).
    const std::vector<size_t> sizes = {1, 2, 3, 5, 8, 17, 64, 197};
    const std::vector<Gemm::Trans> modes = {
        Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B};

    Rng rng(0x6e44);
    Matrix a, b, cScalar, cAvx2;
    size_t combos = 0;
    for (Gemm::Trans trans : modes) {
        for (size_t m : sizes) {
            for (size_t n : sizes) {
                for (size_t k : sizes) {
                    makeOperands(a, b, trans, m, n, k, rng);
                    Gemm::multiply(cScalar, a, b, trans,
                                   Gemm::Backend::Scalar);
                    T_CHECK(cScalar.rows() == m && cScalar.cols() == n);
                    size_t bad =
                        checkAgainstRef(cScalar, a, b, trans, m, n, k);
                    if (bad != 0) {
                        std::printf(
                            "  scalar %s m=%zu n=%zu k=%zu: %zu elems "
                            "out of tolerance\n",
                            transName(trans), m, n, k, bad);
                        T_CHECK(bad == 0);
                    }
                    if (avx2Here()) {
                        Gemm::multiply(cAvx2, a, b, trans,
                                       Gemm::Backend::Avx2);
                        T_CHECK(cAvx2.rows() == m && cAvx2.cols() == n);
                        bad = checkAgainstRef(cAvx2, a, b, trans, m, n, k);
                        if (bad != 0) {
                            std::printf(
                                "  avx2 %s m=%zu n=%zu k=%zu: %zu elems "
                                "out of tolerance\n",
                                transName(trans), m, n, k, bad);
                            T_CHECK(bad == 0);
                        }
                    }
                    ++combos;
                }
            }
        }
    }
    std::printf("  %zu shape/transpose combos checked (avx2 %s)\n",
                combos, avx2Here() ? "on" : "absent, scalar only");
}

void
testDispatcherPlumbing()
{
    // Scalar is always available; the active backend is always valid.
    T_CHECK(Gemm::available(Gemm::Backend::Scalar));
    const Gemm::Backend act = Gemm::active();
    T_CHECK(act == Gemm::Backend::Scalar || act == Gemm::Backend::Avx2);
    T_CHECK(Gemm::available(act));

    T_CHECK(Gemm::parseBackend("scalar") == Gemm::Backend::Scalar);
    T_CHECK(Gemm::parseBackend("avx2") == Gemm::Backend::Avx2);
    T_CHECK(!Gemm::parseBackend("sse9").has_value());
    T_CHECK(!Gemm::parseBackend("").has_value());

    T_CHECK(std::string(Gemm::backendName(Gemm::Backend::Scalar)) ==
            "scalar");
    T_CHECK(std::string(Gemm::backendName(Gemm::Backend::Avx2)) == "avx2");

    // setActive round-trips, and restores cleanly.
    Gemm::setActive(Gemm::Backend::Scalar);
    T_CHECK(Gemm::active() == Gemm::Backend::Scalar);
    if (avx2Here()) {
        Gemm::setActive(Gemm::Backend::Avx2);
        T_CHECK(Gemm::active() == Gemm::Backend::Avx2);
    } else {
        // Explicitly requesting an unavailable backend throws rather
        // than silently running the wrong code.
        T_CHECK_THROWS(Gemm::setActive(Gemm::Backend::Avx2),
                       std::invalid_argument);
        Matrix d;
        const Matrix a = Matrix::ones(2, 2);
        T_CHECK_THROWS(Gemm::multiply(d, a, a, Gemm::Trans::None,
                                      Gemm::Backend::Avx2),
                       std::invalid_argument);
    }
    Gemm::setActive(act);
}

void
testAliasingAndShapeRules()
{
    Rng rng(0x11);
    Matrix a = Matrix::randn(5, 3, rng);
    Matrix b = Matrix::randn(3, 7, rng);

    // dst must not alias an input, in any transpose mode or wrapper.
    T_CHECK_THROWS(Gemm::multiply(a, a, b), std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(b, a, b), std::invalid_argument);
    T_CHECK_THROWS(matmulInto(a, a, b), std::invalid_argument);
    Matrix bt = transpose(b);
    T_CHECK_THROWS(matmulBTInto(bt, a, bt), std::invalid_argument);
    Matrix at = transpose(a);
    T_CHECK_THROWS(matmulATInto(at, at, b), std::invalid_argument);

    // Shape mismatches throw for every mode.
    Matrix d;
    T_CHECK_THROWS(Gemm::multiply(d, a, a, Gemm::Trans::None),
                   std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::A),
                   std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::B),
                   std::invalid_argument);
}

void
testZeroDimsAndRecycling()
{
    Rng rng(0x22);
    Matrix d;

    // k = 0: a well-defined all-zero product.
    const Matrix a0(4, 0);
    const Matrix b0(0, 6);
    Gemm::multiply(d, a0, b0);
    T_CHECK(d.rows() == 4 && d.cols() == 6);
    T_CHECK(maxAbs(d) == 0.0f);

    // m = 0 / n = 0: empty results with the right shape.
    Gemm::multiply(d, Matrix(0, 3), Matrix(3, 5));
    T_CHECK(d.rows() == 0 && d.cols() == 5);
    Gemm::multiply(d, Matrix(3, 4), Matrix(4, 0));
    T_CHECK(d.rows() == 3 && d.cols() == 0);

    // The destination recycles across shape changes (larger, smaller,
    // ragged) and every fill is complete — no stale entries survive.
    Matrix big = Matrix::randn(33, 17, rng);
    Matrix small = Matrix::randn(17, 2, rng);
    Gemm::multiply(d, big, small);
    T_CHECK(d.rows() == 33 && d.cols() == 2);
    Matrix oneone = Matrix::full(1, 1, 3.0f);
    Gemm::multiply(d, oneone, oneone);
    T_CHECK(d.rows() == 1 && d.cols() == 1);
    T_CHECK_CLOSE(d(0, 0), 9.0f, 1e-6);
}

/**
 * Deep-K shapes drive the AVX2 backend through its kc cache-blocking
 * (chunks of 256): partial sums round-trip through float32 memory
 * between chunks, which is exact, so the documented tolerance against
 * the float64 reference must hold unchanged. K values straddle the
 * chunk boundary (256, 257, 517 = 2 chunks + remainder, 3072 = the
 * DeiT-Base MLP depth).
 */
void
testDeepKCacheBlocking()
{
    struct Shape
    {
        size_t m, n, k;
    };
    const std::vector<Shape> shapes = {
        {7, 17, 3072}, {19, 33, 517}, {64, 16, 256}, {6, 16, 257}};
    const std::vector<Gemm::Trans> modes = {
        Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B};

    Rng rng(0x6e55);
    Matrix a, b, c;
    for (const Shape &s : shapes) {
        for (Gemm::Trans trans : modes) {
            makeOperands(a, b, trans, s.m, s.n, s.k, rng);
            for (Gemm::Backend backend :
                 {Gemm::Backend::Scalar, Gemm::Backend::Avx2}) {
                if (backend == Gemm::Backend::Avx2 && !avx2Here())
                    continue;
                Gemm::multiply(c, a, b, trans, backend);
                const size_t bad =
                    checkAgainstRef(c, a, b, trans, s.m, s.n, s.k);
                if (bad != 0) {
                    std::printf("  %s %s m=%zu n=%zu k=%zu: %zu elems "
                                "out of tolerance\n",
                                Gemm::backendName(backend),
                                transName(trans), s.m, s.n, s.k, bad);
                    T_CHECK(bad == 0);
                }
            }
        }
    }
}

/**
 * Shapes with n far past the 256-column block width (and ragged block
 * edges) exercise the AVX2 backend's nc-blocking the way deep-k shapes
 * exercise its kc chunking; the blocking must be invisible in the
 * results. The n > 256 x k > 256 shape runs both blockings at once.
 */
void
testDeepNCacheBlocking()
{
    struct Shape
    {
        size_t m, n, k;
    };
    const std::vector<Shape> shapes = {
        {7, 3072, 64}, {19, 517, 33}, {6, 256, 16}, {17, 300, 8},
        {13, 516, 517}};
    const std::vector<Gemm::Trans> modes = {
        Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B};

    Rng rng(0x6e56);
    Matrix a, b, c;
    for (const Shape &s : shapes) {
        for (Gemm::Trans trans : modes) {
            makeOperands(a, b, trans, s.m, s.n, s.k, rng);
            for (Gemm::Backend backend :
                 {Gemm::Backend::Scalar, Gemm::Backend::Avx2}) {
                if (backend == Gemm::Backend::Avx2 && !avx2Here())
                    continue;
                Gemm::multiply(c, a, b, trans, backend);
                const size_t bad =
                    checkAgainstRef(c, a, b, trans, s.m, s.n, s.k);
                if (bad != 0) {
                    std::printf("  %s %s m=%zu n=%zu k=%zu: %zu elems "
                                "out of tolerance\n",
                                Gemm::backendName(backend),
                                transName(trans), s.m, s.n, s.k, bad);
                    T_CHECK(bad == 0);
                }
            }
        }
    }
}

/**
 * Apply ep to a finished plain product the way the separate op passes
 * would: bias pass, activation pass, residual add. The fused write-back
 * documents exactly this element order, so fused results must match
 * this reference bitwise on the same backend.
 */
void
unfusedReference(Matrix &dst, const Matrix &a, const Matrix &b,
                 Gemm::Trans trans, const Gemm::Epilogue &ep,
                 Gemm::Backend backend)
{
    Matrix product;
    Gemm::multiply(product, a, b, trans, backend);
    if (ep.bias)
        broadcastAddRowInto(product, product, *ep.bias);
    if (ep.act == Gemm::Epilogue::Act::Gelu)
        geluInto(product, product);
    if (ep.accumulate)
        addInto(dst, dst, product);
    else
        dst.copyFrom(product);
}

void
testFusedEpilogueParity()
{
    struct Shape
    {
        size_t m, n, k;
    };
    // Ragged shapes straddling every microkernel boundary, one exact
    // 6x16 tile, the attention shape, and a kc-blocked K=3072 (the
    // DeiT-Base MLP down-projection depth).
    const std::vector<Shape> shapes = {
        {1, 1, 1}, {5, 7, 3}, {6, 16, 64}, {197, 64, 197}, {13, 35, 3072}};
    const std::vector<Gemm::Trans> modes = {
        Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B};

    Rng rng(0x6e66);
    Matrix a, b, fused, ref, fusedViaMode;
    // This test pins the exact-GELU fused/unfused contract, so it must
    // not run under the fast mode (which deliberately swaps the GELU);
    // pin Fused here and restore the run's mode (possibly the env
    // override under test, e.g. VITALITY_EPILOGUE=unfused) at the end.
    const Gemm::EpilogueMode modeBefore = Gemm::epilogueMode();
    Gemm::setEpilogueMode(Gemm::EpilogueMode::Fused);
    size_t combos = 0;
    for (const Shape &s : shapes) {
        for (Gemm::Trans trans : modes) {
            makeOperands(a, b, trans, s.m, s.n, s.k, rng);
            const Matrix bias = Matrix::randn(1, s.n, rng);
            const Matrix init = Matrix::randn(s.m, s.n, rng);
            for (int acc = 0; acc < 2; ++acc) {
                for (int withBias = 0; withBias < 2; ++withBias) {
                    for (int withGelu = 0; withGelu < 2; ++withGelu) {
                        Gemm::Epilogue ep;
                        ep.accumulate = acc != 0;
                        ep.bias = withBias ? &bias : nullptr;
                        ep.act = withGelu ? Gemm::Epilogue::Act::Gelu
                                          : Gemm::Epilogue::Act::None;
                        for (Gemm::Backend backend :
                             {Gemm::Backend::Scalar,
                              Gemm::Backend::Avx2}) {
                            if (backend == Gemm::Backend::Avx2 &&
                                !avx2Here())
                                continue;
                            fused.copyFrom(init);
                            Gemm::multiply(fused, a, b, trans, ep,
                                           backend);
                            ref.copyFrom(init);
                            unfusedReference(ref, a, b, trans, ep,
                                             backend);
                            if (fused != ref) {
                                std::printf(
                                    "  %s %s m=%zu n=%zu k=%zu "
                                    "acc=%d bias=%d gelu=%d: fused != "
                                    "unfused (max diff %g)\n",
                                    Gemm::backendName(backend),
                                    transName(trans), s.m, s.n, s.k,
                                    acc, withBias, withGelu,
                                    static_cast<double>(
                                        maxAbsDiff(fused, ref)));
                                T_CHECK(fused == ref);
                            }
                            // The unfused *mode* (the VITALITY_EPILOGUE
                            // fallback) is bitwise-identical too.
                            Gemm::setEpilogueMode(
                                Gemm::EpilogueMode::Unfused);
                            fusedViaMode.copyFrom(init);
                            Gemm::multiply(fusedViaMode, a, b, trans,
                                           ep, backend);
                            Gemm::setEpilogueMode(
                                Gemm::EpilogueMode::Fused);
                            T_CHECK(fusedViaMode == fused);
                            ++combos;
                        }
                    }
                }
            }
        }
    }
    Gemm::setEpilogueMode(modeBefore);
    std::printf("  %zu fused-epilogue combos checked (avx2 %s)\n", combos,
                avx2Here() ? "on" : "absent, scalar only");
}

/**
 * The fast-GELU epilogue (Act::GeluFast / VITALITY_EPILOGUE=fast):
 * bitwise-equal to applying geluApproxScalar per element after the
 * bias — on both backends, across full 8-lane tiles and ragged edges
 * (the AVX2 write-back vectorizes full tiles and falls back to the
 * scalar helper on edges; the contract is that nobody can tell), and
 * whether requested explicitly or via the mode knob rewriting Gelu.
 */
void
testFastGeluEpilogue()
{
    struct Shape
    {
        size_t m, n, k;
    };
    // n = 16 exercises pure full tiles, the others ragged columns; the
    // last is the MLP hidden shape where the fast path matters.
    const std::vector<Shape> shapes = {
        {1, 1, 1}, {6, 16, 8}, {7, 19, 5}, {12, 32, 64}, {29, 61, 197}};

    Rng rng(0x6e88);
    const Gemm::EpilogueMode modeBefore = Gemm::epilogueMode();
    Matrix a, b, product, fast, viaMode, expect;
    for (const Shape &s : shapes) {
        makeOperands(a, b, Gemm::Trans::None, s.m, s.n, s.k, rng);
        const Matrix bias = Matrix::randn(1, s.n, rng);
        for (Gemm::Backend backend :
             {Gemm::Backend::Scalar, Gemm::Backend::Avx2}) {
            if (backend == Gemm::Backend::Avx2 && !avx2Here())
                continue;
            Gemm::setEpilogueMode(Gemm::EpilogueMode::Fused);
            Gemm::multiply(product, a, b, Gemm::Trans::None, backend);

            // The documented element order with the approx activation.
            expect.resize(s.m, s.n);
            for (size_t i = 0; i < s.m; ++i)
                for (size_t j = 0; j < s.n; ++j)
                    expect(i, j) =
                        geluApproxScalar(product(i, j) + bias(0, j));

            Gemm::Epilogue ep = Gemm::Epilogue::withBias(bias);
            ep.act = Gemm::Epilogue::Act::GeluFast;
            Gemm::multiply(fast, a, b, Gemm::Trans::None, ep, backend);
            T_CHECK(fast == expect);

            // Mode knob: a plain Gelu epilogue under fast mode runs
            // the same program.
            Gemm::setEpilogueMode(Gemm::EpilogueMode::FusedFast);
            Gemm::multiply(viaMode, a, b, Gemm::Trans::None,
                           Gemm::Epilogue::withBiasGelu(bias), backend);
            T_CHECK(viaMode == expect);
            Gemm::setEpilogueMode(Gemm::EpilogueMode::Fused);
        }
    }

    // Scalar and AVX2 backends agree bitwise on the *activation* (the
    // raw products differ by FMA rounding, so compare the epilogue on
    // an identical product): feed the same matrix through a k=0-style
    // identity by using the scalar product as both backends' input via
    // the expect matrices above — already covered; here just confirm
    // the mode knob parses/round-trips.
    Gemm::setEpilogueMode(Gemm::EpilogueMode::FusedFast);
    T_CHECK(std::string(Gemm::epilogueModeName(Gemm::epilogueMode())) ==
            "fast");
    Gemm::setEpilogueMode(modeBefore);
}

void
testEpilogueValidation()
{
    Rng rng(0x6e77);
    const Matrix a = Matrix::randn(5, 3, rng);
    const Matrix b = Matrix::randn(3, 7, rng);
    Matrix d;

    // Bias must be a 1 x n row vector.
    const Matrix badBias = Matrix::randn(1, 6, rng);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::None,
                                  Gemm::Epilogue::withBias(badBias)),
                   std::invalid_argument);
    const Matrix colBias = Matrix::randn(7, 1, rng);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::None,
                                  Gemm::Epilogue::withBias(colBias)),
                   std::invalid_argument);

    // Accumulate requires a preshaped destination: its contents are
    // inputs, so a silently resized dst would accumulate garbage.
    Matrix wrongShape = Matrix::randn(5, 6, rng);
    const Matrix goodBias = Matrix::randn(1, 7, rng);
    T_CHECK_THROWS(
        Gemm::multiply(wrongShape, a, b, Gemm::Trans::None,
                       Gemm::Epilogue::accumulateWithBias(goodBias)),
        std::invalid_argument);

    // Bias aliasing dst would be read while being overwritten.
    Matrix aliased = Matrix::randn(1, 7, rng);
    const Matrix arow = Matrix::randn(1, 3, rng);
    T_CHECK_THROWS(Gemm::multiply(aliased, arow, b, Gemm::Trans::None,
                                  Gemm::Epilogue::withBias(aliased)),
                   std::invalid_argument);

    // k = 0 with an epilogue: the product is all zeros, the epilogue
    // still applies (bias lands, accumulate preserves dst).
    const Matrix a0(4, 0);
    const Matrix b0(0, 7);
    Matrix acc0 = Matrix::randn(4, 7, rng);
    const Matrix before = acc0;
    Gemm::multiply(acc0, a0, b0, Gemm::Trans::None,
                   Gemm::Epilogue::accumulateWithBias(goodBias));
    T_CHECK(acc0 == add(before, broadcastAddRow(Matrix::zeros(4, 7),
                                                goodBias)));
}

/**
 * The acceptance-level check: the whole batched multi-head forward
 * agrees across backends. Each backend is deterministic; across
 * backends the attention outputs (convex combinations of V after
 * normalization) agree to 1e-3 max-abs-diff — far looser than observed,
 * far tighter than any real kernel bug.
 */
void
testForwardBatchCrossBackendParity()
{
    if (!avx2Here()) {
        std::printf("  avx2 unavailable; cross-backend batch parity "
                    "skipped\n");
        return;
    }
    const Gemm::Backend before = Gemm::active();
    ThreadPool pool;
    Rng rng(0x77);
    const size_t tokens = 197, heads = 6, dModel = 6 * 64, batchN = 3;
    Batch q = Batch::randn(batchN, tokens, dModel, rng, 0.0f, 0.5f);
    Batch k = Batch::randn(batchN, tokens, dModel, rng, 0.0f, 0.5f);
    Batch v = Batch::randn(batchN, tokens, dModel, rng);

    for (AttentionType type : {AttentionType::Taylor,
                               AttentionType::Softmax,
                               AttentionType::Unified}) {
        MultiHeadAttention mha(makeAttention(type), heads);
        Gemm::setActive(Gemm::Backend::Scalar);
        Batch outScalar = mha.forwardBatch(pool, q, k, v);
        Gemm::setActive(Gemm::Backend::Avx2);
        Batch outAvx2 = mha.forwardBatch(pool, q, k, v);
        for (size_t i = 0; i < batchN; ++i) {
            const float diff = maxAbsDiff(outScalar[i], outAvx2[i]);
            if (!(diff <= 1e-3f)) {
                std::printf("  %s image %zu: cross-backend diff %g\n",
                            attentionTypeName(type).c_str(), i,
                            static_cast<double>(diff));
                T_CHECK(diff <= 1e-3f);
            }
        }
        // Same backend twice is bitwise-identical (determinism).
        Batch outAvx2b = mha.forwardBatch(pool, q, k, v);
        for (size_t i = 0; i < batchN; ++i)
            T_CHECK(outAvx2[i] == outAvx2b[i]);
    }
    Gemm::setActive(before);
}

} // namespace

int
main()
{
    testExhaustiveShapeParity();
    testDispatcherPlumbing();
    testAliasingAndShapeRules();
    testZeroDimsAndRecycling();
    testDeepKCacheBlocking();
    testDeepNCacheBlocking();
    testFusedEpilogueParity();
    testFastGeluEpilogue();
    testEpilogueValidation();
    testForwardBatchCrossBackendParity();
    return vitality::testing::finish("test_gemm");
}
