/**
 * @file
 * GEMM backend tests: exhaustive scalar-vs-AVX2 parity over ragged
 * shapes and every transpose mode against a float64 reference under the
 * documented tolerance (gemm.h), dispatcher plumbing (env parsing,
 * availability, explicit-backend calls), aliasing and zero-dimension
 * rules, destination recycling, and cross-backend parity of the whole
 * batched multi-head forward.
 *
 * The AVX2 legs are skipped (with a notice) when the backend is not
 * available — scalar-only builds and non-AVX2 hosts still run the
 * scalar and plumbing checks, so the fallback is tested everywhere.
 */

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <vector>

#include "attention/zoo.h"
#include "base/rng.h"
#include "runtime/multi_head_attention.h"
#include "runtime/thread_pool.h"
#include "tensor/batch.h"
#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "testing.h"

using namespace vitality;

namespace {

bool
avx2Here()
{
    return Gemm::available(Gemm::Backend::Avx2);
}

/** op(A) element under the given transpose mode. */
float
opA(const Matrix &a, Gemm::Trans trans, size_t i, size_t kk)
{
    return trans == Gemm::Trans::A ? a(kk, i) : a(i, kk);
}

float
opB(const Matrix &b, Gemm::Trans trans, size_t kk, size_t j)
{
    return trans == Gemm::Trans::B ? b(j, kk) : b(kk, j);
}

/** Build the (A, B) operand pair whose op()-shapes are m x k and k x n. */
void
makeOperands(Matrix &a, Matrix &b, Gemm::Trans trans, size_t m, size_t n,
             size_t k, Rng &rng)
{
    a = trans == Gemm::Trans::A ? Matrix::randn(k, m, rng)
                                : Matrix::randn(m, k, rng);
    b = trans == Gemm::Trans::B ? Matrix::randn(n, k, rng)
                                : Matrix::randn(k, n, rng);
}

const char *
transName(Gemm::Trans trans)
{
    switch (trans) {
    case Gemm::Trans::None:
        return "AB";
    case Gemm::Trans::A:
        return "AtB";
    case Gemm::Trans::B:
        return "ABt";
    }
    return "?";
}

/**
 * Check one backend's result against the float64 reference under the
 * documented per-element bound |err| <= k * eps * sum_k |a| * |b| (see
 * gemm.h; the factor 2 leaves room for the reference's own rounding).
 * Returns the number of out-of-tolerance elements.
 */
size_t
checkAgainstRef(const Matrix &c, const Matrix &a, const Matrix &b,
                Gemm::Trans trans, size_t m, size_t n, size_t k)
{
    const float eps = std::numeric_limits<float>::epsilon();
    size_t bad = 0;
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double ref = 0.0, absdot = 0.0;
            for (size_t kk = 0; kk < k; ++kk) {
                const double av = opA(a, trans, i, kk);
                const double bv = opB(b, trans, kk, j);
                ref += av * bv;
                absdot += std::fabs(av * bv);
            }
            const double tol =
                2.0 * static_cast<double>(k + 1) * eps * absdot + 1e-7;
            if (std::fabs(c(i, j) - ref) > tol)
                ++bad;
        }
    }
    return bad;
}

void
testExhaustiveShapeParity()
{
    // Odd / ragged sizes straddle every microkernel boundary: below one
    // 6-row panel, below one 16-col panel, exact multiples, and the
    // DeiT token count 197 (= 12*16+5 cols, 32*6+5 rows).
    const std::vector<size_t> sizes = {1, 2, 3, 5, 8, 17, 64, 197};
    const std::vector<Gemm::Trans> modes = {
        Gemm::Trans::None, Gemm::Trans::A, Gemm::Trans::B};

    Rng rng(0x6e44);
    Matrix a, b, cScalar, cAvx2;
    size_t combos = 0;
    for (Gemm::Trans trans : modes) {
        for (size_t m : sizes) {
            for (size_t n : sizes) {
                for (size_t k : sizes) {
                    makeOperands(a, b, trans, m, n, k, rng);
                    Gemm::multiply(cScalar, a, b, trans,
                                   Gemm::Backend::Scalar);
                    T_CHECK(cScalar.rows() == m && cScalar.cols() == n);
                    size_t bad =
                        checkAgainstRef(cScalar, a, b, trans, m, n, k);
                    if (bad != 0) {
                        std::printf(
                            "  scalar %s m=%zu n=%zu k=%zu: %zu elems "
                            "out of tolerance\n",
                            transName(trans), m, n, k, bad);
                        T_CHECK(bad == 0);
                    }
                    if (avx2Here()) {
                        Gemm::multiply(cAvx2, a, b, trans,
                                       Gemm::Backend::Avx2);
                        T_CHECK(cAvx2.rows() == m && cAvx2.cols() == n);
                        bad = checkAgainstRef(cAvx2, a, b, trans, m, n, k);
                        if (bad != 0) {
                            std::printf(
                                "  avx2 %s m=%zu n=%zu k=%zu: %zu elems "
                                "out of tolerance\n",
                                transName(trans), m, n, k, bad);
                            T_CHECK(bad == 0);
                        }
                    }
                    ++combos;
                }
            }
        }
    }
    std::printf("  %zu shape/transpose combos checked (avx2 %s)\n",
                combos, avx2Here() ? "on" : "absent, scalar only");
}

void
testDispatcherPlumbing()
{
    // Scalar is always available; the active backend is always valid.
    T_CHECK(Gemm::available(Gemm::Backend::Scalar));
    const Gemm::Backend act = Gemm::active();
    T_CHECK(act == Gemm::Backend::Scalar || act == Gemm::Backend::Avx2);
    T_CHECK(Gemm::available(act));

    T_CHECK(Gemm::parseBackend("scalar") == Gemm::Backend::Scalar);
    T_CHECK(Gemm::parseBackend("avx2") == Gemm::Backend::Avx2);
    T_CHECK(!Gemm::parseBackend("sse9").has_value());
    T_CHECK(!Gemm::parseBackend("").has_value());

    T_CHECK(std::string(Gemm::backendName(Gemm::Backend::Scalar)) ==
            "scalar");
    T_CHECK(std::string(Gemm::backendName(Gemm::Backend::Avx2)) == "avx2");

    // setActive round-trips, and restores cleanly.
    Gemm::setActive(Gemm::Backend::Scalar);
    T_CHECK(Gemm::active() == Gemm::Backend::Scalar);
    if (avx2Here()) {
        Gemm::setActive(Gemm::Backend::Avx2);
        T_CHECK(Gemm::active() == Gemm::Backend::Avx2);
    } else {
        // Explicitly requesting an unavailable backend throws rather
        // than silently running the wrong code.
        T_CHECK_THROWS(Gemm::setActive(Gemm::Backend::Avx2),
                       std::invalid_argument);
        Matrix d;
        const Matrix a = Matrix::ones(2, 2);
        T_CHECK_THROWS(Gemm::multiply(d, a, a, Gemm::Trans::None,
                                      Gemm::Backend::Avx2),
                       std::invalid_argument);
    }
    Gemm::setActive(act);
}

void
testAliasingAndShapeRules()
{
    Rng rng(0x11);
    Matrix a = Matrix::randn(5, 3, rng);
    Matrix b = Matrix::randn(3, 7, rng);

    // dst must not alias an input, in any transpose mode or wrapper.
    T_CHECK_THROWS(Gemm::multiply(a, a, b), std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(b, a, b), std::invalid_argument);
    T_CHECK_THROWS(matmulInto(a, a, b), std::invalid_argument);
    Matrix bt = transpose(b);
    T_CHECK_THROWS(matmulBTInto(bt, a, bt), std::invalid_argument);
    Matrix at = transpose(a);
    T_CHECK_THROWS(matmulATInto(at, at, b), std::invalid_argument);

    // Shape mismatches throw for every mode.
    Matrix d;
    T_CHECK_THROWS(Gemm::multiply(d, a, a, Gemm::Trans::None),
                   std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::A),
                   std::invalid_argument);
    T_CHECK_THROWS(Gemm::multiply(d, a, b, Gemm::Trans::B),
                   std::invalid_argument);
}

void
testZeroDimsAndRecycling()
{
    Rng rng(0x22);
    Matrix d;

    // k = 0: a well-defined all-zero product.
    const Matrix a0(4, 0);
    const Matrix b0(0, 6);
    Gemm::multiply(d, a0, b0);
    T_CHECK(d.rows() == 4 && d.cols() == 6);
    T_CHECK(maxAbs(d) == 0.0f);

    // m = 0 / n = 0: empty results with the right shape.
    Gemm::multiply(d, Matrix(0, 3), Matrix(3, 5));
    T_CHECK(d.rows() == 0 && d.cols() == 5);
    Gemm::multiply(d, Matrix(3, 4), Matrix(4, 0));
    T_CHECK(d.rows() == 3 && d.cols() == 0);

    // The destination recycles across shape changes (larger, smaller,
    // ragged) and every fill is complete — no stale entries survive.
    Matrix big = Matrix::randn(33, 17, rng);
    Matrix small = Matrix::randn(17, 2, rng);
    Gemm::multiply(d, big, small);
    T_CHECK(d.rows() == 33 && d.cols() == 2);
    Matrix oneone = Matrix::full(1, 1, 3.0f);
    Gemm::multiply(d, oneone, oneone);
    T_CHECK(d.rows() == 1 && d.cols() == 1);
    T_CHECK_CLOSE(d(0, 0), 9.0f, 1e-6);
}

/**
 * The acceptance-level check: the whole batched multi-head forward
 * agrees across backends. Each backend is deterministic; across
 * backends the attention outputs (convex combinations of V after
 * normalization) agree to 1e-3 max-abs-diff — far looser than observed,
 * far tighter than any real kernel bug.
 */
void
testForwardBatchCrossBackendParity()
{
    if (!avx2Here()) {
        std::printf("  avx2 unavailable; cross-backend batch parity "
                    "skipped\n");
        return;
    }
    const Gemm::Backend before = Gemm::active();
    ThreadPool pool;
    Rng rng(0x77);
    const size_t tokens = 197, heads = 6, dModel = 6 * 64, batchN = 3;
    Batch q = Batch::randn(batchN, tokens, dModel, rng, 0.0f, 0.5f);
    Batch k = Batch::randn(batchN, tokens, dModel, rng, 0.0f, 0.5f);
    Batch v = Batch::randn(batchN, tokens, dModel, rng);

    for (AttentionType type : {AttentionType::Taylor,
                               AttentionType::Softmax,
                               AttentionType::Unified}) {
        MultiHeadAttention mha(makeAttention(type), heads);
        Gemm::setActive(Gemm::Backend::Scalar);
        Batch outScalar = mha.forwardBatch(pool, q, k, v);
        Gemm::setActive(Gemm::Backend::Avx2);
        Batch outAvx2 = mha.forwardBatch(pool, q, k, v);
        for (size_t i = 0; i < batchN; ++i) {
            const float diff = maxAbsDiff(outScalar[i], outAvx2[i]);
            if (!(diff <= 1e-3f)) {
                std::printf("  %s image %zu: cross-backend diff %g\n",
                            attentionTypeName(type).c_str(), i,
                            static_cast<double>(diff));
                T_CHECK(diff <= 1e-3f);
            }
        }
        // Same backend twice is bitwise-identical (determinism).
        Batch outAvx2b = mha.forwardBatch(pool, q, k, v);
        for (size_t i = 0; i < batchN; ++i)
            T_CHECK(outAvx2[i] == outAvx2b[i]);
    }
    Gemm::setActive(before);
}

} // namespace

int
main()
{
    testExhaustiveShapeParity();
    testDispatcherPlumbing();
    testAliasingAndShapeRules();
    testZeroDimsAndRecycling();
    testForwardBatchCrossBackendParity();
    return vitality::testing::finish("test_gemm");
}
